// Online drift adaptation: train CAFE and a static hash embedding on a
// workload whose hot set rotates aggressively day over day, reporting the
// running loss per day and CAFE's migration activity — the paper's
// "adaptability to dynamic data distribution" requirement in action.
//
//   ./build/examples/online_drift

#include <cstdio>

#include "core/cafe_embedding.h"
#include "data/presets.h"
#include "embed/hash_embedding.h"
#include "train/model_factory.h"
#include "train/metrics.h"
#include "train/trainer.h"

using namespace cafe;

namespace {

// Trains day by day and prints the per-day average loss.
void RunOnline(const SyntheticCtrDataset& dataset, EmbeddingStore* store,
               const ModelConfig& model_config, const char* label) {
  auto model = MakeModel("dlrm", model_config, store);
  if (!model.ok()) return;
  std::printf("%-8s", label);
  for (uint32_t day = 0; day + 1 < dataset.num_days(); ++day) {
    double loss_sum = 0.0;
    size_t count = 0;
    for (size_t start = dataset.day_begin(day); start < dataset.day_end(day);
         start += 128) {
      const size_t size = std::min<size_t>(128, dataset.day_end(day) - start);
      loss_sum += (*model)->TrainStep(dataset.GetBatch(start, size)) * size;
      count += size;
    }
    std::printf(" %6.4f", loss_sum / count);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  DatasetPreset preset = AvazuLikePreset();
  preset.data.num_samples = 50000;
  preset.data.drift_stride_fraction = 0.02;  // aggressive rotation
  auto dataset = SyntheticCtrDataset::Generate(preset.data);
  if (!dataset.ok()) return 1;

  ModelConfig model_config;
  model_config.num_fields = (*dataset)->num_fields();
  model_config.emb_dim = preset.embedding_dim;
  model_config.num_numerical = 0;
  model_config.emb_lr = 0.2f;

  EmbeddingConfig embedding;
  embedding.total_features = (*dataset)->layout().total_features();
  embedding.dim = preset.embedding_dim;
  embedding.compression_ratio = 50.0;

  std::printf("avg train loss per day (drift stride %.3f, CR 50x)\n",
              preset.data.drift_stride_fraction);
  std::printf("%-8s", "method");
  for (uint32_t day = 0; day + 1 < (*dataset)->num_days(); ++day) {
    std::printf("   day%u", day);
  }
  std::printf("\n");

  auto hash = HashEmbedding::Create(embedding);
  if (!hash.ok()) return 1;
  RunOnline(**dataset, hash->get(), model_config, "hash");

  CafeConfig cafe_config;
  cafe_config.embedding = embedding;
  cafe_config.decay_interval = 25;
  cafe_config.decay_coefficient = 0.95;  // faster decay to chase the drift
  auto cafe = CafeEmbedding::Create(cafe_config);
  if (!cafe.ok()) return 1;
  RunOnline(**dataset, cafe->get(), model_config, "cafe");
  std::printf(
      "cafe adaptation: %llu promotions, %llu demotions across the run\n",
      (unsigned long long)(*cafe)->migrations(),
      (unsigned long long)(*cafe)->demotions());
  return 0;
}
