// End-to-end walkthrough of the serving subsystem: train DLRM over CAFE on
// the Criteo-like preset, checkpoint the trained store + dense weights,
// restore into a frozen snapshot, and serve the held-out day through the
// concurrent micro-batching InferenceServer — printing the train metrics,
// per-field distinct-id estimates (HyperLogLog), and serving latency
// percentiles side by side.
//
// Usage: example_train_checkpoint_serve [checkpoint_path]

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "data/presets.h"
#include "train/serving_pipeline.h"

using namespace cafe;

int main(int argc, char** argv) {
  const std::string checkpoint_path =
      argc > 1 ? argv[1] : "/tmp/cafe_example_checkpoint.bin";

  DatasetPreset preset = CriteoLikePreset();
  auto data = SyntheticCtrDataset::Generate(preset.data);
  CAFE_CHECK(data.ok()) << data.status().ToString();

  StoreFactoryContext context;
  context.embedding.total_features = (*data)->layout().total_features();
  context.embedding.dim = preset.embedding_dim;
  context.embedding.compression_ratio = 20.0;
  context.embedding.seed = 97;
  context.layout = (*data)->layout();
  context.cafe.decay_interval = 50;

  ModelConfig model_config;
  model_config.num_fields = (*data)->num_fields();
  model_config.emb_dim = preset.embedding_dim;
  model_config.num_numerical = preset.data.num_numerical;
  model_config.emb_lr = 0.2f;
  model_config.dense_lr = 0.05f;
  model_config.seed = 1234;

  ServingPipelineOptions options;
  options.train.batch_size = 128;
  options.server.num_workers = 4;
  options.server.max_batch = 256;
  options.server.max_wait_us = 200;
  options.checkpoint_path = checkpoint_path;
  options.request_size = 16;

  std::printf("== train -> checkpoint -> serve (cafe @ 20x, dlrm) ==\n\n");
  auto result = RunServingPipeline("cafe", context, "dlrm", model_config,
                                   **data, options);
  CAFE_CHECK(result.ok()) << result.status().ToString();

  std::printf("training:   avg loss %.4f | test AUC %.4f | %.0f samples/s\n",
              result->train.avg_train_loss, result->train.final_test_auc,
              result->train.train_throughput);
  std::printf("checkpoint: %s\n", checkpoint_path.c_str());

  std::printf("\nper-field distinct ids seen in training (HyperLogLog):\n");
  for (size_t f = 0; f < result->train.field_distinct_estimates.size(); ++f) {
    std::printf("  field %2zu: ~%9.0f distinct (cardinality %lu)\n", f,
                result->train.field_distinct_estimates[f],
                static_cast<unsigned long>((*data)->layout().cardinality(f)));
  }

  std::printf("\nserving (%zu workers, max_batch %zu, window %lu us):\n",
              options.server.num_workers, options.server.max_batch,
              static_cast<unsigned long>(options.server.max_wait_us));
  std::printf(
      "  %lu requests in %.2fs | %.0f req/s | %.0f samples/s | "
      "coalescing %.1fx\n",
      static_cast<unsigned long>(result->requests), result->serve_seconds,
      result->requests_per_second, result->samples_per_second,
      result->executed_batches > 0
          ? static_cast<double>(result->requests) /
                static_cast<double>(result->executed_batches)
          : 0.0);
  std::printf("  latency p50 %.0f us | p95 %.0f us | p99 %.0f us | max %.0f us\n",
              result->latency.p50_us, result->latency.p95_us,
              result->latency.p99_us, result->latency.max_us);
  return 0;
}
