// Compression sweep: compare every embedding compressor in this library at
// several compression ratios on one dataset — a minimal version of the
// paper's Figure 8 experiment, built only from public APIs.
//
//   ./build/examples/compression_sweep

#include <cstdio>

#include "data/presets.h"
#include "train/model_factory.h"
#include "train/store_factory.h"
#include "train/trainer.h"

using namespace cafe;

int main() {
  DatasetPreset preset = CriteoLikePreset();
  preset.data.num_samples = 50000;
  auto dataset = SyntheticCtrDataset::Generate(preset.data);
  if (!dataset.ok()) return 1;

  ModelConfig model_config;
  model_config.num_fields = (*dataset)->num_fields();
  model_config.emb_dim = preset.embedding_dim;
  model_config.num_numerical = preset.data.num_numerical;
  model_config.emb_lr = 0.2f;

  std::printf("%8s %-8s %10s %10s %12s\n", "CR", "method", "train-loss",
              "test-AUC", "memory(KB)");
  for (double cr : {10.0, 100.0, 1000.0}) {
    for (const std::string method : {"hash", "qr", "ada", "mde", "cafe",
                                     "cafe-ml"}) {
      StoreFactoryContext context;
      context.embedding.total_features =
          (*dataset)->layout().total_features();
      context.embedding.dim = preset.embedding_dim;
      context.embedding.compression_ratio = cr;
      context.layout = (*dataset)->layout();
      context.cafe.decay_interval = 50;
      auto store = MakeStore(method, context);
      if (!store.ok()) {
        std::printf("%8.0f %-8s %10s (%s)\n", cr, method.c_str(), "-",
                    StatusCodeToString(store.status().code()));
        continue;
      }
      auto model = MakeModel("dlrm", model_config, store->get());
      if (!model.ok()) return 1;
      TrainOptions options;
      options.batch_size = 128;
      const TrainResult result =
          TrainOnePass(model->get(), **dataset, options);
      std::printf("%8.0f %-8s %10.4f %10.4f %12.1f\n", cr, method.c_str(),
                  result.avg_train_loss, result.final_test_auc,
                  (*store)->MemoryBytes() / 1024.0);
    }
  }
  return 0;
}
