// HotSketch as a standalone top-k heavy-hitter structure: feed a skewed
// stream, report the hottest keys, and compare the empirical hold rate of
// a hot key against the paper's Theorem 3.1 lower bound.
//
//   ./build/examples/topk_sketch

#include <cstdio>
#include <unordered_map>

#include "common/random.h"
#include "common/zipf.h"
#include "core/theory.h"
#include "sketch/hot_sketch.h"
#include "sketch/topk_utils.h"

using namespace cafe;

int main() {
  constexpr uint64_t kBuckets = 512;
  constexpr uint32_t kSlots = 4;
  constexpr int kItems = 400000;
  HotSketchConfig config;
  config.num_buckets = kBuckets;
  config.slots_per_bucket = kSlots;
  auto sketch = HotSketch::Create(config);
  if (!sketch.ok()) return 1;

  ZipfDistribution zipf(100000, 1.2);
  Rng rng(7);
  std::unordered_map<uint64_t, double> truth;
  for (int i = 0; i < kItems; ++i) {
    const uint64_t key = zipf.SampleIndex(rng);
    sketch->Insert(key, 1.0);
    truth[key] += 1.0;
  }

  std::printf("top-10 reported by HotSketch (%llu buckets x %u slots):\n",
              (unsigned long long)kBuckets, kSlots);
  std::printf("%10s %12s %12s\n", "key", "estimate", "true");
  for (const auto& [key, score] : sketch->TopK(10)) {
    std::printf("%10llu %12.0f %12.0f\n", (unsigned long long)key, score,
                truth[key]);
  }

  const auto exact = ExactTopK(truth, kBuckets);
  const double recall = TopKRecall(exact, sketch->TopK(sketch->capacity()));
  std::printf("\nrecall of the true top-%llu: %.3f\n",
              (unsigned long long)kBuckets, recall);

  // Theorem 3.1: a feature holding a gamma share of total mass is held
  // with probability at least 1 - (1-gamma)/((c-1) gamma w).
  const double gamma = truth[0] / kItems;  // rank-1 feature's share
  std::printf("rank-1 share gamma = %.4f, Thm 3.1 bound = %.4f, held = %s\n",
              gamma, theory::HoldProbabilityLowerBound(kBuckets, kSlots,
                                                       gamma),
              sketch->Query(0) >= 0 ? "yes" : "no");
  return 0;
}
