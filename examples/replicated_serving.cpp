// Replicated serving, end to end: ONE trainer feeds TWO replicas over
// in-process pipe transports. Every snapshot cut streams its O(dirty)
// delta through the ReplicationSource; each ReplicaManager replays it into
// its own double-buffered resident stores and publishes a local
// generation, while the source-side InferenceServer keeps serving traffic.
//
// While the run is live, a scraper thread polls the pipeline's metrics
// endpoint (the same loopback HTTP surface an external Prometheus would
// hit) and prints each replica's generation lag — the gap between the
// source's head generation and what that replica is serving right now.
//
// Usage: example_replicated_serving [--passes <n>] [--stats-port <port>]
//   --stats-port  port for the live metrics endpoint (default 19763)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.h"
#include "data/synthetic.h"
#include "train/online_pipeline.h"

using namespace cafe;

namespace {

// One loopback HTTP GET; empty string on any failure (endpoint not up yet).
std::string HttpGet(int port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = std::string("GET ") + path +
                        " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

// Pulls `"name": <number>` out of a /metrics.json body (-1 = absent).
double JsonMetric(const std::string& body, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const size_t at = body.find(key);
  if (at == std::string::npos) return -1.0;
  return std::atof(body.c_str() + at + key.size());
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticDatasetConfig data_config;
  data_config.name = "replicated-serving";
  data_config.field_cardinalities = {2000, 1500, 1000, 500};
  data_config.num_numerical = 2;
  data_config.num_samples = 30000;
  data_config.num_days = 3;
  data_config.seed = 77;
  auto data = SyntheticCtrDataset::Generate(data_config);
  CAFE_CHECK(data.ok()) << data.status().ToString();

  StoreFactoryContext context;
  context.embedding.total_features = (*data)->layout().total_features();
  context.embedding.dim = 8;
  context.embedding.compression_ratio = 20.0;
  context.embedding.seed = 97;
  context.layout = (*data)->layout();

  ModelConfig model_config;
  model_config.num_fields = (*data)->num_fields();
  model_config.emb_dim = 8;
  model_config.num_numerical = data_config.num_numerical;
  model_config.seed = 1234;

  OnlinePipelineOptions options;
  options.batch_size = 128;
  options.passes = 2;
  options.snapshot_interval = 8;
  options.incremental_snapshots = true;
  options.replica_count = 2;
  options.server.num_workers = 2;
  options.server.max_batch = 64;
  options.server.max_wait_us = 100;
  options.num_clients = 2;
  options.request_size = 12;
  options.stats_port = 19763;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      options.passes = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--stats-port") == 0 && i + 1 < argc) {
      options.stats_port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("== one trainer, two replicas (cafe @ 20x, dlrm) ==\n\n");
  std::printf("scraping replica lag live from 127.0.0.1:%d/metrics.json\n\n",
              options.stats_port);

  // The endpoint only exists while RunOnlinePipeline is inside its run, so
  // the scraper retries until the port answers and stops when asked.
  std::atomic<bool> done{false};
  const int port = options.stats_port;
  std::thread scraper([&done, port] {
    const auto start = std::chrono::steady_clock::now();
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      const std::string body = HttpGet(port, "/metrics.json");
      if (body.empty()) continue;
      const double head = JsonMetric(body, "replicate.source.head_generation");
      if (head < 0) continue;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::printf("  t=%4.1fs  head gen %-3.0f", elapsed, head);
      for (int r = 0; r < 2; ++r) {
        const std::string prefix = "replicate.replica" + std::to_string(r);
        const double gen = JsonMetric(body, prefix + ".generation");
        const double lag = JsonMetric(body, prefix + ".lag_generations");
        std::printf(" | replica%d gen %-3.0f lag %.0f", r,
                    gen < 0 ? 0.0 : gen, lag < 0 ? 0.0 : lag);
      }
      std::printf("\n");
    }
  });

  auto result = RunOnlinePipeline("cafe", context, "dlrm", model_config,
                                  **data, options);
  done.store(true);
  scraper.join();
  CAFE_CHECK(result.ok()) << result.status().ToString();

  const auto& source = result->replication_stats;
  std::printf(
      "\ntraining:    %llu steps | %llu generations published\n",
      static_cast<unsigned long long>(result->train_steps),
      static_cast<unsigned long long>(source.generations_published));
  std::printf(
      "stream:      %llu frames / %llu bytes fanned out to %zu replicas\n",
      static_cast<unsigned long long>(source.frames_sent),
      static_cast<unsigned long long>(source.bytes_sent),
      source.replicas.size());
  for (size_t i = 0; i < result->replica_stats.size(); ++i) {
    const auto& replica = result->replica_stats[i];
    std::printf(
        "replica %zu:   generation %llu (head %llu) | %llu base + %llu "
        "deltas | %llu corrupt, %llu gaps, %llu resyncs\n",
        i, static_cast<unsigned long long>(replica.generation),
        static_cast<unsigned long long>(source.head_generation),
        static_cast<unsigned long long>(replica.bases_applied),
        static_cast<unsigned long long>(replica.deltas_applied),
        static_cast<unsigned long long>(replica.corrupt_frames),
        static_cast<unsigned long long>(replica.gap_frames),
        static_cast<unsigned long long>(replica.resyncs_requested));
    CAFE_CHECK(replica.generation == source.head_generation);
  }
  std::printf(
      "\nBoth replicas ended the run serving the source's head generation —\n"
      "every cut reached them as an O(dirty) delta frame, applied into\n"
      "their own double-buffered stores while the source kept training.\n"
      "tests/replication_test.cc proves the replica state is byte-identical\n"
      "for every store type, and that dropped/corrupt/truncated frames\n"
      "recover through the poison -> resync -> rebase path.\n");
  return 0;
}
