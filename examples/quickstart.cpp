// Quickstart: train a DLRM with a CAFE-compressed embedding table on a
// synthetic CTR workload, at 100x compression, and compare against the
// uncompressed ideal.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/cafe_embedding.h"
#include "data/presets.h"
#include "train/model_factory.h"
#include "train/trainer.h"

using namespace cafe;

int main() {
  // 1. A Criteo-like synthetic dataset (26 categorical fields, Zipf
  //    popularity, day-structured drift). Real deployments would stream
  //    their own (field, id) pairs instead.
  DatasetPreset preset = CriteoLikePreset();
  preset.data.num_samples = 60000;
  auto dataset = SyntheticCtrDataset::Generate(preset.data);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. A CAFE embedding at 100x compression. The config mirrors the
  //    paper's defaults: 0.7 hot share, 4 slots per bucket, 0.98 decay.
  CafeConfig config;
  config.embedding.total_features = (*dataset)->layout().total_features();
  config.embedding.dim = preset.embedding_dim;
  config.embedding.compression_ratio = 100.0;
  config.hot_percentage = 0.7;
  config.decay_interval = 50;
  auto cafe = CafeEmbedding::Create(config);
  if (!cafe.ok()) {
    std::fprintf(stderr, "cafe: %s\n", cafe.status().ToString().c_str());
    return 1;
  }
  std::printf("CAFE plan: %llu exclusive rows, %llu+%llu shared rows, "
              "%.1f KB total (%.0fx achieved)\n",
              (unsigned long long)(*cafe)->plan().hot_capacity,
              (unsigned long long)(*cafe)->plan().shared_rows_a,
              (unsigned long long)(*cafe)->plan().shared_rows_b,
              (*cafe)->MemoryBytes() / 1024.0,
              (*cafe)->AchievedCompressionRatio(config.embedding));

  // 3. Any of the three models plugs on top of any EmbeddingStore.
  ModelConfig model_config;
  model_config.num_fields = (*dataset)->num_fields();
  model_config.emb_dim = preset.embedding_dim;
  model_config.num_numerical = preset.data.num_numerical;
  model_config.emb_lr = 0.2f;
  auto model = MakeModel("dlrm", model_config, cafe->get());
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 4. One chronological pass (online training), last day held out.
  TrainOptions options;
  options.batch_size = 128;
  const TrainResult result = TrainOnePass(model->get(), **dataset, options);
  std::printf("CAFE @100x : avg train loss %.4f, test AUC %.4f "
              "(%.0f samples/s)\n",
              result.avg_train_loss, result.final_test_auc,
              result.train_throughput);
  std::printf("hot features now resident: %llu; migrations: %llu, "
              "demotions: %llu\n",
              (unsigned long long)(*cafe)->hot_count(),
              (unsigned long long)(*cafe)->migrations(),
              (unsigned long long)(*cafe)->demotions());
  return 0;
}
