// The continuously-updating service, end to end: DLRM over CAFE trains on
// the Criteo-like preset WHILE an InferenceServer serves the held-out day —
// a rollout thread keeps cutting consistent snapshots from the live store
// (SnapshotManager's step-boundary copy) and hot-swapping them into the
// server, so fresh model generations reach traffic without ever draining a
// worker. Prints the rollout cadence, the trainer's copy pause, swap
// counts, and serving latency under live rollout.
//
// Usage: example_online_rollout [--passes <n>] [--stats-port <port>]
//                               [--timeline <path>] [--metrics-json <path>]
//   --stats-port    serve the metrics registry live over loopback HTTP for
//                   the run (GET /metrics, /metrics.json; 0 = ephemeral)
//   --timeline      append a JSONL telemetry timeline (one sample per 50ms)
//   --metrics-json  write the final registry snapshot as JSON

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "data/presets.h"
#include "train/online_pipeline.h"

using namespace cafe;

int main(int argc, char** argv) {
  DatasetPreset preset = CriteoLikePreset();
  auto data = SyntheticCtrDataset::Generate(preset.data);
  CAFE_CHECK(data.ok()) << data.status().ToString();

  StoreFactoryContext context;
  context.embedding.total_features = (*data)->layout().total_features();
  context.embedding.dim = preset.embedding_dim;
  context.embedding.compression_ratio = 20.0;
  context.embedding.seed = 97;
  context.layout = (*data)->layout();
  context.cafe.decay_interval = 50;

  ModelConfig model_config;
  model_config.num_fields = (*data)->num_fields();
  model_config.emb_dim = preset.embedding_dim;
  model_config.num_numerical = preset.data.num_numerical;
  model_config.emb_lr = 0.2f;
  model_config.dense_lr = 0.05f;
  model_config.seed = 1234;

  OnlinePipelineOptions options;
  options.batch_size = 128;
  options.passes = 1;
  options.snapshot_interval = 40;
  options.server.num_workers = 2;
  options.server.max_batch = 256;
  options.server.max_wait_us = 200;
  options.server.max_queue_samples = 4096;  // backpressure, generous cap
  options.num_clients = 2;
  options.request_size = 16;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      options.passes = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--stats-port") == 0 && i + 1 < argc) {
      options.stats_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
      options.timeline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      options.metrics_json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("== train WHILE serving (cafe @ 20x, dlrm, hot rollout) ==\n\n");
  if (options.stats_port >= 0) {
    std::printf("telemetry: live scrape requested on port %d\n",
                options.stats_port);
  }
  auto result = RunOnlinePipeline("cafe", context, "dlrm", model_config,
                                  **data, options);
  CAFE_CHECK(result.ok()) << result.status().ToString();

  std::printf(
      "training:  %llu steps | avg loss %.4f | %.1fs\n",
      static_cast<unsigned long long>(result->train_steps),
      result->avg_train_loss, result->train_seconds);
  std::printf(
      "rollout:   %llu generations installed (one per ~%llu steps) | "
      "final generation cut at step %llu\n",
      static_cast<unsigned long long>(result->snapshots_installed),
      static_cast<unsigned long long>(options.snapshot_interval),
      static_cast<unsigned long long>(result->final_snapshot->train_step));
  std::printf(
      "swap cost: trainer copy pause max %.0f us | off-trainer rebuild max "
      "%.0f us\n",
      result->snapshot_stats.max_copy_us,
      result->snapshot_stats.max_rebuild_us);
  std::printf(
      "serving:   %llu responses (%llu shed by backpressure) | p50 %.0f us "
      "| p95 %.0f us | p99 %.0f us\n",
      static_cast<unsigned long long>(result->requests_ok),
      static_cast<unsigned long long>(result->requests_rejected),
      result->latency.p50_us, result->latency.p95_us,
      result->latency.p99_us);
  std::printf(
      "server:    generation %llu serving | %llu swaps | peak queue %zu "
      "samples\n",
      static_cast<unsigned long long>(
          result->server_stats.snapshot_generation),
      static_cast<unsigned long long>(result->server_stats.snapshot_swaps),
      result->server_stats.peak_queue_depth);
  if (options.stats_port >= 0) {
    std::printf("telemetry: served live on port %d\n", result->stats_port);
  }
  if (!options.timeline_path.empty()) {
    std::printf("telemetry: %llu timeline samples -> %s\n",
                static_cast<unsigned long long>(result->timeline_samples),
                options.timeline_path.c_str());
  }
  if (!options.metrics_json_path.empty()) {
    std::printf("telemetry: final metrics snapshot -> %s\n",
                options.metrics_json_path.c_str());
  }
  std::printf(
      "\nEvery response above was served by exactly one generation (the\n"
      "per-micro-batch snapshot pin), and the final generation is\n"
      "bit-identical to a quiesced freeze of the fully trained state —\n"
      "tests/hot_swap_test.cc proves both under ThreadSanitizer.\n");
  return 0;
}
