#include "obs/trace.h"

#ifndef CAFE_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

namespace cafe {
namespace obs {
namespace internal {
namespace {

static_assert((kTraceRingCapacity & (kTraceRingCapacity - 1)) == 0,
              "ring capacity must be a power of two");

/// One thread's span ring. Every field of every slot is an independent
/// relaxed atomic: the writer is single-threaded (the owning thread), and
/// concurrent readers see tear-free fields. `head` counts total emits so
/// readers know how full the ring is and where the oldest entry sits.
struct TraceRing {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_us{0};
    std::atomic<uint64_t> dur_us{0};
  };
  Slot slots[kTraceRingCapacity];
  std::atomic<uint64_t> head{0};
  // Metrics shard slot of the current owner; atomic because ring reuse
  // (thread exit -> freelist -> new thread) races with CollectSpans.
  std::atomic<uint32_t> tid{0};

  void Emit(const char* name, uint64_t start_us, uint64_t dur_us) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h & (kTraceRingCapacity - 1)];
    slot.name.store(name, std::memory_order_relaxed);
    slot.start_us.store(start_us, std::memory_order_relaxed);
    slot.dur_us.store(dur_us, std::memory_order_relaxed);
    // Release so a reader that observes the new head sees the fields.
    head.store(h + 1, std::memory_order_release);
  }
};

struct RingDirectory {
  std::mutex mutex;
  // Rings are never freed (a handful of 100-KiB blocks per peak thread
  // count); exited threads' rings keep their history visible and return
  // to this freelist for reuse.
  std::vector<std::unique_ptr<TraceRing>> all;
  std::vector<TraceRing*> free;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory;  // never destroyed
  return *dir;
}

struct RingHolder {
  TraceRing* ring;
  RingHolder() {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    if (dir.free.empty()) {
      dir.all.emplace_back(new TraceRing);
      ring = dir.all.back().get();
    } else {
      ring = dir.free.back();
      dir.free.pop_back();
    }
    ring->tid.store(ThisThreadSlot(), std::memory_order_relaxed);
  }
  ~RingHolder() {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    dir.free.push_back(ring);
  }
};

TraceRing& ThisThreadRing() {
  thread_local RingHolder holder;
  return *holder.ring;
}

}  // namespace

void EmitSpan(const char* name, uint64_t start_us, uint64_t dur_us) {
  ThisThreadRing().Emit(name, start_us, dur_us);
}

}  // namespace internal

std::vector<SpanEvent> CollectSpans(size_t max_events) {
  using internal::TraceRing;
  using internal::kTraceRingCapacity;
  std::vector<TraceRing*> rings;
  {
    internal::RingDirectory& dir = internal::Directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    rings.reserve(dir.all.size());
    for (const auto& ring : dir.all) rings.push_back(ring.get());
  }
  std::vector<SpanEvent> events;
  for (TraceRing* ring : rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t available = std::min<uint64_t>(head, kTraceRingCapacity);
    for (uint64_t i = head - available; i < head; ++i) {
      const auto& slot = ring->slots[i & (kTraceRingCapacity - 1)];
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // not yet written (benign race)
      SpanEvent event;
      event.name = name;
      event.start_us = slot.start_us.load(std::memory_order_relaxed);
      event.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      event.tid = ring->tid.load(std::memory_order_relaxed);
      events.push_back(std::move(event));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_us < b.start_us;
            });
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

}  // namespace obs
}  // namespace cafe

#endif  // CAFE_OBS_DISABLED
