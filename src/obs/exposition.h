#ifndef CAFE_OBS_EXPOSITION_H_
#define CAFE_OBS_EXPOSITION_H_

// Renders a MetricsRegistry (plus the trace rings) in the two formats the
// rest of the stack consumes:
//
//  - DumpPrometheusText: the Prometheus text exposition format, one
//    `cafe_`-prefixed family per metric. Registry names are dotted
//    ("snapshot.publish_us"); dots and other non-identifier characters
//    become underscores. A trailing `{label="value"}` block in a registry
//    name passes through as Prometheus labels. Histograms expose
//    cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
//
//  - DumpJsonSnapshot: one JSON object {t_us, counters, gauges,
//    histograms, spans} keyed by the raw registry names, with p50/p95/p99
//    folded out of the histogram buckets and the most recent trace spans
//    appended. This is also the payload behind the /metrics.json endpoint
//    route and the online pipeline's final metrics file.
//
// Both take an explicit registry so tests can expose a private instance;
// nullptr means MetricsRegistry::Global(). In CAFE_OBS_DISABLED builds
// both still link and return structurally valid (empty) documents.

#include <string>

#include "obs/metrics.h"

namespace cafe {
namespace obs {

std::string DumpPrometheusText(MetricsRegistry* registry = nullptr);

/// `max_spans` bounds the trace tail included under "spans".
std::string DumpJsonSnapshot(MetricsRegistry* registry = nullptr,
                             size_t max_spans = 128);

}  // namespace obs
}  // namespace cafe

#endif  // CAFE_OBS_EXPOSITION_H_
