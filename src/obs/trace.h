#ifndef CAFE_OBS_TRACE_H_
#define CAFE_OBS_TRACE_H_

// Timestamped span events in bounded per-thread ring buffers. A TraceSpan
// is an RAII scope: construction stamps the start, destruction writes
// {name, start_us, dur_us, tid} into this thread's ring. Rings are
// fixed-size and overwrite oldest-first, so tracing is always on and never
// allocates on the hot path. CollectSpans() races benignly with writers:
// every slot field is an individual relaxed atomic, so a concurrent
// snapshot sees each field tear-free; an entry being overwritten mid-read
// can mix two events' fields, which a profile viewer tolerates and tests
// avoid by quiescing first.
//
// Span names MUST be string literals (or otherwise outlive the process):
// the ring stores the pointer, not a copy.
//
// ScopedTimer composes a TraceSpan with a Histogram: one scope both leaves
// a trace event and feeds the duration distribution.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cafe {
namespace obs {

struct SpanEvent {
  std::string name;
  uint64_t start_us = 0;  // NowMicros() timebase (process start)
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // shard slot of the emitting thread, not an OS tid
};

#ifndef CAFE_OBS_DISABLED

namespace internal {
/// Events retained per thread. Power of two so wraparound is a mask.
inline constexpr size_t kTraceRingCapacity = 4096;
void EmitSpan(const char* name, uint64_t start_us, uint64_t dur_us);
}  // namespace internal

class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), start_us_(NowMicros()) {}
  ~TraceSpan() {
    if (name_ != nullptr) Finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early; the destructor becomes a no-op.
  void Finish() {
    internal::EmitSpan(name_, start_us_, NowMicros() - start_us_);
    name_ = nullptr;
  }

  uint64_t start_us() const { return start_us_; }

 private:
  const char* name_;
  uint64_t start_us_;
};

/// TraceSpan + histogram feed. `hist` may be null (then it is just a span).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, Histogram* hist = nullptr)
      : name_(name), hist_(hist), start_us_(NowMicros()) {}
  ~ScopedTimer() {
    if (name_ != nullptr) Finish();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void Finish() {
    const uint64_t dur = NowMicros() - start_us_;
    internal::EmitSpan(name_, start_us_, dur);
    if (hist_ != nullptr) hist_->Record(static_cast<double>(dur));
    name_ = nullptr;
  }

 private:
  const char* name_;
  Histogram* hist_;
  uint64_t start_us_;
};

/// Most-recent spans across all thread rings, oldest first, at most
/// `max_events`. Concurrent-safe (see file comment).
std::vector<SpanEvent> CollectSpans(size_t max_events = 256);

#else  // CAFE_OBS_DISABLED -------------------------------------------------

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  void Finish() {}
  uint64_t start_us() const { return 0; }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const char*, Histogram* = nullptr) {}
  void Finish() {}
};

inline std::vector<SpanEvent> CollectSpans(size_t = 256) { return {}; }

#endif  // CAFE_OBS_DISABLED

}  // namespace obs
}  // namespace cafe

#endif  // CAFE_OBS_TRACE_H_
