#ifndef CAFE_OBS_METRICS_H_
#define CAFE_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with a lock-free hot path. Writes go to per-thread shards
// (the same single-writer philosophy as the sharded embedding backward:
// each of the first kSlots-1 threads owns a cacheline-padded cell it alone
// mutates, so the fast path is a relaxed load+store with no RMW); reads
// aggregate across shards. Threads beyond the slot pool share one overflow
// cell via fetch_add — still correct, just no longer contention-free.
// Slots are recycled on thread exit, so short-lived worker pools (tests,
// per-pass backward pools) do not exhaust the pool.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
// meant to happen once per call site — cache the returned pointer. Handles
// are never invalidated: metric objects live as long as their registry.
//
// Compiling with -DCAFE_OBS_DISABLED replaces every type in this header
// with an inline no-op shim of identical shape, so instrumented call sites
// compile unchanged and the optimizer deletes them. Used by the bench
// overhead guard (scripts/obs_overhead.sh) to price the instrumentation.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cafe {
namespace obs {

/// Microseconds on the steady clock since process start. Monotone,
/// comparable across threads, immune to wall-clock steps. Available in
/// both normal and CAFE_OBS_DISABLED builds.
uint64_t NowMicros();

/// Default histogram bucket upper bounds for durations in microseconds:
/// 1us .. 5s, roughly 1-2-5 per decade. Returned by value so callers can
/// extend or trim.
std::vector<double> DefaultTimeBucketsUs();

#ifndef CAFE_OBS_DISABLED

namespace internal {

/// Per-metric shard count. 64 cells x 8 bytes x cacheline padding = 4 KiB
/// per counter; the registry holds tens of metrics, so memory is trivial.
inline constexpr uint32_t kSlots = 64;
/// Threads past the pool share the last cell with atomic RMW.
inline constexpr uint32_t kOverflowSlot = kSlots - 1;

/// This thread's shard index in [0, kSlots). Exclusive below
/// kOverflowSlot; the slot returns to a freelist when the thread exits.
uint32_t ThisThreadSlot();

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) PaddedF64 {
  std::atomic<double> value{0.0};
};

}  // namespace internal

/// Monotone event count. Add() from any thread; Value() sums the shards
/// (relaxed — a concurrent reader sees some recent, internally consistent
/// total, which is all a scrape needs).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    const uint32_t slot = internal::ThisThreadSlot();
    std::atomic<uint64_t>& cell = cells_[slot].value;
    if (slot != internal::kOverflowSlot) {
      // Single writer for this cell: plain load+store beats lock xadd.
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      cell.fetch_add(n, std::memory_order_relaxed);
    }
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  internal::PaddedU64 cells_[internal::kSlots];
};

/// Last-write-wins scalar (queue depth, occupancy ratio, loss EMA).
/// Single atomic: gauges are set at coarse cadence, not per-row.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges;
/// one implicit +Inf bucket follows. Record() is shard-local like
/// Counter::Add. Collect() folds the shards into a snapshot with
/// interpolated quantiles.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;   // upper edges, ascending (no +Inf entry)
    std::vector<uint64_t> counts; // bounds.size() + 1 buckets
    uint64_t count = 0;
    double sum = 0.0;

    /// Nearest-bucket quantile, linearly interpolated inside the bucket.
    /// The +Inf bucket reports the last finite edge. 0 when empty.
    double Quantile(double q) const;
  };

  void Record(double value) {
    size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    const uint32_t slot = internal::ThisThreadSlot();
    std::atomic<uint64_t>& cell = buckets_[slot * stride_ + b];
    std::atomic<uint64_t>& n = counts_[slot].value;
    std::atomic<double>& sum = sums_[slot].value;
    if (slot != internal::kOverflowSlot) {
      cell.store(cell.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
      n.store(n.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      sum.store(sum.load(std::memory_order_relaxed) + value,
                std::memory_order_relaxed);
    } else {
      cell.fetch_add(1, std::memory_order_relaxed);
      n.fetch_add(1, std::memory_order_relaxed);
      double cur = sum.load(std::memory_order_relaxed);
      while (!sum.compare_exchange_weak(cur, cur + value,
                                        std::memory_order_relaxed)) {
      }
    }
  }

  Snapshot Collect() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  size_t stride_ = 0;  // buckets per slot, rounded up to a cacheline
  // Slot-major [kSlots x stride_] bucket cells; scalar count/sum padded.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  internal::PaddedU64 counts_[internal::kSlots];
  internal::PaddedF64 sums_[internal::kSlots];
};

/// Name -> metric map. Instantiable for tests; production code uses
/// Global(). Names are dotted lowercase ("snapshot.publish_us"); an
/// optional trailing {label="value"} block passes through to the
/// Prometheus exposition verbatim.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Find-or-create. Fatal if `name` already names a different kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Default bounds = DefaultTimeBucketsUs().
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  enum class Kind { kCounter, kGauge, kHistogram };

  /// One metric folded for exposition.
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    double gauge = 0.0;
    Histogram::Snapshot hist;
  };

  /// Snapshot of every registered metric, sorted by name. Safe concurrent
  /// with writers (values are relaxed-atomic sums).
  std::vector<Entry> Collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // CAFE_OBS_DISABLED -------------------------------------------------

// No-op shims with the exact call surface of the real types. Everything is
// inline and stateless so instrumented hot paths compile to nothing; the
// benchmark overhead guard diffs this build against the instrumented one.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double Value() const { return 0.0; }
};

class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    uint64_t count = 0;
    double sum = 0.0;
    double Quantile(double) const { return 0.0; }
  };
  void Record(double) {}
  Snapshot Collect() const { return {}; }
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry r;
    return r;
  }
  Counter* GetCounter(const std::string&) { return &counter_; }
  Gauge* GetGauge(const std::string&) { return &gauge_; }
  Histogram* GetHistogram(const std::string&) { return &histogram_; }
  Histogram* GetHistogram(const std::string&, std::vector<double>) {
    return &histogram_;
  }

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    double gauge = 0.0;
    Histogram::Snapshot hist;
  };
  std::vector<Entry> Collect() const { return {}; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // CAFE_OBS_DISABLED

}  // namespace obs
}  // namespace cafe

#endif  // CAFE_OBS_METRICS_H_
