#ifndef CAFE_OBS_STATS_ENDPOINT_H_
#define CAFE_OBS_STATS_ENDPOINT_H_

// A minimal loopback HTTP listener exposing the metrics registry while a
// pipeline runs, so an operator (or scripts/check.sh) can scrape a live
// process without stopping it:
//
//   GET /metrics       -> Prometheus text exposition
//   GET /metrics.json  -> JSON snapshot (DumpJsonSnapshot)
//   GET /healthz       -> "ok"
//
// Deliberately not a web server: it binds 127.0.0.1 only, handles one
// short-lived connection at a time on one background thread, and speaks
// just enough HTTP/1.1 for curl, Prometheus, and bash's /dev/tcp. Port 0
// binds an ephemeral port; port() reports the bound one.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace cafe {
namespace obs {

class StatsEndpoint {
 public:
  /// Binds and starts serving. `registry` nullptr means Global().
  static StatusOr<std::unique_ptr<StatsEndpoint>> Start(
      int port, MetricsRegistry* registry = nullptr);

  ~StatsEndpoint();
  StatsEndpoint(const StatsEndpoint&) = delete;
  StatsEndpoint& operator=(const StatsEndpoint&) = delete;

  /// The bound TCP port (useful with port 0).
  int port() const { return port_; }

  /// Stops the accept loop and joins the thread. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// Requests served so far (all routes, including 404s).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  StatsEndpoint(int listen_fd, int port, MetricsRegistry* registry);
  void ServeLoop();

  int listen_fd_;
  int port_;
  MetricsRegistry* registry_;  // may be null = Global()
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace cafe

#endif  // CAFE_OBS_STATS_ENDPOINT_H_
