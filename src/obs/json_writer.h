#ifndef CAFE_OBS_JSON_WRITER_H_
#define CAFE_OBS_JSON_WRITER_H_

// Minimal JSON emitter shared by the observability exposition (metrics
// snapshots, the online pipeline's JSONL timeline) and the microbench
// BENCH_<name>.json result files: enough structure (nested objects/arrays,
// escaped strings, finite numbers) for a CI script or a cross-PR perf
// tracker to parse, with no dependency. Call order mirrors the document:
// Begin/EndObject, Begin/EndArray, Key before each member value. Comma
// placement is handled internally.
//
// Promoted out of bench/bench_common.h so src/ targets can emit JSON
// without depending on the bench tree; cafe::bench keeps an alias.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace cafe {
namespace obs {

class JsonWriter {
 public:
  void BeginObject() {
    Comma();
    out_ += '{';
    fresh_ = true;
  }
  void EndObject() {
    out_ += '}';
    fresh_ = false;
  }
  void BeginArray() {
    Comma();
    out_ += '[';
    fresh_ = true;
  }
  void EndArray() {
    out_ += ']';
    fresh_ = false;
  }
  void Key(const char* key) {
    Comma();
    AppendQuoted(key);
    out_ += ':';
    fresh_ = true;  // the upcoming value follows the colon, no comma
  }
  void String(const std::string& value) {
    Comma();
    AppendQuoted(value.c_str());
  }
  void Number(double value) {
    Comma();
    if (!std::isfinite(value)) {  // NaN/inf are not valid JSON
      out_ += "null";
      return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out_ += buffer;
  }
  void Int(int64_t value) {
    Comma();
    out_ += std::to_string(value);
  }
  void Uint(uint64_t value) {
    Comma();
    out_ += std::to_string(value);
  }
  void Bool(bool value) {
    Comma();
    out_ += value ? "true" : "false";
  }

  /// Convenience for the dominant pattern: a scalar object member.
  void Field(const char* key, const std::string& value) {
    Key(key);
    String(value);
  }
  void Field(const char* key, const char* value) {
    Key(key);
    String(value);
  }
  void Field(const char* key, double value) {
    Key(key);
    Number(value);
  }
  void Field(const char* key, uint64_t value) {
    Key(key);
    Uint(value);
  }
  void Field(const char* key, int value) {
    Key(key);
    Int(value);
  }
  void Field(const char* key, bool value) {
    Key(key);
    Bool(value);
  }

  const std::string& str() const { return out_; }

 private:
  void Comma() {
    if (!fresh_ && !out_.empty()) out_ += ',';
    fresh_ = false;
  }
  void AppendQuoted(const char* s) {
    out_ += '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
        out_ += buffer;
      } else {
        out_ += c;
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace obs
}  // namespace cafe

#endif  // CAFE_OBS_JSON_WRITER_H_
