#include "obs/metrics.h"

#include <chrono>

#include "common/logging.h"

#ifndef CAFE_OBS_DISABLED
#include <algorithm>
#include <map>
#include <mutex>
#endif

namespace cafe {
namespace obs {

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point kStart = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            kStart)
          .count());
}

std::vector<double> DefaultTimeBucketsUs() {
  return {1,     2,     5,     10,     25,     50,     100,
          250,   500,   1e3,   2.5e3,  5e3,    1e4,    2.5e4,
          5e4,   1e5,   2.5e5, 5e5,    1e6,    2.5e6,  5e6};
}

#ifndef CAFE_OBS_DISABLED

namespace internal {
namespace {

std::mutex& SlotMutex() {
  static std::mutex m;
  return m;
}

std::vector<uint32_t>& SlotFreelist() {
  static std::vector<uint32_t> freelist = [] {
    std::vector<uint32_t> slots;
    slots.reserve(kOverflowSlot);
    // Pop from the back -> low slots hand out first.
    for (uint32_t s = kOverflowSlot; s-- > 0;) slots.push_back(s);
    return slots;
  }();
  return freelist;
}

/// Owns this thread's shard index for its lifetime; the destructor runs at
/// thread exit and recycles the slot so bounded pools of short-lived
/// threads (test batteries, per-pass backward pools) never exhaust the
/// shard space.
struct SlotHolder {
  uint32_t slot;
  SlotHolder() {
    std::lock_guard<std::mutex> lock(SlotMutex());
    auto& freelist = SlotFreelist();
    if (freelist.empty()) {
      slot = kOverflowSlot;
    } else {
      slot = freelist.back();
      freelist.pop_back();
    }
  }
  ~SlotHolder() {
    if (slot == kOverflowSlot) return;
    std::lock_guard<std::mutex> lock(SlotMutex());
    SlotFreelist().push_back(slot);
  }
};

}  // namespace

uint32_t ThisThreadSlot() {
  thread_local SlotHolder holder;
  return holder.slot;
}

}  // namespace internal

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CAFE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be ascending";
  const size_t buckets = bounds_.size() + 1;  // + the +Inf bucket
  // Round the per-slot run up to a cacheline of u64s so adjacent slots
  // never share a line.
  stride_ = (buckets + 7) / 8 * 8;
  buckets_.reset(new std::atomic<uint64_t>[internal::kSlots * stride_]);
  for (size_t i = 0; i < internal::kSlots * stride_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

Histogram::Snapshot Histogram::Collect() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (uint32_t slot = 0; slot < internal::kSlots; ++slot) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] +=
          buckets_[slot * stride_ + b].load(std::memory_order_relaxed);
    }
    snap.count += counts_[slot].value.load(std::memory_order_relaxed);
    snap.sum += sums_[slot].value.load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b >= bounds.size()) {
        // +Inf bucket: the last finite edge is the best honest answer.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = (b == 0) ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double into =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

struct MetricsRegistry::Impl {
  struct Slot {
    Kind kind;
    // Exactly one is set, matching `kind`. unique_ptr keeps addresses
    // stable across map rehash/insert so handed-out handles never dangle.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mutex;
  std::map<std::string, Slot> metrics;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->metrics.find(name);
  if (it == impl_->metrics.end()) {
    Impl::Slot slot;
    slot.kind = Kind::kCounter;
    slot.counter.reset(new Counter);
    it = impl_->metrics.emplace(name, std::move(slot)).first;
  }
  CAFE_CHECK(it->second.kind == Kind::kCounter)
      << "metric '" << name << "' already registered with a different kind";
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->metrics.find(name);
  if (it == impl_->metrics.end()) {
    Impl::Slot slot;
    slot.kind = Kind::kGauge;
    slot.gauge.reset(new Gauge);
    it = impl_->metrics.emplace(name, std::move(slot)).first;
  }
  CAFE_CHECK(it->second.kind == Kind::kGauge)
      << "metric '" << name << "' already registered with a different kind";
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, DefaultTimeBucketsUs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->metrics.find(name);
  if (it == impl_->metrics.end()) {
    Impl::Slot slot;
    slot.kind = Kind::kHistogram;
    slot.histogram.reset(new Histogram(std::move(bounds)));
    it = impl_->metrics.emplace(name, std::move(slot)).first;
  }
  CAFE_CHECK(it->second.kind == Kind::kHistogram)
      << "metric '" << name << "' already registered with a different kind";
  return it->second.histogram.get();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<Entry> entries;
  entries.reserve(impl_->metrics.size());
  for (const auto& [name, slot] : impl_->metrics) {
    Entry entry;
    entry.name = name;
    entry.kind = slot.kind;
    switch (slot.kind) {
      case Kind::kCounter:
        entry.counter = slot.counter->Value();
        break;
      case Kind::kGauge:
        entry.gauge = slot.gauge->Value();
        break;
      case Kind::kHistogram:
        entry.hist = slot.histogram->Collect();
        break;
    }
    entries.push_back(std::move(entry));
  }
  return entries;  // std::map iteration order is already name-sorted
}

#endif  // CAFE_OBS_DISABLED

}  // namespace obs
}  // namespace cafe
