#include "obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/json_writer.h"
#include "obs/trace.h"

namespace cafe {
namespace obs {
namespace {

/// Splits an optional trailing {label="v"} block off a registry name.
void SplitLabels(const std::string& full, std::string* base,
                 std::string* labels) {
  const size_t brace = full.find('{');
  if (brace == std::string::npos) {
    *base = full;
    labels->clear();
    return;
  }
  *base = full.substr(0, brace);
  *labels = full.substr(brace + 1);  // drop '{'
  if (!labels->empty() && labels->back() == '}') labels->pop_back();
}

/// cafe_ prefix + [a-zA-Z0-9_] only, everything else collapsed to '_'.
std::string PromName(const std::string& base) {
  std::string out = "cafe_";
  out.reserve(base.size() + 5);
  for (const char c : base) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

void AppendLabelBlock(std::string* out, const std::string& labels,
                      const std::string& extra = std::string()) {
  if (labels.empty() && extra.empty()) return;
  *out += '{';
  *out += labels;
  if (!labels.empty() && !extra.empty()) *out += ',';
  *out += extra;
  *out += '}';
}

void AppendDouble(std::string* out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  *out += buffer;
}

}  // namespace

std::string DumpPrometheusText(MetricsRegistry* registry) {
  MetricsRegistry& reg =
      (registry != nullptr) ? *registry : MetricsRegistry::Global();
  std::string out;
  const auto entries = reg.Collect();
#ifdef CAFE_OBS_DISABLED
  out += "# observability compiled out (CAFE_OBS_DISABLED)\n";
#endif
  for (const auto& entry : entries) {
    std::string base;
    std::string labels;
    SplitLabels(entry.name, &base, &labels);
    const std::string name = PromName(base);
    switch (entry.kind) {
      case MetricsRegistry::Kind::kCounter: {
        out += "# TYPE " + name + " counter\n";
        out += name;
        AppendLabelBlock(&out, labels);
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n",
                      entry.counter);
        out += buffer;
        break;
      }
      case MetricsRegistry::Kind::kGauge: {
        out += "# TYPE " + name + " gauge\n";
        out += name;
        AppendLabelBlock(&out, labels);
        out += ' ';
        AppendDouble(&out, entry.gauge);
        out += '\n';
        break;
      }
      case MetricsRegistry::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < entry.hist.counts.size(); ++b) {
          cumulative += entry.hist.counts[b];
          std::string le;
          if (b < entry.hist.bounds.size()) {
            le = "le=\"";
            char buffer[40];
            std::snprintf(buffer, sizeof(buffer), "%.17g",
                          entry.hist.bounds[b]);
            le += buffer;
            le += '"';
          } else {
            le = "le=\"+Inf\"";
          }
          out += name + "_bucket";
          AppendLabelBlock(&out, labels, le);
          char buffer[32];
          std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n",
                        cumulative);
          out += buffer;
        }
        out += name + "_sum";
        AppendLabelBlock(&out, labels);
        out += ' ';
        AppendDouble(&out, entry.hist.sum);
        out += '\n';
        out += name + "_count";
        AppendLabelBlock(&out, labels);
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), " %" PRIu64 "\n",
                      entry.hist.count);
        out += buffer;
        break;
      }
    }
  }
  return out;
}

std::string DumpJsonSnapshot(MetricsRegistry* registry, size_t max_spans) {
  MetricsRegistry& reg =
      (registry != nullptr) ? *registry : MetricsRegistry::Global();
  const auto entries = reg.Collect();
  JsonWriter json;
  json.BeginObject();
  json.Field("t_us", NowMicros());
  json.Key("counters");
  json.BeginObject();
  for (const auto& entry : entries) {
    if (entry.kind != MetricsRegistry::Kind::kCounter) continue;
    json.Field(entry.name.c_str(), entry.counter);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& entry : entries) {
    if (entry.kind != MetricsRegistry::Kind::kGauge) continue;
    json.Field(entry.name.c_str(), entry.gauge);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& entry : entries) {
    if (entry.kind != MetricsRegistry::Kind::kHistogram) continue;
    json.Key(entry.name.c_str());
    json.BeginObject();
    json.Field("count", entry.hist.count);
    json.Field("sum", entry.hist.sum);
    json.Field("p50", entry.hist.Quantile(0.50));
    json.Field("p95", entry.hist.Quantile(0.95));
    json.Field("p99", entry.hist.Quantile(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.Key("spans");
  json.BeginArray();
  for (const auto& span : CollectSpans(max_spans)) {
    json.BeginObject();
    json.Field("name", span.name);
    json.Field("t_us", span.start_us);
    json.Field("dur_us", span.dur_us);
    json.Field("tid", static_cast<uint64_t>(span.tid));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace obs
}  // namespace cafe
