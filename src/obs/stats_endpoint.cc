#include "obs/stats_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/exposition.h"

namespace cafe {
namespace obs {
namespace {

/// Reads until the end of the request headers (or the peer stops sending).
/// We only need the request line; the rest is drained and discarded.
std::string ReadRequestLine(int fd) {
  std::string buffer;
  char chunk[512];
  // Short, bounded read loop: a loopback client sends the whole request in
  // one or two segments. 250ms cap so a stuck client cannot wedge the loop.
  for (int spins = 0; spins < 50; ++spins) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 5);
    if (ready < 0) break;
    if (ready == 0) {
      if (buffer.find('\n') != std::string::npos) break;
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.find("\r\n\r\n") != std::string::npos ||
        buffer.find("\n\n") != std::string::npos) {
      break;
    }
    if (buffer.size() > 8192) break;  // nobody sends GETs this large
  }
  const size_t eol = buffer.find('\n');
  return (eol == std::string::npos) ? buffer : buffer.substr(0, eol);
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, const char* status_line, const char* content_type,
                   const std::string& body) {
  std::string response = "HTTP/1.1 ";
  response += status_line;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  WriteAll(fd, response);
}

}  // namespace

StatusOr<std::unique_ptr<StatsEndpoint>> StatsEndpoint::Start(
    int port, MetricsRegistry* registry) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("stats endpoint port out of range: " +
                                   std::to_string(port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string msg =
        std::string("bind(127.0.0.1:") + std::to_string(port) +
        "): " + std::strerror(errno);
    ::close(fd);
    return Status::Internal(msg);
  }
  if (::listen(fd, 16) < 0) {
    const std::string msg = std::string("listen(): ") + std::strerror(errno);
    ::close(fd);
    return Status::Internal(msg);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    const std::string msg =
        std::string("getsockname(): ") + std::strerror(errno);
    ::close(fd);
    return Status::Internal(msg);
  }
  return std::unique_ptr<StatsEndpoint>(
      new StatsEndpoint(fd, ntohs(bound.sin_port), registry));
}

StatsEndpoint::StatsEndpoint(int listen_fd, int port,
                             MetricsRegistry* registry)
    : listen_fd_(listen_fd), port_(port), registry_(registry) {
  thread_ = std::thread([this] { ServeLoop(); });
}

StatsEndpoint::~StatsEndpoint() { Stop(); }

void StatsEndpoint::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void StatsEndpoint::ServeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::string request = ReadRequestLine(client);
    requests_.fetch_add(1, std::memory_order_relaxed);
    // "GET <path> HTTP/1.x" — tolerate missing version (bash /dev/tcp).
    std::string path;
    {
      const size_t sp1 = request.find(' ');
      if (sp1 != std::string::npos) {
        const size_t sp2 = request.find(' ', sp1 + 1);
        path = request.substr(
            sp1 + 1,
            (sp2 == std::string::npos) ? std::string::npos : sp2 - sp1 - 1);
      }
    }
    if (request.compare(0, 4, "GET ") != 0) {
      WriteResponse(client, "405 Method Not Allowed", "text/plain",
                    "only GET is supported\n");
    } else if (path == "/metrics" || path == "/") {
      WriteResponse(client, "200 OK", "text/plain; version=0.0.4",
                    DumpPrometheusText(registry_));
    } else if (path == "/metrics.json" || path == "/stats.json") {
      WriteResponse(client, "200 OK", "application/json",
                    DumpJsonSnapshot(registry_));
    } else if (path == "/healthz") {
      WriteResponse(client, "200 OK", "text/plain", "ok\n");
    } else {
      WriteResponse(client, "404 Not Found", "text/plain",
                    "unknown path; try /metrics, /metrics.json, /healthz\n");
    }
    ::close(client);
  }
}

}  // namespace obs
}  // namespace cafe
