#ifndef CAFE_COMMON_LOGGING_H_
#define CAFE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cafe {
namespace internal {

/// Prints `msg` with file/line context and aborts. Used by the CHECK macros;
/// not part of the public API.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

/// Stream-style message collector so call sites can write
/// `CAFE_CHECK(x) << "context " << value;`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

/// Swallows the streamed message when a DCHECK is compiled out.
class NullMessageBuilder {
 public:
  template <typename T>
  NullMessageBuilder& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

/// Fatal invariant check, enabled in all build modes. Use for conditions
/// whose violation means the process state is corrupt (e.g. index out of an
/// internally managed range).
#define CAFE_CHECK(cond)                                            \
  if (cond) {                                                       \
  } else                                                            \
    ::cafe::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

/// Debug-only invariant check on hot paths; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define CAFE_DCHECK(cond) \
  if (true) {             \
  } else                  \
    ::cafe::internal::NullMessageBuilder()
#else
#define CAFE_DCHECK(cond) CAFE_CHECK(cond)
#endif

}  // namespace cafe

#endif  // CAFE_COMMON_LOGGING_H_
