#ifndef CAFE_COMMON_SIMD_H_
#define CAFE_COMMON_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cafe {
namespace simd {

/// Runtime-dispatched vector kernels for the embedding hot loops: the
/// LookupBatch row gather, the ApplyGradientBatch clip+SGD scatter, the
/// BatchDeduper clip+accumulate, and the dense-layer axpy updates.
///
/// Dispatch has three tiers, picked once at startup from cpuid and
/// overridable at runtime (quiescent stores only) so benches can A/B the
/// vector path against the scalar reference on the same host:
///
///   kScalar  — the original C++ loops. Always available; the only tier
///              compiled under -DCAFE_NO_SIMD=ON or on non-x86 hosts.
///   kAvx2    — 8-lane AVX2 kernels (per-function target attributes; no
///              global -mavx2, so the rest of the binary stays baseline).
///   kAvx512  — 16-lane AVX-512F kernels.
///
/// Exactness contract: in the default EXACT mode every kernel performs the
/// SAME per-element IEEE op sequence as the scalar loop (clamp via vector
/// min/max, then one multiply, then one subtract/add — tails via masked
/// vector ops so the compiler cannot contract them into FMA), so results
/// are bit-identical lane by lane and the scalar-vs-batched parity battery
/// holds across tiers. The opt-in FUSED mode replaces multiply+subtract
/// with a single-rounding FMA in the axpy kernels — up to 1/2 ulp per
/// element tighter than scalar, NOT bit-identical — for deployments that
/// prefer throughput+accuracy over reproducibility.
enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Best tier the host (and build flags) support. Constant per process.
Tier DetectedTier();

/// Tier the kernels currently dispatch to (DetectedTier() unless forced).
Tier ActiveTier();

/// Forces dispatch to min(tier, DetectedTier()). Benches/tests only: not
/// synchronized against threads concurrently inside a kernel, so switch at
/// a quiescent point. Returns the tier actually activated.
Tier SetActiveTier(Tier tier);

/// Restores ActiveTier() to DetectedTier().
void ResetActiveTier();

/// Switches the axpy kernels between exact mode (default, multiply then
/// subtract — bit-identical to scalar) and fused-FMA mode (one rounding,
/// documented epsilon). No effect on the scalar tier.
void SetFusedFma(bool enable);
bool FusedFma();

const char* TierName(Tier tier);
inline const char* ActiveTierName() { return TierName(ActiveTier()); }

namespace detail {

struct Kernels {
  void (*copy_row)(float*, const float*, uint32_t);
  void (*axpy_neg)(float*, const float*, uint32_t, float);
  void (*axpy_clip_neg)(float*, const float*, uint32_t, float, float);
  void (*accum_clip)(float*, const float*, uint32_t, float);
  void (*add_scaled)(float*, const float*, uint32_t, float);
  void (*add_rows)(float*, const float*, const float*, uint32_t);
  void (*mul_rows)(float*, const float*, const float*, uint32_t);
};

/// Constant-initialized to the scalar table (function addresses are
/// constexpr), upgraded to the detected tier by a dynamic initializer in
/// simd.cc — so kernels are callable even during static construction.
extern std::atomic<const Kernels*> g_kernels;

inline const Kernels& Active() {
  return *g_kernels.load(std::memory_order_relaxed);
}

}  // namespace detail

/// dst[0..d) = src[0..d). The LookupBatch gather body.
inline void CopyRow(float* dst, const float* src, uint32_t d) {
  detail::Active().copy_row(dst, src, d);
}

/// row[k] -= lr * g[k] — the scatter body for pre-accumulated (already
/// clipped) gradients and the dense SGD step.
inline void AxpyNeg(float* row, const float* g, uint32_t d, float lr) {
  detail::Active().axpy_neg(row, g, d, lr);
}

/// row[k] -= lr * clamp(g[k], -bound, +bound) — the fused clip+SGD scatter
/// body (bound = +inf when clipping is off, matching embed_internal::
/// ClipBound).
inline void AxpyClipNeg(float* row, const float* g, uint32_t d, float lr,
                        float bound) {
  detail::Active().axpy_clip_neg(row, g, d, lr, bound);
}

/// acc[k] += clamp(g[k], -bound, +bound) — the BatchDeduper clip-on-read
/// accumulate body.
inline void AccumClip(float* acc, const float* g, uint32_t d, float bound) {
  detail::Active().accum_clip(acc, g, d, bound);
}

/// dst[k] += a * src[k] — the dense-layer backward outer-product rows.
inline void AddScaled(float* dst, const float* src, uint32_t d, float a) {
  detail::Active().add_scaled(dst, src, d, a);
}

/// dst[k] = a[k] + b[k] — the QR additive-combine lookup body.
inline void AddRows(float* dst, const float* a, const float* b, uint32_t d) {
  detail::Active().add_rows(dst, a, b, d);
}

/// dst[k] = a[k] * b[k] — the QR multiplicative-combine lookup body.
inline void MulRows(float* dst, const float* a, const float* b, uint32_t d) {
  detail::Active().mul_rows(dst, a, b, d);
}

}  // namespace simd
}  // namespace cafe

#endif  // CAFE_COMMON_SIMD_H_
