#ifndef CAFE_COMMON_TIMER_H_
#define CAFE_COMMON_TIMER_H_

#include <chrono>

namespace cafe {

/// Simple wall-clock stopwatch used by the latency/throughput benches.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cafe

#endif  // CAFE_COMMON_TIMER_H_
