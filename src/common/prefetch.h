#ifndef CAFE_COMMON_PREFETCH_H_
#define CAFE_COMMON_PREFETCH_H_

#include <atomic>
#include <cstddef>

namespace cafe {

/// Software prefetch hints for the batched gather/scatter loops. Embedding
/// rows are random-access over tables far larger than any cache level, so
/// issuing the next few row addresses ahead of the copy loop overlaps the
/// DRAM latency that otherwise dominates lookup cost.
#if defined(__GNUC__) || defined(__clang__)
inline void PrefetchRead(const void* addr) { __builtin_prefetch(addr, 0, 1); }
inline void PrefetchWrite(const void* addr) { __builtin_prefetch(addr, 1, 1); }
#else
inline void PrefetchRead(const void*) {}
inline void PrefetchWrite(const void*) {}
#endif

/// Default for how many rows ahead the batched loops prefetch. Deep enough
/// to cover DRAM latency at one row per few nanoseconds of copy work,
/// shallow enough that hints are not evicted before use.
inline constexpr size_t kDefaultPrefetchDistance = 8;

namespace prefetch_internal {
inline std::atomic<size_t> g_distance{kDefaultPrefetchDistance};
}  // namespace prefetch_internal

/// Runtime prefetch-distance knob. The batched loops hoist this into a
/// local once per batch, so changing it mid-batch only affects the next
/// batch. bench_lookup_batch sweeps it (--prefetch-dist) to find the host's
/// best setting; 0 degenerates to prefetching the row being copied — an
/// effective no-op, useful as the sweep's "off" point.
inline size_t PrefetchDistance() {
  return prefetch_internal::g_distance.load(std::memory_order_relaxed);
}

inline void SetPrefetchDistance(size_t rows) {
  prefetch_internal::g_distance.store(rows, std::memory_order_relaxed);
}

}  // namespace cafe

#endif  // CAFE_COMMON_PREFETCH_H_
