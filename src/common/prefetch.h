#ifndef CAFE_COMMON_PREFETCH_H_
#define CAFE_COMMON_PREFETCH_H_

#include <cstddef>

namespace cafe {

/// Software prefetch hints for the batched gather/scatter loops. Embedding
/// rows are random-access over tables far larger than any cache level, so
/// issuing the next few row addresses ahead of the copy loop overlaps the
/// DRAM latency that otherwise dominates lookup cost.
#if defined(__GNUC__) || defined(__clang__)
inline void PrefetchRead(const void* addr) { __builtin_prefetch(addr, 0, 1); }
inline void PrefetchWrite(const void* addr) { __builtin_prefetch(addr, 1, 1); }
#else
inline void PrefetchRead(const void*) {}
inline void PrefetchWrite(const void*) {}
#endif

/// How many rows ahead the batched loops prefetch. Deep enough to cover
/// DRAM latency at one row per few nanoseconds of copy work, shallow enough
/// that hints are not evicted before use.
inline constexpr size_t kPrefetchDistance = 8;

}  // namespace cafe

#endif  // CAFE_COMMON_PREFETCH_H_
