#ifndef CAFE_COMMON_ZIPF_H_
#define CAFE_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace cafe {

/// Samples ranks 1..n with P(rank = i) proportional to i^(-z).
///
/// Uses the rejection-inversion method of Hörmann & Derflinger (1996), the
/// same algorithm behind std::discrete Zipf implementations in other
/// ecosystems: O(1) per sample independent of n, works for any z > 0
/// (including z <= 1 where the harmonic sum diverges), no O(n) tables.
///
/// Feature popularity in CTR datasets is approximately Zipf with z in
/// [1.05, 1.1] (paper Fig. 3), so this sampler is the core of the synthetic
/// workload generator.
class ZipfDistribution {
 public:
  /// `n` is the number of items (ranks 1..n); `z` is the skew exponent.
  /// Requires n >= 1 and z > 0.
  ZipfDistribution(uint64_t n, double z);

  /// Returns a rank in [1, n].
  uint64_t Sample(Rng& rng) const;

  /// Returns a 0-based item index in [0, n).
  uint64_t SampleIndex(Rng& rng) const { return Sample(rng) - 1; }

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// Exact probability mass of rank i (1-based); O(n) on first call
  /// (memoizes the normalization constant). Used by tests and by the KL
  /// divergence analysis, not on sampling hot paths.
  double Pmf(uint64_t i) const;

 private:
  double H(double x) const;     // antiderivative of x^-z
  double HInverse(double x) const;

  uint64_t n_;
  double z_;
  double h_x1_;                 // H(1.5) - 1
  double h_n_;                  // H(n + 0.5)
  double s_;                    // shift parameter
  mutable double norm_ = -1.0;  // lazily computed sum_{i=1..n} i^-z
};

/// Computes the fitted Zipf exponent for a sorted-descending score vector by
/// least-squares regression of log(score) on log(rank). Scores <= 0 are
/// skipped. Returns 0 if fewer than two positive scores. Used to reproduce
/// the paper's Figure 3 ("gradient norms fit Zipf with z ~ 1.05").
double FitZipfExponent(const std::vector<double>& sorted_scores);

}  // namespace cafe

#endif  // CAFE_COMMON_ZIPF_H_
