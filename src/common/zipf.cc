#include "common/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace cafe {

ZipfDistribution::ZipfDistribution(uint64_t n, double z) : n_(n), z_(z) {
  CAFE_CHECK(n >= 1) << "Zipf needs at least one item";
  CAFE_CHECK(z > 0.0) << "Zipf exponent must be positive, got " << z;
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -z));
}

double ZipfDistribution::H(double x) const {
  // Antiderivative of t^-z evaluated at x:
  //   z == 1: log(x);   otherwise: x^(1-z) / (1-z).
  if (z_ == 1.0) return std::log(x);
  return std::pow(x, 1.0 - z_) / (1.0 - z_);
}

double ZipfDistribution::HInverse(double x) const {
  if (z_ == 1.0) return std::exp(x);
  return std::pow((1.0 - z_) * x, 1.0 / (1.0 - z_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  // Hörmann & Derflinger rejection-inversion. Expected < 1.1 iterations.
  while (true) {
    double u = h_n_ + rng.UniformDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(k, -z_)) {
      return k;
    }
  }
}

double ZipfDistribution::Pmf(uint64_t i) const {
  CAFE_CHECK(i >= 1 && i <= n_) << "rank out of range: " << i;
  if (norm_ < 0.0) {
    double sum = 0.0;
    for (uint64_t r = 1; r <= n_; ++r) sum += std::pow(r, -z_);
    norm_ = sum;
  }
  return std::pow(static_cast<double>(i), -z_) / norm_;
}

double FitZipfExponent(const std::vector<double>& sorted_scores) {
  // Least squares on (log rank, log score). Slope is -z.
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  size_t count = 0;
  for (size_t i = 0; i < sorted_scores.size(); ++i) {
    if (sorted_scores[i] <= 0.0) continue;
    double x = std::log(static_cast<double>(i + 1));
    double y = std::log(sorted_scores[i]);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++count;
  }
  if (count < 2) return 0.0;
  double denom = count * sum_xx - sum_x * sum_x;
  if (denom == 0.0) return 0.0;
  double slope = (count * sum_xy - sum_x * sum_y) / denom;
  return -slope;
}

}  // namespace cafe
