#ifndef CAFE_COMMON_THREAD_POOL_H_
#define CAFE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cafe {

/// Deterministic physical-row -> shard owner map for the parallel backward.
///
/// Every sharded scatter path partitions its row space with THIS function,
/// so a row has exactly one writer regardless of which worker claims which
/// shard — the no-atomics, no-locks invariant of the whole scheme. The
/// multiply-xor mix (splitmix64's finalizer core) spreads Zipf-hot ids that
/// land on consecutive or equal-modulus rows across shards; a plain
/// `row % num_shards` would let a handful of hot rows serialize one shard.
inline uint32_t ShardOfRow(uint64_t row, uint32_t num_shards) {
  uint64_t x = row * 0x9E3779B97F4A7C15ULL;
  x ^= x >> 32;
  return static_cast<uint32_t>(x % num_shards);
}

/// Persistent worker pool for the sharded embedding backward.
///
/// Construction spawns num_threads - 1 workers; the thread calling
/// ParallelFor participates as the num_threads-th, so a pool of 1 spawns
/// nothing and runs inline. Workers park on a condition variable between
/// jobs — the pool is built once per training pass, not per batch, so the
/// per-batch cost is one notify + one join handshake.
///
/// ParallelFor distributes task indices dynamically (atomic counter): legal
/// here because tasks are SHARDS owning disjoint rows, so claim order can
/// not change any result — determinism comes from the shard partition, not
/// from the schedule. One job runs at a time; ParallelFor is not reentrant
/// and must always be driven by the same (trainer) thread.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    const size_t spawn = num_threads > 1 ? num_threads - 1 : 0;
    workers_.reserve(spawn);
    for (size_t i = 0; i < spawn; ++i) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(task) for every task in [0, num_tasks); returns after all
  /// tasks completed. The calling thread works too, so the pool is never
  /// idle while the caller spins.
  void ParallelFor(uint32_t num_tasks,
                   const std::function<void(uint32_t)>& fn) {
    if (num_tasks == 0) return;
    if (workers_.empty() || num_tasks == 1) {
      for (uint32_t t = 0; t < num_tasks; ++t) fn(t);
      return;
    }
    // The job lives on the heap behind a shared_ptr: a worker that wakes
    // late still holds a valid job, finds the task counter exhausted, and
    // goes back to sleep — it can never claim an index from a LATER job
    // with this job's function (the classic reused-counter race).
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->num_tasks = num_tasks;
    job->pending.store(num_tasks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_job_ = job;
      ++generation_;
    }
    wake_.notify_all();
    RunJob(*job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_.wait(lock, [&job]() {
        return job->pending.load(std::memory_order_acquire) == 0;
      });
      current_job_.reset();
    }
  }

 private:
  struct Job {
    const std::function<void(uint32_t)>* fn = nullptr;
    uint32_t num_tasks = 0;
    std::atomic<uint32_t> next{0};
    std::atomic<uint32_t> pending{0};
  };

  void RunJob(Job& job) {
    for (;;) {
      const uint32_t t = job.next.fetch_add(1, std::memory_order_relaxed);
      if (t >= job.num_tasks) return;
      (*job.fn)(t);
      if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task done: wake the caller. Notify under the mutex so the
        // caller cannot check the predicate and park between our decrement
        // and the notify.
        std::lock_guard<std::mutex> lock(mu_);
        done_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock,
                   [this, seen]() { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = current_job_;
      }
      if (job != nullptr) RunJob(*job);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_job_;  // guarded by mu_
  uint64_t generation_ = 0;           // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
};

}  // namespace cafe

#endif  // CAFE_COMMON_THREAD_POOL_H_
