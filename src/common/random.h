#ifndef CAFE_COMMON_RANDOM_H_
#define CAFE_COMMON_RANDOM_H_

#include <cstdint>

namespace cafe {

/// Finalizer of the SplitMix64 generator; a strong 64-bit bit mixer used both
/// for RNG seeding and as the core of our hash functions.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Deterministic given a seed; every stochastic component in this library
/// takes an explicit seed so experiments are reproducible.
class Rng {
 public:
  /// Seeds the four state words by iterating SplitMix64, as recommended by
  /// the xoshiro authors (avoids all-zero state and seed correlations).
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    for (auto& word : state_) {
      seed = seed + 0x9e3779b97f4a7c15ULL;
      word = SplitMix64(seed);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses the high bits via 128-bit multiply to avoid
  /// modulo bias for the ranges used here (bound << 2^64).
  uint64_t Uniform(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(UniformDouble()) * (hi - lo);
  }

  /// Standard normal via Box–Muller (cached second value not kept: callers
  /// in this library draw in bulk and the transcendental cost is irrelevant
  /// next to training compute).
  double Normal();

  /// Bernoulli with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Copies the four xoshiro state words out / back in. Used by checkpoint
  /// serialization so stores that draw randomness after a restore (AdaEmbed
  /// row re-init) continue bit-identically to an uninterrupted run.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void LoadState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cafe

#endif  // CAFE_COMMON_RANDOM_H_
