#ifndef CAFE_COMMON_HASH_H_
#define CAFE_COMMON_HASH_H_

#include <cstdint>

#include "common/random.h"

namespace cafe {

/// A seeded 64-bit hash over 64-bit keys. Different seeds give (empirically)
/// independent hash functions, which the sketches and the multi-table hash
/// embeddings rely on. The construction XORs the key with a SplitMix64-mixed
/// seed and mixes again, which passes avalanche tests for this use.
class SeededHash {
 public:
  explicit SeededHash(uint64_t seed = 0) : seed_mix_(SplitMix64(seed)) {}

  uint64_t operator()(uint64_t key) const {
    return SplitMix64(key ^ seed_mix_);
  }

  /// Hash reduced to [0, bound) without modulo bias (128-bit multiply).
  uint64_t Bounded(uint64_t key, uint64_t bound) const {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>((*this)(key)) * bound) >> 64);
  }

 private:
  uint64_t seed_mix_;
};

/// Stateless convenience mix for one-off hashing.
inline uint64_t HashMix(uint64_t key, uint64_t seed = 0) {
  return SplitMix64(key ^ SplitMix64(seed));
}

}  // namespace cafe

#endif  // CAFE_COMMON_HASH_H_
