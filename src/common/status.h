#ifndef CAFE_COMMON_STATUS_H_
#define CAFE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cafe {

/// Error codes used across the library. Mirrors the RocksDB/Abseil convention
/// of a small closed set of machine-readable codes plus a free-form message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  /// Transient transport failure (peer closed, connection refused, link
  /// down): retrying — possibly after a backoff — may succeed.
  kUnavailable = 9,
  /// A bounded wait elapsed before the condition was met. Retrying with a
  /// longer deadline may succeed; the operation itself is still valid.
  kDeadlineExceeded = 10,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, returned by every fallible API in
/// this library instead of throwing exceptions. Cheap to copy in the OK case
/// (no allocation); error statuses carry a message.
///
/// Usage:
///   cafe::Status s = store->Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal analog of
/// absl::StatusOr used for factory functions. T need not be
/// default-constructible.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error keeps factory functions
  /// terse: `return Status::InvalidArgument(...)` / `return value;`.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define CAFE_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::cafe::Status _status = (expr);            \
    if (!_status.ok()) return _status;          \
  } while (0)

}  // namespace cafe

#endif  // CAFE_COMMON_STATUS_H_
