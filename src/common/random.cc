#include "common/random.h"

#include <cmath>

namespace cafe {

double Rng::Normal() {
  // Box–Muller: draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace cafe
