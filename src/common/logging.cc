#include "common/logging.h"

namespace cafe {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "[CAFE CHECK FAILED] %s:%d: (%s) %s\n", file, line,
               expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cafe
