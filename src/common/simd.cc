#include "common/simd.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(CAFE_NO_SIMD)
#define CAFE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace cafe {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier: the reference loops, verbatim. Compiled at the baseline arch
// (no FMA instruction exists there), so no contraction can change rounding.
// ---------------------------------------------------------------------------

inline float ClampS(float g, float bound) {
  return std::clamp(g, -bound, bound);
}

void CopyRowScalar(float* dst, const float* src, uint32_t d) {
  std::memcpy(dst, src, d * sizeof(float));
}

void AxpyNegScalar(float* row, const float* g, uint32_t d, float lr) {
  for (uint32_t k = 0; k < d; ++k) row[k] -= lr * g[k];
}

void AxpyClipNegScalar(float* row, const float* g, uint32_t d, float lr,
                       float bound) {
  for (uint32_t k = 0; k < d; ++k) row[k] -= lr * ClampS(g[k], bound);
}

void AccumClipScalar(float* acc, const float* g, uint32_t d, float bound) {
  for (uint32_t k = 0; k < d; ++k) acc[k] += ClampS(g[k], bound);
}

void AddScaledScalar(float* dst, const float* src, uint32_t d, float a) {
  for (uint32_t k = 0; k < d; ++k) dst[k] += a * src[k];
}

void AddRowsScalar(float* dst, const float* a, const float* b, uint32_t d) {
  for (uint32_t k = 0; k < d; ++k) dst[k] = a[k] + b[k];
}

void MulRowsScalar(float* dst, const float* a, const float* b, uint32_t d) {
  for (uint32_t k = 0; k < d; ++k) dst[k] = a[k] * b[k];
}

constexpr detail::Kernels kScalarKernels = {
    &CopyRowScalar, &AxpyNegScalar, &AxpyClipNegScalar, &AccumClipScalar,
    &AddScaledScalar, &AddRowsScalar, &MulRowsScalar};

#if defined(CAFE_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 tier: 8-lane kernels. Tails use masked loads/stores — explicit
// intrinsics the compiler will not contract — so EXACT kernels round every
// element exactly like the scalar loop (clamp = min(max(..)), one vmulps,
// one vsubps/vaddps).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i TailMask8(uint32_t r) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(r)), idx);
}

__attribute__((target("avx2"))) void CopyRowAvx2(float* dst, const float* src,
                                                 uint32_t d) {
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    _mm256_storeu_ps(dst + k, _mm256_loadu_ps(src + k));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    _mm256_maskstore_ps(dst + k, m, _mm256_maskload_ps(src + k, m));
  }
}

__attribute__((target("avx2"))) void AxpyNegAvx2(float* row, const float* g,
                                                 uint32_t d, float lr) {
  const __m256 vlr = _mm256_set1_ps(lr);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vg = _mm256_loadu_ps(g + k);
    const __m256 vr = _mm256_loadu_ps(row + k);
    _mm256_storeu_ps(row + k, _mm256_sub_ps(vr, _mm256_mul_ps(vlr, vg)));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vg = _mm256_maskload_ps(g + k, m);
    const __m256 vr = _mm256_maskload_ps(row + k, m);
    _mm256_maskstore_ps(row + k, m,
                        _mm256_sub_ps(vr, _mm256_mul_ps(vlr, vg)));
  }
}

__attribute__((target("avx2,fma"))) void AxpyNegFmaAvx2(float* row,
                                                        const float* g,
                                                        uint32_t d, float lr) {
  const __m256 vlr = _mm256_set1_ps(lr);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vg = _mm256_loadu_ps(g + k);
    const __m256 vr = _mm256_loadu_ps(row + k);
    _mm256_storeu_ps(row + k, _mm256_fnmadd_ps(vlr, vg, vr));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vg = _mm256_maskload_ps(g + k, m);
    const __m256 vr = _mm256_maskload_ps(row + k, m);
    _mm256_maskstore_ps(row + k, m, _mm256_fnmadd_ps(vlr, vg, vr));
  }
}

__attribute__((target("avx2"))) inline __m256 Clamp8(__m256 v, __m256 lo,
                                                     __m256 hi) {
  return _mm256_min_ps(_mm256_max_ps(v, lo), hi);
}

__attribute__((target("avx2"))) void AxpyClipNegAvx2(float* row,
                                                     const float* g,
                                                     uint32_t d, float lr,
                                                     float bound) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vhi = _mm256_set1_ps(bound);
  const __m256 vlo = _mm256_set1_ps(-bound);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vg = Clamp8(_mm256_loadu_ps(g + k), vlo, vhi);
    const __m256 vr = _mm256_loadu_ps(row + k);
    _mm256_storeu_ps(row + k, _mm256_sub_ps(vr, _mm256_mul_ps(vlr, vg)));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vg = Clamp8(_mm256_maskload_ps(g + k, m), vlo, vhi);
    const __m256 vr = _mm256_maskload_ps(row + k, m);
    _mm256_maskstore_ps(row + k, m,
                        _mm256_sub_ps(vr, _mm256_mul_ps(vlr, vg)));
  }
}

__attribute__((target("avx2,fma"))) void AxpyClipNegFmaAvx2(float* row,
                                                            const float* g,
                                                            uint32_t d,
                                                            float lr,
                                                            float bound) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vhi = _mm256_set1_ps(bound);
  const __m256 vlo = _mm256_set1_ps(-bound);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vg = Clamp8(_mm256_loadu_ps(g + k), vlo, vhi);
    const __m256 vr = _mm256_loadu_ps(row + k);
    _mm256_storeu_ps(row + k, _mm256_fnmadd_ps(vlr, vg, vr));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vg = Clamp8(_mm256_maskload_ps(g + k, m), vlo, vhi);
    const __m256 vr = _mm256_maskload_ps(row + k, m);
    _mm256_maskstore_ps(row + k, m, _mm256_fnmadd_ps(vlr, vg, vr));
  }
}

__attribute__((target("avx2"))) void AccumClipAvx2(float* acc, const float* g,
                                                   uint32_t d, float bound) {
  const __m256 vhi = _mm256_set1_ps(bound);
  const __m256 vlo = _mm256_set1_ps(-bound);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vg = Clamp8(_mm256_loadu_ps(g + k), vlo, vhi);
    _mm256_storeu_ps(acc + k, _mm256_add_ps(_mm256_loadu_ps(acc + k), vg));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vg = Clamp8(_mm256_maskload_ps(g + k, m), vlo, vhi);
    _mm256_maskstore_ps(acc + k, m,
                        _mm256_add_ps(_mm256_maskload_ps(acc + k, m), vg));
  }
}

__attribute__((target("avx2"))) void AddScaledAvx2(float* dst,
                                                   const float* src,
                                                   uint32_t d, float a) {
  const __m256 va = _mm256_set1_ps(a);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vs = _mm256_mul_ps(va, _mm256_loadu_ps(src + k));
    _mm256_storeu_ps(dst + k, _mm256_add_ps(_mm256_loadu_ps(dst + k), vs));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vs = _mm256_mul_ps(va, _mm256_maskload_ps(src + k, m));
    _mm256_maskstore_ps(dst + k, m,
                        _mm256_add_ps(_mm256_maskload_ps(dst + k, m), vs));
  }
}

__attribute__((target("avx2,fma"))) void AddScaledFmaAvx2(float* dst,
                                                          const float* src,
                                                          uint32_t d,
                                                          float a) {
  const __m256 va = _mm256_set1_ps(a);
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m256 vs = _mm256_loadu_ps(src + k);
    _mm256_storeu_ps(dst + k,
                     _mm256_fmadd_ps(va, vs, _mm256_loadu_ps(dst + k)));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    const __m256 vs = _mm256_maskload_ps(src + k, m);
    _mm256_maskstore_ps(dst + k, m,
                        _mm256_fmadd_ps(va, vs, _mm256_maskload_ps(dst + k, m)));
  }
}


__attribute__((target("avx2"))) void AddRowsAvx2(float* dst, const float* a,
                                                 const float* b, uint32_t d) {
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    _mm256_storeu_ps(
        dst + k, _mm256_add_ps(_mm256_loadu_ps(a + k), _mm256_loadu_ps(b + k)));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    _mm256_maskstore_ps(dst + k, m,
                        _mm256_add_ps(_mm256_maskload_ps(a + k, m),
                                      _mm256_maskload_ps(b + k, m)));
  }
}

__attribute__((target("avx2"))) void MulRowsAvx2(float* dst, const float* a,
                                                 const float* b, uint32_t d) {
  uint32_t k = 0;
  for (; k + 8 <= d; k += 8) {
    _mm256_storeu_ps(
        dst + k, _mm256_mul_ps(_mm256_loadu_ps(a + k), _mm256_loadu_ps(b + k)));
  }
  if (k < d) {
    const __m256i m = TailMask8(d - k);
    _mm256_maskstore_ps(dst + k, m,
                        _mm256_mul_ps(_mm256_maskload_ps(a + k, m),
                                      _mm256_maskload_ps(b + k, m)));
  }
}

constexpr detail::Kernels kAvx2Kernels = {
    &CopyRowAvx2, &AxpyNegAvx2, &AxpyClipNegAvx2, &AccumClipAvx2,
    &AddScaledAvx2, &AddRowsAvx2, &MulRowsAvx2};

constexpr detail::Kernels kAvx2FusedKernels = {
    &CopyRowAvx2, &AxpyNegFmaAvx2, &AxpyClipNegFmaAvx2, &AccumClipAvx2,
    &AddScaledFmaAvx2, &AddRowsAvx2, &MulRowsAvx2};

// ---------------------------------------------------------------------------
// AVX-512F tier: 16-lane kernels. Tails use the native lane masks.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) inline __m512 Clamp16(__m512 v, __m512 lo,
                                                         __m512 hi) {
  return _mm512_min_ps(_mm512_max_ps(v, lo), hi);
}

__attribute__((target("avx512f"))) void CopyRowAvx512(float* dst,
                                                      const float* src,
                                                      uint32_t d) {
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    _mm512_storeu_ps(dst + k, _mm512_loadu_ps(src + k));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    _mm512_mask_storeu_ps(dst + k, m, _mm512_maskz_loadu_ps(m, src + k));
  }
}

__attribute__((target("avx512f"))) void AxpyNegAvx512(float* row,
                                                      const float* g,
                                                      uint32_t d, float lr) {
  const __m512 vlr = _mm512_set1_ps(lr);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vg = _mm512_loadu_ps(g + k);
    const __m512 vr = _mm512_loadu_ps(row + k);
    _mm512_storeu_ps(row + k, _mm512_sub_ps(vr, _mm512_mul_ps(vlr, vg)));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vg = _mm512_maskz_loadu_ps(m, g + k);
    const __m512 vr = _mm512_maskz_loadu_ps(m, row + k);
    _mm512_mask_storeu_ps(row + k, m,
                          _mm512_sub_ps(vr, _mm512_mul_ps(vlr, vg)));
  }
}

__attribute__((target("avx512f"))) void AxpyNegFmaAvx512(float* row,
                                                         const float* g,
                                                         uint32_t d,
                                                         float lr) {
  const __m512 vlr = _mm512_set1_ps(lr);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vg = _mm512_loadu_ps(g + k);
    const __m512 vr = _mm512_loadu_ps(row + k);
    _mm512_storeu_ps(row + k, _mm512_fnmadd_ps(vlr, vg, vr));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vg = _mm512_maskz_loadu_ps(m, g + k);
    const __m512 vr = _mm512_maskz_loadu_ps(m, row + k);
    _mm512_mask_storeu_ps(row + k, m, _mm512_fnmadd_ps(vlr, vg, vr));
  }
}

__attribute__((target("avx512f"))) void AxpyClipNegAvx512(float* row,
                                                          const float* g,
                                                          uint32_t d, float lr,
                                                          float bound) {
  const __m512 vlr = _mm512_set1_ps(lr);
  const __m512 vhi = _mm512_set1_ps(bound);
  const __m512 vlo = _mm512_set1_ps(-bound);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vg = Clamp16(_mm512_loadu_ps(g + k), vlo, vhi);
    const __m512 vr = _mm512_loadu_ps(row + k);
    _mm512_storeu_ps(row + k, _mm512_sub_ps(vr, _mm512_mul_ps(vlr, vg)));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vg = Clamp16(_mm512_maskz_loadu_ps(m, g + k), vlo, vhi);
    const __m512 vr = _mm512_maskz_loadu_ps(m, row + k);
    _mm512_mask_storeu_ps(row + k, m,
                          _mm512_sub_ps(vr, _mm512_mul_ps(vlr, vg)));
  }
}

__attribute__((target("avx512f"))) void AxpyClipNegFmaAvx512(
    float* row, const float* g, uint32_t d, float lr, float bound) {
  const __m512 vlr = _mm512_set1_ps(lr);
  const __m512 vhi = _mm512_set1_ps(bound);
  const __m512 vlo = _mm512_set1_ps(-bound);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vg = Clamp16(_mm512_loadu_ps(g + k), vlo, vhi);
    const __m512 vr = _mm512_loadu_ps(row + k);
    _mm512_storeu_ps(row + k, _mm512_fnmadd_ps(vlr, vg, vr));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vg = Clamp16(_mm512_maskz_loadu_ps(m, g + k), vlo, vhi);
    const __m512 vr = _mm512_maskz_loadu_ps(m, row + k);
    _mm512_mask_storeu_ps(row + k, m, _mm512_fnmadd_ps(vlr, vg, vr));
  }
}

__attribute__((target("avx512f"))) void AccumClipAvx512(float* acc,
                                                        const float* g,
                                                        uint32_t d,
                                                        float bound) {
  const __m512 vhi = _mm512_set1_ps(bound);
  const __m512 vlo = _mm512_set1_ps(-bound);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vg = Clamp16(_mm512_loadu_ps(g + k), vlo, vhi);
    _mm512_storeu_ps(acc + k, _mm512_add_ps(_mm512_loadu_ps(acc + k), vg));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vg = Clamp16(_mm512_maskz_loadu_ps(m, g + k), vlo, vhi);
    _mm512_mask_storeu_ps(
        acc + k, m, _mm512_add_ps(_mm512_maskz_loadu_ps(m, acc + k), vg));
  }
}

__attribute__((target("avx512f"))) void AddScaledAvx512(float* dst,
                                                        const float* src,
                                                        uint32_t d, float a) {
  const __m512 va = _mm512_set1_ps(a);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vs = _mm512_mul_ps(va, _mm512_loadu_ps(src + k));
    _mm512_storeu_ps(dst + k, _mm512_add_ps(_mm512_loadu_ps(dst + k), vs));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vs = _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m, src + k));
    _mm512_mask_storeu_ps(
        dst + k, m, _mm512_add_ps(_mm512_maskz_loadu_ps(m, dst + k), vs));
  }
}

__attribute__((target("avx512f"))) void AddScaledFmaAvx512(float* dst,
                                                           const float* src,
                                                           uint32_t d,
                                                           float a) {
  const __m512 va = _mm512_set1_ps(a);
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 vs = _mm512_loadu_ps(src + k);
    _mm512_storeu_ps(dst + k,
                     _mm512_fmadd_ps(va, vs, _mm512_loadu_ps(dst + k)));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    const __m512 vs = _mm512_maskz_loadu_ps(m, src + k);
    _mm512_mask_storeu_ps(
        dst + k, m, _mm512_fmadd_ps(va, vs, _mm512_maskz_loadu_ps(m, dst + k)));
  }
}


__attribute__((target("avx512f"))) void AddRowsAvx512(float* dst,
                                                      const float* a,
                                                      const float* b,
                                                      uint32_t d) {
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    _mm512_storeu_ps(
        dst + k, _mm512_add_ps(_mm512_loadu_ps(a + k), _mm512_loadu_ps(b + k)));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    _mm512_mask_storeu_ps(dst + k, m,
                          _mm512_add_ps(_mm512_maskz_loadu_ps(m, a + k),
                                        _mm512_maskz_loadu_ps(m, b + k)));
  }
}

__attribute__((target("avx512f"))) void MulRowsAvx512(float* dst,
                                                      const float* a,
                                                      const float* b,
                                                      uint32_t d) {
  uint32_t k = 0;
  for (; k + 16 <= d; k += 16) {
    _mm512_storeu_ps(
        dst + k, _mm512_mul_ps(_mm512_loadu_ps(a + k), _mm512_loadu_ps(b + k)));
  }
  if (k < d) {
    const __mmask16 m = (1u << (d - k)) - 1u;
    _mm512_mask_storeu_ps(dst + k, m,
                          _mm512_mul_ps(_mm512_maskz_loadu_ps(m, a + k),
                                        _mm512_maskz_loadu_ps(m, b + k)));
  }
}

constexpr detail::Kernels kAvx512Kernels = {
    &CopyRowAvx512, &AxpyNegAvx512, &AxpyClipNegAvx512, &AccumClipAvx512,
    &AddScaledAvx512, &AddRowsAvx512, &MulRowsAvx512};

constexpr detail::Kernels kAvx512FusedKernels = {
    &CopyRowAvx512, &AxpyNegFmaAvx512, &AxpyClipNegFmaAvx512,
    &AccumClipAvx512, &AddScaledFmaAvx512, &AddRowsAvx512, &MulRowsAvx512};

#endif  // CAFE_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

Tier DetectHost() {
#if defined(CAFE_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return Tier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  return Tier::kScalar;
}

std::atomic<Tier> g_active_tier{Tier::kScalar};
std::atomic<bool> g_fused_fma{false};

const detail::Kernels* TableFor(Tier tier, bool fused) {
#if defined(CAFE_SIMD_X86)
  switch (tier) {
    case Tier::kAvx512:
      return fused ? &kAvx512FusedKernels : &kAvx512Kernels;
    case Tier::kAvx2:
      return fused ? &kAvx2FusedKernels : &kAvx2Kernels;
    case Tier::kScalar:
      break;
  }
#else
  (void)tier;
  (void)fused;
#endif
  return &kScalarKernels;
}

void Rebind() {
  detail::g_kernels.store(
      TableFor(g_active_tier.load(std::memory_order_relaxed),
               g_fused_fma.load(std::memory_order_relaxed)),
      std::memory_order_release);
}

// Upgrades the constant-initialized scalar table to the host's best tier
// before main() runs.
struct DispatchInit {
  DispatchInit() {
    g_active_tier.store(DetectHost(), std::memory_order_relaxed);
    Rebind();
  }
};
DispatchInit g_dispatch_init;

}  // namespace

namespace detail {
std::atomic<const Kernels*> g_kernels{&kScalarKernels};
}  // namespace detail

Tier DetectedTier() {
  static const Tier tier = DetectHost();
  return tier;
}

Tier ActiveTier() { return g_active_tier.load(std::memory_order_relaxed); }

Tier SetActiveTier(Tier tier) {
  const Tier capped = std::min(tier, DetectedTier());
  g_active_tier.store(capped, std::memory_order_relaxed);
  Rebind();
  return capped;
}

void ResetActiveTier() { (void)SetActiveTier(DetectedTier()); }

void SetFusedFma(bool enable) {
  g_fused_fma.store(enable, std::memory_order_relaxed);
  Rebind();
}

bool FusedFma() { return g_fused_fma.load(std::memory_order_relaxed); }

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kAvx512:
      return "avx512";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace simd
}  // namespace cafe
