#ifndef CAFE_MODELS_DLRM_H_
#define CAFE_MODELS_DLRM_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "models/model.h"
#include "nn/embedding_bag.h"
#include "nn/mlp.h"

namespace cafe {

/// DLRM (Naumov et al. 2019): the paper's primary model (§5.1.1).
///
/// Architecture: categorical fields embed to d-dim vectors; numerical
/// features pass through a bottom MLP ending at d; the dot-product
/// interaction computes all pairwise dots between the K = num_fields (+1
/// with a bottom tower) vectors; the top MLP maps [bottom output, dots] to
/// one logit.
class DlrmModel : public RecModel {
 public:
  /// `store` must outlive the model and have dim == config.emb_dim.
  static StatusOr<std::unique_ptr<DlrmModel>> Create(
      const ModelConfig& config, EmbeddingStore* store);

  double TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* logits) override;
  std::string Name() const override { return "dlrm"; }
  EmbeddingStore* store() override { return store_; }
  size_t DenseParameters() const override;
  void CollectDenseParams(std::vector<Param>* out) override;
  Optimizer* optimizer() override { return optimizer_.get(); }
  void SetBackwardParallelism(ThreadPool* pool, uint32_t shards) override {
    emb_layer_.SetBackwardParallelism(pool, shards);
  }

 private:
  DlrmModel(const ModelConfig& config, EmbeddingStore* store);

  size_t NumVectors() const {
    return config_.num_fields + (bottom_ != nullptr ? 1 : 0);
  }
  size_t NumPairs() const {
    const size_t k = NumVectors();
    return k * (k - 1) / 2;
  }
  size_t TopInputSize() const {
    return NumPairs() + (bottom_ != nullptr ? config_.emb_dim : 0);
  }

  /// Forward through embeddings + bottom tower + interaction + top MLP.
  /// Leaves intermediate tensors cached for Backward.
  void Forward(const Batch& batch, Tensor* logits);

  ModelConfig config_;
  EmbeddingStore* store_;
  EmbeddingLayerGroup emb_layer_;  // batched lookup/update over store_
  Rng rng_;
  std::unique_ptr<Mlp> bottom_;  // nullptr when num_numerical == 0
  std::unique_ptr<Mlp> top_;
  std::unique_ptr<Optimizer> optimizer_;

  // Step-scoped caches.
  Tensor emb_;          // B x F*d
  Tensor bottom_out_;   // B x d
  Tensor interaction_;  // B x TopInputSize()
  Tensor logits_;       // B x 1
  Tensor grad_logits_;
  Tensor grad_interaction_;
  Tensor grad_emb_;
  Tensor grad_bottom_out_;
  Tensor grad_numerical_;  // sink for bottom MLP input grads
  Tensor numerical_in_;
};

}  // namespace cafe

#endif  // CAFE_MODELS_DLRM_H_
