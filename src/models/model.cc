#include "models/model.h"

#include <algorithm>

#include "common/logging.h"

namespace cafe {
namespace model_internal {

void LookupBatch(EmbeddingStore* store, const Batch& batch, Tensor* out) {
  const uint32_t d = store->dim();
  out->Resize(batch.batch_size, batch.num_fields * d);
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const uint32_t* cats = batch.sample_categorical(b);
    float* row = out->row(b);
    for (size_t f = 0; f < batch.num_fields; ++f) {
      store->Lookup(cats[f], row + f * d);
    }
  }
}

void ApplyBatchGradients(EmbeddingStore* store, const Batch& batch,
                         const Tensor& grad, float lr) {
  const uint32_t d = store->dim();
  CAFE_DCHECK(grad.rows() == batch.batch_size);
  CAFE_DCHECK(grad.cols() == batch.num_fields * d);
  // Elementwise clipping keeps heavily collided shared rows stable at
  // extreme compression ratios (hundreds of features SGD-ing into one row
  // can otherwise enter a positive-feedback blowup). Applied uniformly to
  // every store, so method comparisons stay fair.
  constexpr float kClip = 1.0f;
  float clipped[512];
  CAFE_CHECK(d <= 512) << "embedding dim too large for the clip buffer";
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const uint32_t* cats = batch.sample_categorical(b);
    const float* row = grad.row(b);
    for (size_t f = 0; f < batch.num_fields; ++f) {
      const float* g = row + f * d;
      for (uint32_t i = 0; i < d; ++i) {
        clipped[i] = std::clamp(g[i], -kClip, kClip);
      }
      store->ApplyGradient(cats[f], clipped, lr);
    }
  }
}

}  // namespace model_internal
}  // namespace cafe
