#include "models/model.h"

#include "common/logging.h"
#include "nn/embedding_bag.h"

namespace cafe {
namespace model_internal {

void LookupBatch(EmbeddingStore* store, const Batch& batch, Tensor* out) {
  const uint32_t d = store->dim();
  out->Resize(batch.batch_size, batch.num_fields * d);
  EmbeddingLayerGroup group(store, batch.num_fields);
  group.Forward(batch, out->data(), batch.num_fields * d);
}

void ApplyBatchGradients(EmbeddingStore* store, const Batch& batch,
                         const Tensor& grad, float lr) {
  const uint32_t d = store->dim();
  CAFE_DCHECK(grad.rows() == batch.batch_size);
  CAFE_DCHECK(grad.cols() == batch.num_fields * d);
  EmbeddingLayerGroup group(store, batch.num_fields);
  group.Backward(batch, grad.data(), batch.num_fields * d, lr);
}

}  // namespace model_internal
}  // namespace cafe
