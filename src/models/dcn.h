#ifndef CAFE_MODELS_DCN_H_
#define CAFE_MODELS_DCN_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "models/model.h"
#include "nn/embedding_bag.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace cafe {

/// Deep & Cross Network (Wang et al. 2017), paper §5.1.1: cross layers
/// multiply the concatenated input with its projections to produce
/// element-level cross terms:
///   x_{l+1} = x_0 * (x_l . w_l) + b_l + x_l
/// run in parallel with a deep MLP over the same input; the concatenation
/// [x_L, deep_out] passes a final linear layer to the logit.
class DcnModel : public RecModel {
 public:
  static StatusOr<std::unique_ptr<DcnModel>> Create(const ModelConfig& config,
                                                    EmbeddingStore* store);

  double TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* logits) override;
  std::string Name() const override { return "dcn"; }
  EmbeddingStore* store() override { return store_; }
  size_t DenseParameters() const override;
  void CollectDenseParams(std::vector<Param>* out) override;
  Optimizer* optimizer() override { return optimizer_.get(); }
  void SetBackwardParallelism(ThreadPool* pool, uint32_t shards) override {
    emb_layer_.SetBackwardParallelism(pool, shards);
  }

 private:
  DcnModel(const ModelConfig& config, EmbeddingStore* store);

  size_t InputSize() const {
    return config_.num_fields * config_.emb_dim + config_.num_numerical;
  }
  size_t DeepOutSize() const {
    return config_.top_hidden.empty() ? InputSize()
                                      : config_.top_hidden.back();
  }

  void BuildInput(const Batch& batch);
  void Forward(const Batch& batch, Tensor* logits);

  ModelConfig config_;
  EmbeddingStore* store_;
  EmbeddingLayerGroup emb_layer_;  // batched lookup/update over store_
  Rng rng_;

  // Cross-network parameters: per layer a weight vector w (D) and bias
  // b (D), with gradient accumulators, registered with the optimizer.
  std::vector<std::vector<float>> cross_w_, cross_b_;
  std::vector<std::vector<float>> cross_w_grad_, cross_b_grad_;

  std::unique_ptr<Mlp> deep_;      // InputSize() -> hidden (no final 1)
  std::unique_ptr<Linear> final_;  // [x_L, deep_out] -> 1
  std::unique_ptr<Optimizer> optimizer_;

  Tensor input_;                 // x_0: B x D
  std::vector<Tensor> cross_x_;  // x_0..x_L (x_0 aliases input_)
  Tensor deep_out_;              // B x DeepOutSize()
  Tensor combined_;              // B x (D + DeepOutSize())
  Tensor logits_, grad_logits_, grad_combined_, grad_deep_out_;
  Tensor grad_deep_in_, grad_x0_, grad_emb_;
};

}  // namespace cafe

#endif  // CAFE_MODELS_DCN_H_
