#include "models/dcn.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "nn/loss.h"

namespace cafe {

StatusOr<std::unique_ptr<DcnModel>> DcnModel::Create(const ModelConfig& config,
                                                     EmbeddingStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("dcn: embedding store is required");
  }
  if (store->dim() != config.emb_dim) {
    return Status::InvalidArgument("dcn: store dim != config.emb_dim");
  }
  if (config.num_fields == 0) {
    return Status::InvalidArgument("dcn: num_fields must be positive");
  }
  if (config.num_cross_layers == 0) {
    return Status::InvalidArgument("dcn: needs at least one cross layer");
  }
  return std::unique_ptr<DcnModel>(new DcnModel(config, store));
}

DcnModel::DcnModel(const ModelConfig& config, EmbeddingStore* store)
    : config_(config),
      store_(store),
      emb_layer_(store, config.num_fields),
      rng_(config.seed) {
  const size_t d_in = InputSize();
  const float bound = 1.0f / std::sqrt(static_cast<float>(d_in));
  for (size_t l = 0; l < config_.num_cross_layers; ++l) {
    cross_w_.emplace_back(d_in);
    cross_b_.emplace_back(d_in, 0.0f);
    cross_w_grad_.emplace_back(d_in, 0.0f);
    cross_b_grad_.emplace_back(d_in, 0.0f);
    for (float& w : cross_w_.back()) w = rng_.UniformFloat(-bound, bound);
  }

  // Deep tower without the final projection (it joins the cross output).
  std::vector<size_t> deep_sizes;
  deep_sizes.push_back(d_in);
  deep_sizes.insert(deep_sizes.end(), config_.top_hidden.begin(),
                    config_.top_hidden.end());
  if (deep_sizes.size() == 1) deep_sizes.push_back(d_in);
  deep_ = std::make_unique<Mlp>(deep_sizes, rng_);
  final_ = std::make_unique<Linear>(d_in + DeepOutSize(), 1, rng_);

  optimizer_ = MakeOptimizer(config_.dense_optimizer);
  CAFE_CHECK(optimizer_ != nullptr)
      << "unknown optimizer: " << config_.dense_optimizer;
  std::vector<Param> params;
  CollectDenseParams(&params);
  optimizer_->Register(params);
}

void DcnModel::CollectDenseParams(std::vector<Param>* out) {
  for (size_t l = 0; l < config_.num_cross_layers; ++l) {
    out->push_back({cross_w_[l].data(), cross_w_grad_[l].data(),
                    cross_w_[l].size()});
    out->push_back({cross_b_[l].data(), cross_b_grad_[l].data(),
                    cross_b_[l].size()});
  }
  deep_->CollectParams(out);
  final_->CollectParams(out);
}

void DcnModel::BuildInput(const Batch& batch) {
  const size_t emb_cols = config_.num_fields * config_.emb_dim;
  input_.Resize(batch.batch_size, InputSize());
  // Batched embedding gather straight into the input tensor (sample stride
  // InputSize()); the numerical tail of each row is filled afterwards.
  emb_layer_.Forward(batch, input_.data(), InputSize());
  if (config_.num_numerical > 0) {
    for (size_t b = 0; b < batch.batch_size; ++b) {
      std::memcpy(input_.row(b) + emb_cols, batch.sample_numerical(b),
                  config_.num_numerical * sizeof(float));
    }
  }
}

void DcnModel::Forward(const Batch& batch, Tensor* logits) {
  CAFE_DCHECK(batch.num_fields == config_.num_fields);
  BuildInput(batch);
  const size_t d_in = InputSize();
  const size_t layers = config_.num_cross_layers;

  cross_x_.resize(layers + 1);
  cross_x_[0] = input_;
  for (size_t l = 0; l < layers; ++l) {
    cross_x_[l + 1].Resize(batch.batch_size, d_in);
    const float* w = cross_w_[l].data();
    const float* bias = cross_b_[l].data();
    for (size_t b = 0; b < batch.batch_size; ++b) {
      const float* x0 = input_.row(b);
      const float* xl = cross_x_[l].row(b);
      float* xn = cross_x_[l + 1].row(b);
      float s = 0.0f;
      for (size_t i = 0; i < d_in; ++i) s += xl[i] * w[i];
      for (size_t i = 0; i < d_in; ++i) xn[i] = x0[i] * s + bias[i] + xl[i];
    }
  }

  deep_->Forward(input_, &deep_out_);

  combined_.Resize(batch.batch_size, d_in + DeepOutSize());
  for (size_t b = 0; b < batch.batch_size; ++b) {
    float* row = combined_.row(b);
    std::memcpy(row, cross_x_[layers].row(b), d_in * sizeof(float));
    std::memcpy(row + d_in, deep_out_.row(b),
                DeepOutSize() * sizeof(float));
  }
  final_->Forward(combined_, logits);
}

double DcnModel::TrainStep(const Batch& batch) {
  Forward(batch, &logits_);
  std::vector<float> labels(batch.labels, batch.labels + batch.batch_size);
  const double loss = BceWithLogitsLoss::Compute(logits_, labels,
                                                 &grad_logits_);

  optimizer_->ZeroGrad();
  final_->Backward(grad_logits_, &grad_combined_);

  const size_t d_in = InputSize();
  const size_t layers = config_.num_cross_layers;

  // Split the combined gradient into cross-output and deep-output parts.
  Tensor grad_cross(batch.batch_size, d_in);
  grad_deep_out_.Resize(batch.batch_size, DeepOutSize());
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const float* g = grad_combined_.row(b);
    std::memcpy(grad_cross.row(b), g, d_in * sizeof(float));
    std::memcpy(grad_deep_out_.row(b), g + d_in,
                DeepOutSize() * sizeof(float));
  }

  // Cross-network backward. With x_{l+1} = x0*s + b + x_l, s = xl.w:
  //   dL/dw   += (g . x0) * x_l
  //   dL/db   += g
  //   dL/dx_l  = g + w * (g . x0)
  //   dL/dx_0 += g * s      (accumulated across layers)
  grad_x0_.Resize(batch.batch_size, d_in);
  grad_x0_.Zero();
  for (size_t l = layers; l-- > 0;) {
    const float* w = cross_w_[l].data();
    float* gw = cross_w_grad_[l].data();
    float* gb = cross_b_grad_[l].data();
    for (size_t b = 0; b < batch.batch_size; ++b) {
      const float* x0 = input_.row(b);
      const float* xl = cross_x_[l].row(b);
      float* g = grad_cross.row(b);
      float* gx0 = grad_x0_.row(b);
      float s = 0.0f;
      float g_dot_x0 = 0.0f;
      for (size_t i = 0; i < d_in; ++i) {
        s += xl[i] * w[i];
        g_dot_x0 += g[i] * x0[i];
      }
      for (size_t i = 0; i < d_in; ++i) {
        gw[i] += g_dot_x0 * xl[i];
        gb[i] += g[i];
        gx0[i] += g[i] * s;
        g[i] = g[i] + w[i] * g_dot_x0;  // becomes grad wrt x_l in place
      }
    }
  }
  // After the loop grad_cross holds dL/dx_0 through the cross chain.
  deep_->Backward(grad_deep_out_, &grad_deep_in_);

  optimizer_->Step(config_.dense_lr);

  // Total x0 gradient: cross chain + accumulated x0 terms + deep tower.
  const size_t emb_cols = config_.num_fields * config_.emb_dim;
  grad_emb_.Resize(batch.batch_size, emb_cols);
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const float* gc = grad_cross.row(b);
    const float* gx0 = grad_x0_.row(b);
    const float* gd = grad_deep_in_.row(b);
    float* ge = grad_emb_.row(b);
    for (size_t i = 0; i < emb_cols; ++i) ge[i] = gc[i] + gx0[i] + gd[i];
  }
  emb_layer_.Backward(batch, grad_emb_.data(), emb_cols, config_.emb_lr,
                      /*reuse_staged_ids=*/true);
  store_->Tick();
  return loss;
}

void DcnModel::Predict(const Batch& batch, std::vector<float>* logits) {
  Tensor out;
  Forward(batch, &out);
  logits->resize(batch.batch_size);
  for (size_t b = 0; b < batch.batch_size; ++b) (*logits)[b] = out.at(b, 0);
}

size_t DcnModel::DenseParameters() const {
  size_t total = deep_->NumParameters() + final_->NumParameters();
  for (size_t l = 0; l < cross_w_.size(); ++l) {
    total += cross_w_[l].size() + cross_b_[l].size();
  }
  return total;
}

}  // namespace cafe
