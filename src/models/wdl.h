#ifndef CAFE_MODELS_WDL_H_
#define CAFE_MODELS_WDL_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "models/model.h"
#include "nn/embedding_bag.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace cafe {

/// Wide & Deep (Cheng et al. 2016), as described in the paper §5.1.1:
/// embeddings (plus raw numerical features) feed a wide network (one FC
/// layer) and a deep network (several FC layers); the two outputs are
/// summed into the final logit.
class WdlModel : public RecModel {
 public:
  static StatusOr<std::unique_ptr<WdlModel>> Create(const ModelConfig& config,
                                                    EmbeddingStore* store);

  double TrainStep(const Batch& batch) override;
  void Predict(const Batch& batch, std::vector<float>* logits) override;
  std::string Name() const override { return "wdl"; }
  EmbeddingStore* store() override { return store_; }
  size_t DenseParameters() const override;
  void CollectDenseParams(std::vector<Param>* out) override;
  Optimizer* optimizer() override { return optimizer_.get(); }
  void SetBackwardParallelism(ThreadPool* pool, uint32_t shards) override {
    emb_layer_.SetBackwardParallelism(pool, shards);
  }

 private:
  WdlModel(const ModelConfig& config, EmbeddingStore* store);

  size_t InputSize() const {
    return config_.num_fields * config_.emb_dim + config_.num_numerical;
  }

  /// Builds the concatenated [embeddings, numerical] input tensor.
  void BuildInput(const Batch& batch);
  void Forward(const Batch& batch, Tensor* logits);

  ModelConfig config_;
  EmbeddingStore* store_;
  EmbeddingLayerGroup emb_layer_;  // batched lookup/update over store_
  Rng rng_;
  std::unique_ptr<Linear> wide_;  // InputSize() -> 1
  std::unique_ptr<Mlp> deep_;     // InputSize() -> hidden -> 1
  std::unique_ptr<Optimizer> optimizer_;

  Tensor input_;  // B x InputSize()
  Tensor wide_out_, deep_out_, logits_, grad_logits_;
  Tensor grad_wide_in_, grad_deep_in_, grad_emb_;
};

}  // namespace cafe

#endif  // CAFE_MODELS_WDL_H_
