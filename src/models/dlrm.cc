#include "models/dlrm.h"

#include <cstring>

#include "common/logging.h"
#include "nn/loss.h"

namespace cafe {

StatusOr<std::unique_ptr<DlrmModel>> DlrmModel::Create(
    const ModelConfig& config, EmbeddingStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("dlrm: embedding store is required");
  }
  if (store->dim() != config.emb_dim) {
    return Status::InvalidArgument("dlrm: store dim != config.emb_dim");
  }
  if (config.num_fields == 0) {
    return Status::InvalidArgument("dlrm: num_fields must be positive");
  }
  return std::unique_ptr<DlrmModel>(new DlrmModel(config, store));
}

DlrmModel::DlrmModel(const ModelConfig& config, EmbeddingStore* store)
    : config_(config),
      store_(store),
      emb_layer_(store, config.num_fields),
      rng_(config.seed) {
  if (config_.num_numerical > 0) {
    std::vector<size_t> bottom_sizes;
    bottom_sizes.push_back(config_.num_numerical);
    bottom_sizes.insert(bottom_sizes.end(), config_.bottom_hidden.begin(),
                        config_.bottom_hidden.end());
    bottom_sizes.push_back(config_.emb_dim);
    bottom_ = std::make_unique<Mlp>(bottom_sizes, rng_);
  }
  std::vector<size_t> top_sizes;
  top_sizes.push_back(TopInputSize());
  top_sizes.insert(top_sizes.end(), config_.top_hidden.begin(),
                   config_.top_hidden.end());
  top_sizes.push_back(1);
  top_ = std::make_unique<Mlp>(top_sizes, rng_);

  optimizer_ = MakeOptimizer(config_.dense_optimizer);
  CAFE_CHECK(optimizer_ != nullptr)
      << "unknown optimizer: " << config_.dense_optimizer;
  std::vector<Param> params;
  CollectDenseParams(&params);
  optimizer_->Register(params);
}

void DlrmModel::CollectDenseParams(std::vector<Param>* out) {
  if (bottom_ != nullptr) bottom_->CollectParams(out);
  top_->CollectParams(out);
}

void DlrmModel::Forward(const Batch& batch, Tensor* logits) {
  CAFE_DCHECK(batch.num_fields == config_.num_fields);
  const uint32_t d = config_.emb_dim;
  emb_.Resize(batch.batch_size, batch.num_fields * d);
  emb_layer_.Forward(batch, emb_.data(), batch.num_fields * d);

  if (bottom_ != nullptr) {
    numerical_in_.Resize(batch.batch_size, config_.num_numerical);
    std::memcpy(numerical_in_.data(), batch.numerical,
                batch.batch_size * config_.num_numerical * sizeof(float));
    bottom_->Forward(numerical_in_, &bottom_out_);
  }

  // Dot-product interaction: all pairwise dots between the K vectors of
  // each sample; the bottom output (if any) is vector index F and is also
  // concatenated raw.
  const size_t k = NumVectors();
  interaction_.Resize(batch.batch_size, TopInputSize());
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const float* emb_row = emb_.row(b);
    float* out = interaction_.row(b);
    size_t pos = 0;
    if (bottom_ != nullptr) {
      std::memcpy(out, bottom_out_.row(b), d * sizeof(float));
      pos = d;
    }
    auto vec = [&](size_t i) -> const float* {
      return i < config_.num_fields ? emb_row + i * d : bottom_out_.row(b);
    };
    for (size_t i = 0; i < k; ++i) {
      const float* vi = vec(i);
      for (size_t j = i + 1; j < k; ++j) {
        const float* vj = vec(j);
        float dot = 0.0f;
        for (uint32_t t = 0; t < d; ++t) dot += vi[t] * vj[t];
        out[pos++] = dot;
      }
    }
  }
  top_->Forward(interaction_, logits);
}

double DlrmModel::TrainStep(const Batch& batch) {
  Forward(batch, &logits_);
  std::vector<float> labels(batch.labels, batch.labels + batch.batch_size);
  const double loss = BceWithLogitsLoss::Compute(logits_, labels,
                                                 &grad_logits_);

  optimizer_->ZeroGrad();
  top_->Backward(grad_logits_, &grad_interaction_);

  // Interaction backward: d(vi . vj)/dvi = vj. The bottom vector also
  // receives the gradient of its raw concatenation.
  const uint32_t d = config_.emb_dim;
  const size_t k = NumVectors();
  grad_emb_.Resize(batch.batch_size, config_.num_fields * d);
  grad_emb_.Zero();
  if (bottom_ != nullptr) {
    grad_bottom_out_.Resize(batch.batch_size, d);
    grad_bottom_out_.Zero();
  }
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const float* emb_row = emb_.row(b);
    const float* g_int = grad_interaction_.row(b);
    float* g_emb = grad_emb_.row(b);
    size_t pos = 0;
    if (bottom_ != nullptr) {
      float* g_bot = grad_bottom_out_.row(b);
      for (uint32_t t = 0; t < d; ++t) g_bot[t] += g_int[t];
      pos = d;
    }
    auto vec = [&](size_t i) -> const float* {
      return i < config_.num_fields ? emb_row + i * d : bottom_out_.row(b);
    };
    auto grad_vec = [&](size_t i) -> float* {
      return i < config_.num_fields ? g_emb + i * d : grad_bottom_out_.row(b);
    };
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        const float g = g_int[pos++];
        if (g == 0.0f) continue;
        const float* vi = vec(i);
        const float* vj = vec(j);
        float* gi = grad_vec(i);
        float* gj = grad_vec(j);
        for (uint32_t t = 0; t < d; ++t) {
          gi[t] += g * vj[t];
          gj[t] += g * vi[t];
        }
      }
    }
  }
  if (bottom_ != nullptr) {
    bottom_->Backward(grad_bottom_out_, &grad_numerical_);
  }
  optimizer_->Step(config_.dense_lr);
  emb_layer_.Backward(batch, grad_emb_.data(), config_.num_fields * d,
                      config_.emb_lr, /*reuse_staged_ids=*/true);
  store_->Tick();
  return loss;
}

void DlrmModel::Predict(const Batch& batch, std::vector<float>* logits) {
  Tensor out;
  Forward(batch, &out);
  logits->resize(batch.batch_size);
  for (size_t b = 0; b < batch.batch_size; ++b) (*logits)[b] = out.at(b, 0);
}

size_t DlrmModel::DenseParameters() const {
  size_t total = top_->NumParameters();
  if (bottom_ != nullptr) total += bottom_->NumParameters();
  return total;
}

}  // namespace cafe
