#ifndef CAFE_MODELS_MODEL_H_
#define CAFE_MODELS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/batch.h"
#include "embed/embedding_store.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace cafe {

/// Hyperparameters shared by the three recommendation models. The embedding
/// store is injected (not owned), so any compressor can back any model —
/// CAFE's "plug-in embedding layer" design (§4).
struct ModelConfig {
  size_t num_fields = 0;
  uint32_t emb_dim = 16;
  uint32_t num_numerical = 0;
  /// Bottom MLP hidden sizes (numerical tower; DLRM only); the final layer
  /// always projects to emb_dim.
  std::vector<size_t> bottom_hidden = {16};
  /// Top / deep MLP hidden sizes; the final layer always projects to 1.
  std::vector<size_t> top_hidden = {64, 32};
  /// Number of cross layers (DCN only).
  size_t num_cross_layers = 2;
  /// SGD learning rate for sparse embedding updates.
  float emb_lr = 0.05f;
  /// Learning rate for the dense parameters.
  float dense_lr = 0.02f;
  /// Dense optimizer: "sgd" | "adagrad" | "adam".
  std::string dense_optimizer = "adagrad";
  uint64_t seed = 123;
};

/// Abstract recommendation model over an EmbeddingStore. TrainStep runs
/// forward + BCE loss + backward, updates dense parameters through the
/// model's optimizer and embedding rows through the store, then calls
/// store->Tick(). Predict computes logits only (no state updates besides
/// store lookup statistics).
class RecModel {
 public:
  virtual ~RecModel() = default;

  RecModel() = default;
  RecModel(const RecModel&) = delete;
  RecModel& operator=(const RecModel&) = delete;

  /// One optimization step on `batch`; returns the mean BCE loss.
  virtual double TrainStep(const Batch& batch) = 0;

  /// Fills `logits` with one raw logit per sample.
  virtual void Predict(const Batch& batch, std::vector<float>* logits) = 0;

  virtual std::string Name() const = 0;

  virtual EmbeddingStore* store() = 0;

  /// Learnable scalars outside the embedding table (for Table 2-style
  /// accounting; negligible next to embeddings, as the paper notes).
  virtual size_t DenseParameters() const = 0;

  /// Appends views over every dense learnable parameter block in a stable
  /// order (the same order the blocks register with the optimizer), so two
  /// models built from the same config expose structurally identical lists.
  /// Checkpointing walks this to save/restore dense weights (io/checkpoint).
  virtual void CollectDenseParams(std::vector<Param>* out) = 0;

  /// The dense-parameter optimizer, so checkpoints can carry its adaptive
  /// state (Adagrad/Adam accumulators) and training resume is bit-identical.
  /// May be null for models that do no dense training.
  virtual Optimizer* optimizer() { return nullptr; }

  /// Routes the embedding backward through `pool` with `shards` row
  /// partitions (bit-identical to serial; see ThreadPool). Pass nullptr /
  /// <= 1 to restore the serial scatter — callers that install a pool MUST
  /// do so before the pool is destroyed. Default: no-op for models without
  /// a batched embedding layer.
  virtual void SetBackwardParallelism(ThreadPool* pool, uint32_t shards) {
    (void)pool;
    (void)shards;
  }
};

namespace model_internal {

/// Gathers embeddings for every (sample, field) of `batch` into `out`
/// (batch_size x num_fields*dim), sample-major. Convenience wrapper over
/// the batched store API for tools and tests; models keep a persistent
/// EmbeddingLayerGroup (nn/embedding_bag.h) instead so staging buffers are
/// reused across steps.
void LookupBatch(EmbeddingStore* store, const Batch& batch, Tensor* out);

/// Routes per-(sample, field) embedding gradients in `grad`
/// (batch_size x num_fields*dim) back to the store with SGD rate `lr`,
/// clipped like the training path. Convenience wrapper, see LookupBatch.
void ApplyBatchGradients(EmbeddingStore* store, const Batch& batch,
                         const Tensor& grad, float lr);

}  // namespace model_internal

}  // namespace cafe

#endif  // CAFE_MODELS_MODEL_H_
