#include "models/wdl.h"

#include <cstring>

#include "common/logging.h"
#include "nn/loss.h"

namespace cafe {

StatusOr<std::unique_ptr<WdlModel>> WdlModel::Create(const ModelConfig& config,
                                                     EmbeddingStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("wdl: embedding store is required");
  }
  if (store->dim() != config.emb_dim) {
    return Status::InvalidArgument("wdl: store dim != config.emb_dim");
  }
  if (config.num_fields == 0) {
    return Status::InvalidArgument("wdl: num_fields must be positive");
  }
  return std::unique_ptr<WdlModel>(new WdlModel(config, store));
}

WdlModel::WdlModel(const ModelConfig& config, EmbeddingStore* store)
    : config_(config),
      store_(store),
      emb_layer_(store, config.num_fields),
      rng_(config.seed) {
  wide_ = std::make_unique<Linear>(InputSize(), 1, rng_);
  std::vector<size_t> deep_sizes;
  deep_sizes.push_back(InputSize());
  deep_sizes.insert(deep_sizes.end(), config_.top_hidden.begin(),
                    config_.top_hidden.end());
  deep_sizes.push_back(1);
  deep_ = std::make_unique<Mlp>(deep_sizes, rng_);

  optimizer_ = MakeOptimizer(config_.dense_optimizer);
  CAFE_CHECK(optimizer_ != nullptr)
      << "unknown optimizer: " << config_.dense_optimizer;
  std::vector<Param> params;
  CollectDenseParams(&params);
  optimizer_->Register(params);
}

void WdlModel::CollectDenseParams(std::vector<Param>* out) {
  wide_->CollectParams(out);
  deep_->CollectParams(out);
}

void WdlModel::BuildInput(const Batch& batch) {
  const size_t emb_cols = config_.num_fields * config_.emb_dim;
  input_.Resize(batch.batch_size, InputSize());
  // Batched embedding gather straight into the input tensor (sample stride
  // InputSize()); the numerical tail of each row is filled afterwards.
  emb_layer_.Forward(batch, input_.data(), InputSize());
  if (config_.num_numerical > 0) {
    for (size_t b = 0; b < batch.batch_size; ++b) {
      std::memcpy(input_.row(b) + emb_cols, batch.sample_numerical(b),
                  config_.num_numerical * sizeof(float));
    }
  }
}

void WdlModel::Forward(const Batch& batch, Tensor* logits) {
  CAFE_DCHECK(batch.num_fields == config_.num_fields);
  BuildInput(batch);
  wide_->Forward(input_, &wide_out_);
  deep_->Forward(input_, &deep_out_);
  logits->Resize(batch.batch_size, 1);
  for (size_t b = 0; b < batch.batch_size; ++b) {
    logits->at(b, 0) = wide_out_.at(b, 0) + deep_out_.at(b, 0);
  }
}

double WdlModel::TrainStep(const Batch& batch) {
  Forward(batch, &logits_);
  std::vector<float> labels(batch.labels, batch.labels + batch.batch_size);
  const double loss = BceWithLogitsLoss::Compute(logits_, labels,
                                                 &grad_logits_);

  optimizer_->ZeroGrad();
  // d logit = d wide + d deep, so both branches see grad_logits_.
  wide_->Backward(grad_logits_, &grad_wide_in_);
  deep_->Backward(grad_logits_, &grad_deep_in_);
  optimizer_->Step(config_.dense_lr);

  // Embedding gradient = sum of both branches' input gradients, truncated
  // to the embedding columns.
  const size_t emb_cols = config_.num_fields * config_.emb_dim;
  grad_emb_.Resize(batch.batch_size, emb_cols);
  for (size_t b = 0; b < batch.batch_size; ++b) {
    const float* gw = grad_wide_in_.row(b);
    const float* gd = grad_deep_in_.row(b);
    float* ge = grad_emb_.row(b);
    for (size_t i = 0; i < emb_cols; ++i) ge[i] = gw[i] + gd[i];
  }
  emb_layer_.Backward(batch, grad_emb_.data(), emb_cols, config_.emb_lr,
                      /*reuse_staged_ids=*/true);
  store_->Tick();
  return loss;
}

void WdlModel::Predict(const Batch& batch, std::vector<float>* logits) {
  Tensor out;
  Forward(batch, &out);
  logits->resize(batch.batch_size);
  for (size_t b = 0; b < batch.batch_size; ++b) (*logits)[b] = out.at(b, 0);
}

size_t WdlModel::DenseParameters() const {
  return wide_->NumParameters() + deep_->NumParameters();
}

}  // namespace cafe
