#ifndef CAFE_TRAIN_TRAINER_H_
#define CAFE_TRAIN_TRAINER_H_

#include <cstddef>
#include <vector>

#include "data/synthetic.h"
#include "models/model.h"

namespace cafe {

struct TrainOptions {
  size_t batch_size = 256;
  /// Number of intermediate (iteration, loss, AUC) curve points to record
  /// during the pass; 0 records only the final metrics. Used by the
  /// metrics-vs-iterations figures.
  size_t curve_points = 0;
  /// Cap on test samples used per AUC evaluation (the full last day can be
  /// large; a prefix preserves ordering-free AUC estimates).
  size_t max_eval_samples = 20000;
  /// Track a per-field HyperLogLog over the training id stream and report
  /// distinct-feature estimates in TrainResult (serving capacity planning;
  /// printed alongside serving stats). ~2^precision bytes and one O(1)
  /// insert per (sample, field) — noise next to the forward/backward pass.
  bool track_field_cardinality = true;
  uint32_t cardinality_precision = 12;
  /// Threads (and row shards) for the embedding backward scatter. 1 = the
  /// serial path; > 1 runs each field's gradient scatter across a
  /// persistent worker pool, bit-identical to serial (common/thread_pool.h).
  uint32_t backward_threads = 1;
};

struct MetricPoint {
  size_t iteration = 0;
  size_t samples_seen = 0;
  /// Running average train loss up to this point (paper's online metric).
  double avg_train_loss = 0.0;
  double test_auc = 0.5;
};

struct TrainResult {
  /// Average training loss over the full pass (paper's online metric).
  double avg_train_loss = 0.0;
  /// AUC on the held-out last day (paper's offline metric).
  double final_test_auc = 0.5;
  /// Log-loss on the held-out last day.
  double final_test_logloss = 0.0;
  std::vector<MetricPoint> curve;
  double train_seconds = 0.0;
  /// Training samples per second (includes embedding + dense compute).
  double train_throughput = 0.0;
  /// HyperLogLog estimate of distinct ids seen per field during training
  /// (empty when track_field_cardinality is off).
  std::vector<double> field_distinct_estimates;
};

/// Offline metrics computed from one prediction sweep.
struct EvalMetrics {
  double auc = 0.5;
  double logloss = 0.0;
};

/// AUC and log-loss of `model` on samples [begin, end) of `data` in a
/// single batched prediction pass (no parameter updates).
EvalMetrics EvaluateMetrics(RecModel* model, const SyntheticCtrDataset& data,
                            size_t begin, size_t end,
                            size_t batch_size = 1024);

/// AUC of `model` on samples [begin, end) of `data` (no parameter updates).
double EvaluateAuc(RecModel* model, const SyntheticCtrDataset& data,
                   size_t begin, size_t end, size_t batch_size = 1024);

/// Log-loss of `model` on samples [begin, end).
double EvaluateLogLoss(RecModel* model, const SyntheticCtrDataset& data,
                       size_t begin, size_t end, size_t batch_size = 1024);

/// One chronological pass over the training split (all days but the last),
/// then evaluation on the last day — the paper's protocol (§5.1.4): online
/// metric = average train loss, offline metric = last-day AUC.
TrainResult TrainOnePass(RecModel* model, const SyntheticCtrDataset& data,
                         const TrainOptions& options);

}  // namespace cafe

#endif  // CAFE_TRAIN_TRAINER_H_
