#include "train/online_pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/exposition.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/stats_endpoint.h"
#include "obs/trace.h"
#include "serve/swappable_store.h"

namespace cafe {

StatusOr<OnlinePipelineResult> RunOnlinePipeline(
    const std::string& store_name, const StoreFactoryContext& context,
    const std::string& model_name, const ModelConfig& model_config,
    const SyntheticCtrDataset& data, const OnlinePipelineOptions& options) {
  if (options.batch_size == 0 || options.passes == 0) {
    return Status::InvalidArgument(
        "online pipeline needs batch_size >= 1 and passes >= 1");
  }
  if (options.request_size == 0 || options.num_clients == 0) {
    return Status::InvalidArgument(
        "online pipeline needs request_size >= 1 and num_clients >= 1");
  }
  const size_t test_begin = data.train_size();
  if (data.num_samples() < test_begin + options.request_size) {
    return Status::InvalidArgument(
        "online pipeline needs a test day of at least request_size samples");
  }

  OnlinePipelineResult result;

  // Live training stack.
  auto live_store = MakeStore(store_name, context);
  if (!live_store.ok()) return live_store.status();
  auto live_model = MakeModel(model_name, model_config, live_store->get());
  if (!live_model.ok()) return live_model.status();

  SnapshotManager::Options manager_options;
  manager_options.min_steps_between_cuts = options.snapshot_interval;
  manager_options.incremental = options.incremental_snapshots;
  manager_options.capture_optimizer = options.capture_optimizer;

  // Replication tier: declared BEFORE the manager so the source outlives
  // the observer installed into it. Replicas announce (kHello) now; the
  // initial cut below serves their bases.
  std::unique_ptr<replicate::ReplicationSource> replication;
  std::vector<std::unique_ptr<replicate::ReplicaManager>> replicas;
  if (options.replica_count > 0) {
    replicate::ReplicationSource::Options source_options;
    source_options.send_queue_high_bytes = options.replica_queue_high_bytes;
    source_options.send_queue_high_frames = options.replica_queue_high_frames;
    source_options.delta_history_generations = options.replica_delta_history;
    source_options.heartbeat_interval_us =
        options.replica_heartbeat_interval_us;
    source_options.liveness_timeout_us = options.replica_liveness_timeout_us;
    replication = std::make_unique<replicate::ReplicationSource>(
        [&store_name, &context]() { return MakeStore(store_name, context); },
        source_options);
    manager_options.payload_observer = replication->MakeObserver();
    for (size_t i = 0; i < options.replica_count; ++i) {
      replicate::TransportPair pair = replicate::MakePipeTransport();
      CAFE_RETURN_IF_ERROR(replication->AddReplica(std::move(pair.source)));
      replicate::ReplicaManager::Options replica_options;
      replica_options.name = "replica" + std::to_string(i);
      if (!options.replica_durable_dir.empty()) {
        replica_options.durable_dir =
            options.replica_durable_dir + "/replica" + std::to_string(i);
      }
      replica_options.heartbeat_interval_us =
          options.replica_heartbeat_interval_us;
      replica_options.liveness_timeout_us =
          options.replica_liveness_timeout_us;
      replicas.push_back(std::make_unique<replicate::ReplicaManager>(
          [&store_name, &context]() { return MakeStore(store_name, context); },
          std::move(pair.replica), replica_options));
      CAFE_RETURN_IF_ERROR(replicas.back()->Start());
    }
  }

  SnapshotManager manager(
      live_store->get(), live_model->get(),
      [&store_name, &context]() { return MakeStore(store_name, context); },
      manager_options);

  // Generation 1: the untrained-but-consistent state the server opens on
  // (traffic starts flowing before the first gradient lands, as it would
  // in a warm-started production rollout).
  auto initial = manager.Cut();
  if (!initial.ok()) return initial.status();
  SwappableStore swap(std::move(initial).value());

  InferenceServerOptions server_options = options.server;
  server_options.num_fields = data.num_fields();
  server_options.num_numerical = data.config().num_numerical;
  auto server = InferenceServer::Start(
      server_options,
      [&model_name, &model_config, &swap](size_t)
          -> StatusOr<std::unique_ptr<RecModel>> {
        // Replicas are built over the swappable store; their dense weights
        // are overwritten from the pinned snapshot on first pick-up, so no
        // checkpoint restore is needed here.
        return MakeModel(model_name, model_config, &swap);
      },
      &swap);
  if (!server.ok()) return server.status();
  InferenceServer* server_raw = server->get();

  // Live scrape endpoint: GET /metrics (Prometheus text) and /metrics.json
  // over loopback for the whole run. Stopped by its destructor on every
  // return path.
  std::unique_ptr<obs::StatsEndpoint> endpoint;
  if (options.stats_port >= 0) {
    auto started = obs::StatsEndpoint::Start(options.stats_port);
    if (!started.ok()) return started.status();
    endpoint = std::move(started).value();
    result.stats_port = endpoint->port();
  }

  // Timeline sampler: one JSON object per line, every timeline_interval_ms.
  // Both `step` and `generation` are read from monotone sources (the
  // trainer's published step counter, the server's install counter), so the
  // timeline is monotone in both by construction. The stop flag is read
  // BEFORE the sample, so the final line — written after the tail install —
  // reflects the fully trained state.
  std::atomic<uint64_t> published_step{0};
  std::atomic<bool> stop_timeline{false};
  std::atomic<uint64_t> timeline_samples{0};
  Status timeline_status;  // written only by the sampler, read after join
  std::thread timeline;
  if (!options.timeline_path.empty()) {
    timeline = std::thread([&]() {
      std::ofstream out(options.timeline_path, std::ios::trunc);
      if (!out) {
        timeline_status = Status::Internal("cannot open timeline file: " +
                                           options.timeline_path);
        return;
      }
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      obs::Gauge* const loss_ema_gauge = registry.GetGauge("train.loss_ema");
      obs::Gauge* const shed_rate_gauge = registry.GetGauge("serve.shed_rate");
      for (;;) {
        const bool last = stop_timeline.load(std::memory_order_acquire);
        const InferenceServer::Stats stats = server_raw->stats();
        obs::JsonWriter line;
        line.BeginObject();
        line.Field("t_us", obs::NowMicros());
        line.Field("step", published_step.load(std::memory_order_acquire));
        line.Field("generation", stats.snapshot_generation);
        line.Field("loss_ema", loss_ema_gauge->Value());
        line.Field("queue_depth", static_cast<uint64_t>(stats.queue_depth));
        line.Field("shed_rate", shed_rate_gauge->Value());
        line.Field("requests_total", stats.requests);
        line.EndObject();
        out << line.str() << '\n';
        timeline_samples.fetch_add(1, std::memory_order_relaxed);
        if (last) break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.timeline_interval_ms));
      }
    });
  }
  // Every exit joins the sampler; error paths just haven't set result yet.
  struct TimelineJoiner {
    std::atomic<bool>* stop;
    std::thread* thread;
    ~TimelineJoiner() {
      stop->store(true, std::memory_order_release);
      if (thread->joinable()) thread->join();
    }
  } timeline_joiner{&stop_timeline, &timeline};

  // Client traffic: closed-loop threads hammering test-day slices from
  // before the first training step until after the final swap.
  std::atomic<bool> stop_clients{false};
  std::atomic<uint64_t> client_ok{0};
  std::atomic<uint64_t> client_rejected{0};
  const size_t test_span =
      data.num_samples() - test_begin - options.request_size + 1;
  WallTimer serve_timer;
  std::vector<std::thread> clients;
  clients.reserve(options.num_clients);
  for (size_t c = 0; c < options.num_clients; ++c) {
    clients.emplace_back([&, c]() {
      Rng rng(options.client_seed ^ (0x9e37ULL * (c + 1)));
      std::deque<std::future<std::vector<float>>> inflight;
      uint64_t ok = 0, rejected = 0;
      while (!stop_clients.load(std::memory_order_acquire)) {
        const size_t start = test_begin + rng.Uniform(test_span);
        auto submitted =
            server_raw->Submit(data.GetBatch(start, options.request_size));
        if (submitted.ok()) {
          inflight.push_back(std::move(submitted).value());
        } else {
          ++rejected;
        }
        while (inflight.size() >= options.client_inflight) {
          inflight.front().get();
          inflight.pop_front();
          ++ok;
        }
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
        ++ok;
      }
      client_ok.fetch_add(ok, std::memory_order_relaxed);
      client_rejected.fetch_add(rejected, std::memory_order_relaxed);
    });
  }

  // Rollout thread: cut + hot-swap for as long as training runs. The
  // manager paces cuts to snapshot_interval trainer steps. Training is
  // marked active BEFORE the rollout thread exists: its first Cut() must
  // handshake with a step boundary, never direct-copy under a live trainer.
  manager.BeginTraining();
  std::atomic<bool> training_done{false};
  std::atomic<uint64_t> last_installed_step{0};
  uint64_t installs = 1;  // generation 1 is already serving
  Status rollout_status;
  std::thread rollout([&]() {
    while (!training_done.load(std::memory_order_acquire)) {
      auto snapshot = manager.Cut();
      if (!snapshot.ok()) {
        rollout_status = snapshot.status();
        return;
      }
      last_installed_step.store((*snapshot)->train_step,
                                std::memory_order_release);
      server_raw->InstallSnapshot(std::move(snapshot).value());
      ++installs;
    }
  });

  // Train on this thread; the only rollout cost it pays is the state copy
  // at the boundaries where a cut is pending. With backward_threads > 1 the
  // embedding scatter fans out over the pool but every step still ends on
  // this thread before AtStepBoundary, so cuts see quiesced stores exactly
  // as in the serial run.
  std::unique_ptr<ThreadPool> backward_pool;
  if (options.backward_threads > 1) {
    backward_pool = std::make_unique<ThreadPool>(options.backward_threads);
    (*live_model)->SetBackwardParallelism(backward_pool.get(),
                                          options.backward_threads);
  }
  // Same train.* registry surface as TrainOnePass: counters per step,
  // loss EMA + windowed steps/s in gauges the live scrape reads mid-run.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* const obs_steps = registry.GetCounter("train.steps_total");
  obs::Counter* const obs_examples =
      registry.GetCounter("train.examples_total");
  obs::Gauge* const obs_loss_ema = registry.GetGauge("train.loss_ema");
  obs::Gauge* const obs_steps_per_sec =
      registry.GetGauge("train.steps_per_sec");
  obs::Histogram* const obs_step_us =
      registry.GetHistogram("train.step_us", obs::DefaultTimeBucketsUs());
  constexpr double kLossEmaAlpha = 0.05;
  constexpr uint64_t kRateWindowSteps = 64;
  double loss_ema = 0.0;
  uint64_t rate_window_start_us = obs::NowMicros();

  WallTimer train_timer;
  double loss_sum = 0.0;
  size_t samples_seen = 0;
  uint64_t step = 0;
  const size_t train_end = data.train_size();
  for (size_t pass = 0; pass < options.passes; ++pass) {
    for (size_t start = 0; start < train_end; start += options.batch_size) {
      const size_t size = std::min(options.batch_size, train_end - start);
      const Batch batch = data.GetBatch(start, size);
      double step_loss;
      {
        obs::ScopedTimer step_timer("train.step", obs_step_us);
        step_loss = (*live_model)->TrainStep(batch);
      }
      loss_sum += step_loss * static_cast<double>(size);
      loss_ema = step == 0 ? step_loss
                           : (1.0 - kLossEmaAlpha) * loss_ema +
                                 kLossEmaAlpha * step_loss;
      obs_loss_ema->Set(loss_ema);
      obs_steps->Add(1);
      obs_examples->Add(size);
      samples_seen += size;
      ++step;
      published_step.store(step, std::memory_order_release);
      if (step % kRateWindowSteps == 0) {
        const uint64_t now_us = obs::NowMicros();
        if (now_us > rate_window_start_us) {
          obs_steps_per_sec->Set(
              static_cast<double>(kRateWindowSteps) * 1e6 /
              static_cast<double>(now_us - rate_window_start_us));
        }
        rate_window_start_us = now_us;
      }
      manager.AtStepBoundary(step);
    }
  }
  if (backward_pool != nullptr) {
    (*live_model)->SetBackwardParallelism(nullptr, 1);
  }
  result.train_seconds = train_timer.ElapsedSeconds();
  // Order matters: the done flag must be visible BEFORE FinishTraining
  // wakes a cutter blocked inside Cut(), or the rollout loop keeps taking
  // idle cuts of the same final state until this thread gets scheduled
  // again (observed as dozens of duplicate generations under load).
  training_done.store(true, std::memory_order_release);
  manager.FinishTraining(step);
  rollout.join();
  if (!rollout_status.ok()) {
    stop_clients.store(true, std::memory_order_release);
    for (std::thread& client : clients) client.join();
    return rollout_status;
  }

  // Tail rollout: make sure the FULLY trained state is what keeps serving
  // (the in-flight cut may have landed a few steps short of the end).
  std::shared_ptr<const ServingSnapshot> final_snapshot;
  if (last_installed_step.load(std::memory_order_acquire) < step ||
      installs == 1) {
    auto snapshot = manager.Cut();  // trainer idle: direct quiesced copy
    if (!snapshot.ok()) {
      stop_clients.store(true, std::memory_order_release);
      for (std::thread& client : clients) client.join();
      return snapshot.status();
    }
    final_snapshot = std::move(snapshot).value();
    server_raw->InstallSnapshot(final_snapshot);
    ++installs;
  } else {
    final_snapshot = swap.Acquire();
  }

  // Drain the replication tier: every replica must reach the final
  // generation (it saw every frame the local rollout saw) before the run
  // reports success. Shutdown closes the streams; the source's reader
  // threads see EOF.
  if (replication != nullptr) {
    const uint64_t final_generation = final_snapshot->generation;
    Status replica_status;
    for (auto& replica : replicas) {
      replica_status =
          replica->WaitForGeneration(final_generation, options.replica_wait_us);
      if (!replica_status.ok()) break;
    }
    if (replica_status.ok()) replica_status = replication->stats().head_status;
    if (!replica_status.ok()) {
      stop_clients.store(true, std::memory_order_release);
      for (std::thread& client : clients) client.join();
      return replica_status;
    }
    result.replication_stats = replication->stats();
    result.replica_stats.reserve(replicas.size());
    for (auto& replica : replicas) {
      result.replica_stats.push_back(replica->stats());
    }
    for (auto& replica : replicas) replica->Shutdown();
    replication->Shutdown();
  }

  // Stop the sampler AFTER the tail install: its final line carries the
  // last generation and the final step.
  stop_timeline.store(true, std::memory_order_release);
  if (timeline.joinable()) timeline.join();
  if (!timeline_status.ok()) {
    stop_clients.store(true, std::memory_order_release);
    for (std::thread& client : clients) client.join();
    return timeline_status;
  }
  result.timeline_samples =
      timeline_samples.load(std::memory_order_relaxed);

  stop_clients.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  result.serve_seconds = serve_timer.ElapsedSeconds();
  result.latency = server_raw->latency_summary();
  result.server_stats = server_raw->stats();
  (*server)->Shutdown();

  if (!options.metrics_json_path.empty()) {
    std::ofstream metrics_out(options.metrics_json_path, std::ios::trunc);
    if (!metrics_out) {
      return Status::Internal("cannot open metrics json file: " +
                              options.metrics_json_path);
    }
    metrics_out << obs::DumpJsonSnapshot() << '\n';
  }

  result.avg_train_loss =
      samples_seen > 0 ? loss_sum / static_cast<double>(samples_seen) : 0.0;
  result.train_steps = step;
  result.snapshots_installed = installs;
  result.requests_ok = client_ok.load(std::memory_order_relaxed);
  result.requests_rejected = client_rejected.load(std::memory_order_relaxed);
  result.snapshot_stats = manager.stats();
  result.final_snapshot = std::move(final_snapshot);
  return result;
}

}  // namespace cafe
