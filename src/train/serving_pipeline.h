#ifndef CAFE_TRAIN_SERVING_PIPELINE_H_
#define CAFE_TRAIN_SERVING_PIPELINE_H_

#include <string>
#include <vector>

#include "serve/inference_server.h"
#include "train/store_factory.h"
#include "train/trainer.h"

namespace cafe {

/// Knobs for the end-to-end train → checkpoint → serve pipeline.
struct ServingPipelineOptions {
  TrainOptions train;
  /// Serving shape (num_fields / num_numerical are filled from the dataset).
  InferenceServerOptions server;
  /// Where the checkpoint lands between the train and serve phases.
  std::string checkpoint_path;
  /// Samples per serving request (requests are slices of the test day).
  size_t request_size = 16;
  /// Cap on served requests; 0 serves the whole test day.
  size_t max_requests = 0;
};

struct ServingPipelineResult {
  TrainResult train;
  /// Per-request end-to-end latency percentiles over the serving run.
  LatencySummary latency;
  double serve_seconds = 0.0;
  double requests_per_second = 0.0;
  double samples_per_second = 0.0;
  uint64_t requests = 0;
  /// Forward passes the micro-batcher executed (requests / this = achieved
  /// coalescing factor).
  uint64_t executed_batches = 0;
  /// Served logits, in test-day order (for parity checks against offline
  /// evaluation).
  std::vector<float> logits;
};

/// The full production loop in miniature, exercising every layer this
/// library has: train `model_name` over `store_name` on `data`, persist the
/// trained store + dense weights to a checkpoint, reload the checkpoint
/// into a fresh store, freeze it, replicate the model across the server's
/// workers (each restored from the same checkpoint), and serve the test day
/// as concurrent micro-batched requests.
StatusOr<ServingPipelineResult> RunServingPipeline(
    const std::string& store_name, const StoreFactoryContext& context,
    const std::string& model_name, const ModelConfig& model_config,
    const SyntheticCtrDataset& data, const ServingPipelineOptions& options);

}  // namespace cafe

#endif  // CAFE_TRAIN_SERVING_PIPELINE_H_
