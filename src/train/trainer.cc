#include "train/trainer.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sketch/hyperloglog.h"
#include "train/metrics.h"

namespace cafe {
namespace {

void CollectPredictions(RecModel* model, const SyntheticCtrDataset& data,
                        size_t begin, size_t end, size_t batch_size,
                        std::vector<float>* logits,
                        std::vector<float>* labels) {
  logits->clear();
  labels->clear();
  logits->reserve(end - begin);
  labels->reserve(end - begin);
  std::vector<float> batch_logits;
  for (size_t start = begin; start < end; start += batch_size) {
    const size_t size = std::min(batch_size, end - start);
    const Batch batch = data.GetBatch(start, size);
    model->Predict(batch, &batch_logits);
    logits->insert(logits->end(), batch_logits.begin(), batch_logits.end());
    labels->insert(labels->end(), batch.labels, batch.labels + size);
  }
}

}  // namespace

EvalMetrics EvaluateMetrics(RecModel* model, const SyntheticCtrDataset& data,
                            size_t begin, size_t end, size_t batch_size) {
  std::vector<float> logits, labels;
  CollectPredictions(model, data, begin, end, batch_size, &logits, &labels);
  EvalMetrics metrics;
  metrics.auc = ComputeAuc(logits, labels);
  metrics.logloss = ComputeLogLoss(logits, labels);
  return metrics;
}

double EvaluateAuc(RecModel* model, const SyntheticCtrDataset& data,
                   size_t begin, size_t end, size_t batch_size) {
  std::vector<float> logits, labels;
  CollectPredictions(model, data, begin, end, batch_size, &logits, &labels);
  return ComputeAuc(logits, labels);
}

double EvaluateLogLoss(RecModel* model, const SyntheticCtrDataset& data,
                       size_t begin, size_t end, size_t batch_size) {
  std::vector<float> logits, labels;
  CollectPredictions(model, data, begin, end, batch_size, &logits, &labels);
  return ComputeLogLoss(logits, labels);
}

TrainResult TrainOnePass(RecModel* model, const SyntheticCtrDataset& data,
                         const TrainOptions& options) {
  CAFE_CHECK(options.batch_size > 0);
  TrainResult result;
  const size_t train_end = data.train_size();
  const size_t test_begin = train_end;
  const size_t test_end =
      std::min(data.num_samples(), test_begin + options.max_eval_samples);

  const size_t total_iters =
      (train_end + options.batch_size - 1) / options.batch_size;
  const size_t curve_every =
      options.curve_points > 0
          ? std::max<size_t>(1, total_iters / options.curve_points)
          : 0;

  // One HyperLogLog per field over the training id stream: the live
  // distinct-feature census serving capacity planning reads.
  std::vector<HyperLogLog> field_hll;
  if (options.track_field_cardinality) {
    field_hll.reserve(data.num_fields());
    for (size_t f = 0; f < data.num_fields(); ++f) {
      field_hll.emplace_back(options.cardinality_precision);
    }
  }

  // Parallel backward: the pool lives for the pass and the model routes
  // every embedding scatter through it. Reset before the pool dies so the
  // model never holds a dangling pointer past this function.
  std::unique_ptr<ThreadPool> backward_pool;
  if (options.backward_threads > 1) {
    backward_pool = std::make_unique<ThreadPool>(options.backward_threads);
    model->SetBackwardParallelism(backward_pool.get(),
                                  options.backward_threads);
  }

  // Trainer metrics (train.*). Counters advance per step; the loss EMA and
  // the windowed steps/s land in gauges a live scrape can read mid-pass.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* const obs_steps = registry.GetCounter("train.steps_total");
  obs::Counter* const obs_examples =
      registry.GetCounter("train.examples_total");
  obs::Gauge* const obs_loss_ema = registry.GetGauge("train.loss_ema");
  obs::Gauge* const obs_steps_per_sec =
      registry.GetGauge("train.steps_per_sec");
  obs::Histogram* const obs_step_us =
      registry.GetHistogram("train.step_us", obs::DefaultTimeBucketsUs());
  constexpr double kLossEmaAlpha = 0.05;
  constexpr size_t kRateWindowSteps = 64;
  double loss_ema = 0.0;
  uint64_t rate_window_start_us = obs::NowMicros();

  WallTimer timer;
  double eval_seconds = 0.0;
  double loss_sum = 0.0;
  size_t iter = 0;
  size_t samples_seen = 0;
  for (size_t start = 0; start < train_end; start += options.batch_size) {
    const size_t size = std::min(options.batch_size, train_end - start);
    const Batch batch = data.GetBatch(start, size);
    if (options.track_field_cardinality) {
      for (size_t b = 0; b < size; ++b) {
        const uint32_t* cats = batch.sample_categorical(b);
        for (size_t f = 0; f < batch.num_fields; ++f) {
          field_hll[f].Insert(cats[f]);
        }
      }
    }
    double step_loss;
    {
      obs::ScopedTimer step_timer("train.step", obs_step_us);
      step_loss = model->TrainStep(batch);
    }
    loss_sum += step_loss * static_cast<double>(size);
    loss_ema = iter == 0 ? step_loss
                         : (1.0 - kLossEmaAlpha) * loss_ema +
                               kLossEmaAlpha * step_loss;
    obs_loss_ema->Set(loss_ema);
    obs_steps->Add(1);
    obs_examples->Add(size);
    samples_seen += size;
    ++iter;
    if (iter % kRateWindowSteps == 0) {
      const uint64_t now_us = obs::NowMicros();
      if (now_us > rate_window_start_us) {
        obs_steps_per_sec->Set(static_cast<double>(kRateWindowSteps) * 1e6 /
                               static_cast<double>(now_us -
                                                   rate_window_start_us));
      }
      rate_window_start_us = now_us;
    }
    if (curve_every > 0 &&
        (iter % curve_every == 0 || samples_seen == train_end)) {
      WallTimer eval_timer;
      MetricPoint point;
      point.iteration = iter;
      point.samples_seen = samples_seen;
      point.avg_train_loss = loss_sum / static_cast<double>(samples_seen);
      point.test_auc = EvaluateAuc(model, data, test_begin, test_end);
      result.curve.push_back(point);
      eval_seconds += eval_timer.ElapsedSeconds();
    }
  }
  if (backward_pool != nullptr) {
    model->SetBackwardParallelism(nullptr, 1);
  }
  result.train_seconds = timer.ElapsedSeconds() - eval_seconds;
  result.train_throughput =
      result.train_seconds > 0.0
          ? static_cast<double>(samples_seen) / result.train_seconds
          : 0.0;
  result.avg_train_loss =
      samples_seen > 0 ? loss_sum / static_cast<double>(samples_seen) : 0.0;
  // One batched prediction sweep feeds both offline metrics.
  const EvalMetrics final_metrics =
      EvaluateMetrics(model, data, test_begin, test_end);
  result.final_test_auc = final_metrics.auc;
  result.final_test_logloss = final_metrics.logloss;
  result.field_distinct_estimates.reserve(field_hll.size());
  for (const HyperLogLog& hll : field_hll) {
    result.field_distinct_estimates.push_back(hll.Estimate());
  }
  return result;
}

}  // namespace cafe
