#ifndef CAFE_TRAIN_STORE_FACTORY_H_
#define CAFE_TRAIN_STORE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cafe_config.h"
#include "embed/ada_embedding.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Everything needed to instantiate any compressor at a given compression
/// ratio. Benches build one context per (dataset, CR) and sweep methods.
struct StoreFactoryContext {
  EmbeddingConfig embedding;
  /// Field layout (required by "mde"; optional elsewhere).
  FieldLayout layout;
  /// CAFE knobs; embedding sizing is overwritten from `embedding`.
  CafeConfig cafe;
  /// AdaEmbed knobs (reallocation cadence etc.).
  AdaEmbedding::Options ada;
  /// Frequency-ranked feature ids (hottest first) for "offline".
  std::vector<uint64_t> offline_hot_ids;
};

/// Creates the store named by `name`:
///   "full" | "hash" | "qr" | "robe" | "ada" | "mde" | "offline" | "cafe" | "cafe-ml"
/// Returns ResourceExhausted when the method cannot reach the requested
/// compression ratio (Q-R, AdaEmbed, MDE have hard feasibility limits; the
/// benches render those points as absent, matching the paper's truncated
/// curves), or InvalidArgument for unknown names / missing context.
StatusOr<std::unique_ptr<EmbeddingStore>> MakeStore(
    const std::string& name, const StoreFactoryContext& context);

/// Method lists used across benches.
std::vector<std::string> RowCompressionMethods();  // hash, qr, ada, cafe

}  // namespace cafe

#endif  // CAFE_TRAIN_STORE_FACTORY_H_
