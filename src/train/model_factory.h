#ifndef CAFE_TRAIN_MODEL_FACTORY_H_
#define CAFE_TRAIN_MODEL_FACTORY_H_

#include <memory>
#include <string>

#include "models/model.h"

namespace cafe {

/// Creates a recommendation model by name: "dlrm" | "wdl" | "dcn"
/// (§5.1.1's three models). InvalidArgument on unknown names.
StatusOr<std::unique_ptr<RecModel>> MakeModel(const std::string& name,
                                              const ModelConfig& config,
                                              EmbeddingStore* store);

}  // namespace cafe

#endif  // CAFE_TRAIN_MODEL_FACTORY_H_
