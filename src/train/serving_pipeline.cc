#include "train/serving_pipeline.h"

#include <algorithm>
#include <deque>
#include <future>
#include <memory>
#include <utility>

#include "common/timer.h"
#include "io/checkpoint.h"
#include "serve/frozen_store.h"
#include "train/model_factory.h"

namespace cafe {

StatusOr<ServingPipelineResult> RunServingPipeline(
    const std::string& store_name, const StoreFactoryContext& context,
    const std::string& model_name, const ModelConfig& model_config,
    const SyntheticCtrDataset& data, const ServingPipelineOptions& options) {
  if (options.checkpoint_path.empty()) {
    return Status::InvalidArgument("serving pipeline needs a checkpoint path");
  }
  if (options.request_size == 0) {
    return Status::InvalidArgument("serving pipeline needs request_size >= 1");
  }
  ServingPipelineResult result;

  // Phase 1: train.
  auto train_store = MakeStore(store_name, context);
  if (!train_store.ok()) return train_store.status();
  auto train_model = MakeModel(model_name, model_config, train_store->get());
  if (!train_model.ok()) return train_model.status();
  result.train = TrainOnePass(train_model->get(), data, options.train);

  // Phase 2: checkpoint (store + dense weights), then drop the training
  // instances — serving must survive on the file alone.
  CAFE_RETURN_IF_ERROR(io::SaveCheckpoint(
      options.checkpoint_path, **train_store, train_model->get()));
  train_model->reset();
  train_store->reset();

  // Phase 3: restore into a fresh store and freeze it.
  auto serve_store = MakeStore(store_name, context);
  if (!serve_store.ok()) return serve_store.status();
  CAFE_RETURN_IF_ERROR(
      io::LoadCheckpoint(options.checkpoint_path, serve_store->get()));
  auto frozen = FrozenStore::Adopt(std::move(serve_store).value());

  // Phase 4: serve the test day through a concurrent micro-batching server;
  // every worker replica restores its dense weights from the checkpoint.
  InferenceServerOptions server_options = options.server;
  server_options.num_fields = data.num_fields();
  server_options.num_numerical = data.config().num_numerical;
  FrozenStore* frozen_raw = frozen.get();
  const std::string checkpoint_path = options.checkpoint_path;
  auto server = InferenceServer::Start(
      server_options,
      [&model_config, &model_name, frozen_raw, &checkpoint_path](size_t)
          -> StatusOr<std::unique_ptr<RecModel>> {
        auto model = MakeModel(model_name, model_config, frozen_raw);
        if (!model.ok()) return model.status();
        CAFE_RETURN_IF_ERROR(io::LoadCheckpoint(
            checkpoint_path, /*store=*/nullptr, model->get()));
        return std::move(model).value();
      });
  if (!server.ok()) return server.status();

  const size_t test_begin = data.train_size();
  const size_t test_end = data.num_samples();
  // Closed-loop client with bounded in-flight work: collecting from the
  // front while submitting keeps request latency a property of the SERVER
  // (batching window + execution), not of an ever-growing client backlog.
  const size_t max_inflight =
      std::max<size_t>(2 * server_options.num_workers *
                           (server_options.max_batch / options.request_size +
                            1),
                       16);
  std::deque<std::future<std::vector<float>>> inflight;
  WallTimer timer;
  size_t submitted = 0;
  for (size_t start = test_begin; start < test_end;
       start += options.request_size) {
    if (options.max_requests > 0 && submitted >= options.max_requests) break;
    const size_t size = std::min(options.request_size, test_end - start);
    auto request = (*server)->Submit(data.GetBatch(start, size));
    // No admission cap is configured here, so a rejection is a bug worth
    // surfacing, not traffic to shed.
    if (!request.ok()) return request.status();
    inflight.push_back(std::move(request).value());
    ++submitted;
    if (inflight.size() >= max_inflight) {
      std::vector<float> logits = inflight.front().get();
      inflight.pop_front();
      result.logits.insert(result.logits.end(), logits.begin(), logits.end());
    }
  }
  while (!inflight.empty()) {
    std::vector<float> logits = inflight.front().get();
    inflight.pop_front();
    result.logits.insert(result.logits.end(), logits.begin(), logits.end());
  }
  result.serve_seconds = timer.ElapsedSeconds();

  const InferenceServer::Stats stats = (*server)->stats();
  result.latency = (*server)->latency_summary();
  result.requests = stats.requests;
  result.executed_batches = stats.executed_batches;
  if (result.serve_seconds > 0.0) {
    result.requests_per_second =
        static_cast<double>(stats.requests) / result.serve_seconds;
    result.samples_per_second =
        static_cast<double>(stats.samples) / result.serve_seconds;
  }
  (*server)->Shutdown();
  return result;
}

}  // namespace cafe
