#ifndef CAFE_TRAIN_ONLINE_PIPELINE_H_
#define CAFE_TRAIN_ONLINE_PIPELINE_H_

#include <memory>
#include <string>

#include "replicate/replica_manager.h"
#include "replicate/replication_source.h"
#include "serve/inference_server.h"
#include "serve/snapshot_manager.h"
#include "train/model_factory.h"
#include "train/store_factory.h"
#include "train/trainer.h"

namespace cafe {

/// Knobs for the continuously-updating train-WHILE-serve loop.
struct OnlinePipelineOptions {
  /// Trainer: chronological passes over the training split.
  size_t batch_size = 128;
  size_t passes = 1;
  /// Threads (and row shards) for the embedding backward scatter of the
  /// live trainer, bit-identical to serial (common/thread_pool.h). The
  /// snapshot cuts stay O(dirty): per-shard dirty stamping merges back into
  /// the store's ordinary dirty lists before any SaveDelta.
  uint32_t backward_threads = 1;
  /// Trainer steps between snapshot cuts (the rollout cadence).
  uint64_t snapshot_interval = 50;
  /// Incremental cuts: after generation 1's full base copy, each cut's
  /// trainer pause copies only the rows dirtied since the previous cut,
  /// and each generation publishes O(dirty) too — deltas replay directly
  /// into the manager's ping-pong buffer stores instead of rebuilding a
  /// fresh store per cut (SnapshotManager::Options::incremental). Requires
  /// a store with SaveDelta/LoadDelta support — all built-in stores
  /// qualify. The pipeline's install-and-release rollout loop satisfies the
  /// two-generation retention contract, so publishes stay on the reclaim
  /// fast path (result.snapshot_stats.retired_buffers counts exceptions).
  bool incremental_snapshots = false;
  /// Capture the optimizer's adaptive state into every snapshot at the same
  /// step boundary (SnapshotManager::Options::capture_optimizer): the final
  /// snapshot then doubles as a full training-resume checkpoint
  /// (serve/snapshot_checkpoint.h).
  bool capture_optimizer = false;
  /// Serving shape (num_fields / num_numerical are filled from the dataset).
  /// Set max_queue_samples here for admission control under overload.
  InferenceServerOptions server;
  /// Client traffic: `num_clients` closed-loop threads submit
  /// `request_size`-sample slices of the test day for the whole run.
  size_t num_clients = 2;
  size_t request_size = 16;
  /// Per-client cap on outstanding futures (closed loop).
  size_t client_inflight = 8;
  uint64_t client_seed = 20240607;

  /// Replication: stream every cut generation (base + O(dirty) deltas) to
  /// this many in-process replicas over pipe transports. Each replica
  /// applies the frames into its own double-buffered resident stores and
  /// publishes local generations; the run waits for every replica to reach
  /// the final generation before returning. Per-replica lag is exported as
  /// replicate.replica<i>.lag_{generations,bytes} for the whole run.
  size_t replica_count = 0;
  /// How long the tail waits for each replica to catch up to the final
  /// generation before giving up with an error.
  uint64_t replica_wait_us = 10000000;
  /// Non-empty: each replica keeps a durable applied-state ledger under
  /// <replica_durable_dir>/replica<i> and rejoins from it after a restart
  /// (kHello carries the restored generation; the source serves only the
  /// deltas since, when its history ring still covers them).
  std::string replica_durable_dir;
  /// Source-side flow control: per-link send-queue high watermarks.
  /// Crossing either marks the link stale — deltas stop enqueuing and the
  /// link rejoins via a fresh base once its queue drains — so source
  /// memory stays O(watermark x replicas) under any consumer speed.
  uint64_t replica_queue_high_bytes = 256ull << 20;
  uint64_t replica_queue_high_frames = 1024;
  /// Encoded delta generations the source retains for hello(G) catch-up
  /// (0 = every rejoin gets a full base).
  uint64_t replica_delta_history = 64;
  /// Heartbeat period for BOTH ends of every link (0 = no heartbeats or
  /// liveness timeouts; the transports report death themselves).
  uint64_t replica_heartbeat_interval_us = 0;
  /// Liveness window: each end severs a link silent past this (0 = never).
  uint64_t replica_liveness_timeout_us = 0;

  /// Telemetry. stats_port >= 0 serves the metrics registry live over
  /// loopback HTTP for the whole run (obs::StatsEndpoint; 0 binds an
  /// ephemeral port, reported in OnlinePipelineResult::stats_port).
  /// -1 = no endpoint.
  int stats_port = -1;
  /// Non-empty: a sampler thread appends one JSON object per line to this
  /// file every timeline_interval_ms for the duration of the run —
  /// {t_us, step, generation, loss_ema, queue_depth, shed_rate,
  /// requests_total} — monotone in step and generation by construction
  /// (both are sampled from monotone sources).
  std::string timeline_path;
  uint64_t timeline_interval_ms = 50;
  /// Non-empty: the full obs::DumpJsonSnapshot of the registry is written
  /// here after the final install (counters/gauges/histograms + trace
  /// tail) — the pull-API complement of the live endpoint.
  std::string metrics_json_path;
};

struct OnlinePipelineResult {
  /// Online training metric (paper's average train loss over the run).
  double avg_train_loss = 0.0;
  uint64_t train_steps = 0;
  double train_seconds = 0.0;
  /// Generations installed into the server, INCLUDING the initial one the
  /// server started on. The final generation always carries the fully
  /// trained state.
  uint64_t snapshots_installed = 0;
  /// Client-side outcome counts: served responses vs fast-fail rejections
  /// (admission control).
  uint64_t requests_ok = 0;
  uint64_t requests_rejected = 0;
  double serve_seconds = 0.0;
  LatencySummary latency;
  InferenceServer::Stats server_stats;
  SnapshotManager::Stats snapshot_stats;
  /// The last snapshot installed (the fully trained state) — callers can
  /// verify it against an offline freeze or keep serving from it.
  std::shared_ptr<const ServingSnapshot> final_snapshot;
  /// Replication outcome (replica_count > 0): source totals + per-replica
  /// stream stats, sampled AFTER every replica reached the final
  /// generation. replica_stats[i].generation equals the source's head.
  replicate::ReplicationSource::Stats replication_stats;
  std::vector<replicate::ReplicaManager::Stats> replica_stats;
  /// Bound port of the live stats endpoint (0 when stats_port was -1).
  int stats_port = 0;
  /// Timeline lines appended (0 when timeline_path was empty).
  uint64_t timeline_samples = 0;
};

/// The continuously-updating service in miniature — the online counterpart
/// of RunServingPipeline's train-then-serve:
///
///   1. build the live store + model and cut generation 1 (quiesced);
///   2. start a hot-reload InferenceServer over a SwappableStore, with
///      `num_clients` closed-loop clients immediately driving traffic;
///   3. train on the MAIN thread while a rollout thread repeatedly cuts
///      consistent snapshots (SnapshotManager's step-boundary copy; the
///      trainer pauses only for the copy, the server never drains) and
///      hot-swaps them into the server mid-traffic;
///   4. after the last step, install one final snapshot of the fully
///      trained state, then stop the clients and drain.
///
/// Every response the clients receive reflects exactly one snapshot
/// generation (tests/hot_swap_test.cc asserts no tearing), and requests
/// beyond the admission cap fast-fail with ResourceExhausted rather than
/// stretching latency.
StatusOr<OnlinePipelineResult> RunOnlinePipeline(
    const std::string& store_name, const StoreFactoryContext& context,
    const std::string& model_name, const ModelConfig& model_config,
    const SyntheticCtrDataset& data, const OnlinePipelineOptions& options);

}  // namespace cafe

#endif  // CAFE_TRAIN_ONLINE_PIPELINE_H_
