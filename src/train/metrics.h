#ifndef CAFE_TRAIN_METRICS_H_
#define CAFE_TRAIN_METRICS_H_

#include <cstddef>
#include <vector>

namespace cafe {

/// Area under the ROC curve from raw scores and binary labels, computed
/// exactly via the rank statistic with midrank tie handling:
///   AUC = (sum of positive ranks - P(P+1)/2) / (P * N).
/// Returns 0.5 when one class is absent (undefined AUC).
double ComputeAuc(const std::vector<float>& scores,
                  const std::vector<float>& labels);

/// Mean binary cross-entropy of logits against labels.
double ComputeLogLoss(const std::vector<float>& logits,
                      const std::vector<float>& labels);

}  // namespace cafe

#endif  // CAFE_TRAIN_METRICS_H_
