#include "train/store_factory.h"

#include "core/cafe_embedding.h"
#include "embed/ada_embedding.h"
#include "embed/full_embedding.h"
#include "embed/hash_embedding.h"
#include "embed/mde_embedding.h"
#include "embed/offline_separation.h"
#include "embed/qr_embedding.h"
#include "embed/robe_embedding.h"

namespace cafe {
namespace {

template <typename T>
StatusOr<std::unique_ptr<EmbeddingStore>> Upcast(
    StatusOr<std::unique_ptr<T>> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<EmbeddingStore>(std::move(result).value());
}

}  // namespace

StatusOr<std::unique_ptr<EmbeddingStore>> MakeStore(
    const std::string& name, const StoreFactoryContext& context) {
  if (name == "full") {
    EmbeddingConfig config = context.embedding;
    config.compression_ratio = 1.0;
    return Upcast(FullEmbedding::Create(config));
  }
  if (name == "hash") {
    return Upcast(HashEmbedding::Create(context.embedding));
  }
  if (name == "qr") {
    return Upcast(QrEmbedding::Create(context.embedding));
  }
  if (name == "robe") {
    return Upcast(RobeEmbedding::Create(context.embedding));
  }
  if (name == "ada") {
    return Upcast(AdaEmbedding::Create(context.embedding, context.ada));
  }
  if (name == "mde") {
    if (context.layout.num_fields() == 0) {
      return Status::InvalidArgument("mde requires a field layout");
    }
    return Upcast(MdeEmbedding::Create(context.embedding, context.layout));
  }
  if (name == "cafe" || name == "cafe-ml") {
    CafeConfig config = context.cafe;
    config.embedding = context.embedding;
    config.use_multi_level = (name == "cafe-ml");
    return Upcast(CafeEmbedding::Create(config));
  }
  if (name == "offline") {
    if (context.offline_hot_ids.empty()) {
      return Status::InvalidArgument(
          "offline separation requires frequency-ranked feature ids");
    }
    // Mirror CAFE's memory split at the same ratio so the two are
    // comparable (paper §5.2.6 protocol).
    CafeConfig cafe_config = context.cafe;
    cafe_config.embedding = context.embedding;
    auto plan = CafeMemoryPlan::Compute(cafe_config,
                                        sizeof(HotSketch::Slot));
    if (!plan.ok()) return plan.status();
    return Upcast(OfflineSeparationEmbedding::Create(
        context.embedding, plan->hot_capacity,
        plan->shared_rows_a + plan->shared_rows_b,
        context.offline_hot_ids));
  }
  return Status::InvalidArgument("unknown embedding method: " + name);
}

std::vector<std::string> RowCompressionMethods() {
  return {"hash", "qr", "ada", "cafe"};
}

}  // namespace cafe
