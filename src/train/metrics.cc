#include "train/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "nn/loss.h"

namespace cafe {

double ComputeAuc(const std::vector<float>& scores,
                  const std::vector<float>& labels) {
  CAFE_CHECK(scores.size() == labels.size());
  const size_t n = scores.size();
  if (n == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Midranks: tied scores share the average of their rank range.
  double positive_rank_sum = 0.0;
  size_t positives = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        positive_rank_sum += midrank;
        ++positives;
      }
    }
    i = j;
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double p = static_cast<double>(positives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) /
         (p * static_cast<double>(negatives));
}

double ComputeLogLoss(const std::vector<float>& logits,
                      const std::vector<float>& labels) {
  CAFE_CHECK(logits.size() == labels.size());
  if (logits.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    total += BceWithLogitsLoss::PointLoss(logits[i], labels[i]);
  }
  return total / static_cast<double>(logits.size());
}

}  // namespace cafe
