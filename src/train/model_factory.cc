#include "train/model_factory.h"

#include "models/dcn.h"
#include "models/dlrm.h"
#include "models/wdl.h"

namespace cafe {
namespace {

template <typename T>
StatusOr<std::unique_ptr<RecModel>> Upcast(
    StatusOr<std::unique_ptr<T>> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<RecModel>(std::move(result).value());
}

}  // namespace

StatusOr<std::unique_ptr<RecModel>> MakeModel(const std::string& name,
                                              const ModelConfig& config,
                                              EmbeddingStore* store) {
  if (name == "dlrm") return Upcast(DlrmModel::Create(config, store));
  if (name == "wdl") return Upcast(WdlModel::Create(config, store));
  if (name == "dcn") return Upcast(DcnModel::Create(config, store));
  return Status::InvalidArgument("unknown model: " + name);
}

}  // namespace cafe
