#ifndef CAFE_SKETCH_HYPERLOGLOG_H_
#define CAFE_SKETCH_HYPERLOGLOG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace cafe {

/// HyperLogLog distinct-count estimator (Flajolet et al. 2007).
///
/// Role here: the trainer tracks one per categorical field to estimate how
/// many DISTINCT feature ids actually flow through training — the live
/// counterpart of the dataset's offline #Features column (Table 2), and the
/// number a serving deployment sizes its id space and hot-table expectations
/// from. Exact counting needs a hash set that scales with the id space; HLL
/// gives ~1.04/sqrt(2^p) relative error in 2^p bytes (p=12: one 4 KiB page,
/// ~1.6% typical error) with O(1) inserts — the same streaming-sketch
/// bargain HotSketch makes for importance.
///
/// The estimator applies the standard small-range correction (linear
/// counting over empty registers); the 32-bit large-range correction is
/// unnecessary because ranks come from a 64-bit hash.
class HyperLogLog {
 public:
  /// `precision` p in [4, 18]: 2^p one-byte registers.
  explicit HyperLogLog(uint32_t precision = 12, uint64_t seed = 0x177ULL)
      : precision_(precision),
        seed_(seed),
        registers_(size_t{1} << precision, 0) {
    CAFE_CHECK(precision >= 4 && precision <= 18)
        << "hyperloglog precision out of range";
  }

  void Insert(uint64_t id) {
    const uint64_t h = HashMix(id, seed_);
    const uint64_t index = h >> (64 - precision_);
    const uint64_t rest = h << precision_;
    // Rank = leading zeros of the remaining bits + 1, capped by the bit
    // budget. rest == 0 would make clz undefined; the or-ed sentinel bit
    // yields exactly the cap in that case.
    const uint8_t rank = static_cast<uint8_t>(
        1 + __builtin_clzll(rest | (uint64_t{1} << (precision_ - 1))));
    if (rank > registers_[index]) registers_[index] = rank;
  }

  /// Merges another sketch tracking the same (precision, seed) stream
  /// universe; the union estimate is then Estimate().
  void Merge(const HyperLogLog& other) {
    CAFE_CHECK(other.precision_ == precision_ && other.seed_ == seed_)
        << "hyperloglog merge needs identical precision and seed";
    for (size_t i = 0; i < registers_.size(); ++i) {
      if (other.registers_[i] > registers_[i]) {
        registers_[i] = other.registers_[i];
      }
    }
  }

  double Estimate() const {
    const double m = static_cast<double>(registers_.size());
    double inverse_sum = 0.0;
    size_t zero_registers = 0;
    for (uint8_t r : registers_) {
      inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zero_registers;
    }
    const double raw = Alpha(m) * m * m / inverse_sum;
    if (raw <= 2.5 * m && zero_registers > 0) {
      // Small-range: linear counting over empty registers is more accurate.
      return m * std::log(m / static_cast<double>(zero_registers));
    }
    return raw;
  }

  void Clear() { registers_.assign(registers_.size(), 0); }

  uint32_t precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }
  size_t MemoryBytes() const { return registers_.size(); }

 private:
  static double Alpha(double m) {
    if (m <= 16.0) return 0.673;
    if (m <= 32.0) return 0.697;
    if (m <= 64.0) return 0.709;
    return 0.7213 / (1.0 + 1.079 / m);
  }

  uint32_t precision_;
  uint64_t seed_;
  std::vector<uint8_t> registers_;
};

}  // namespace cafe

#endif  // CAFE_SKETCH_HYPERLOGLOG_H_
