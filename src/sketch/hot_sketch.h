#ifndef CAFE_SKETCH_HOT_SKETCH_H_
#define CAFE_SKETCH_HOT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/prefetch.h"
#include "common/status.h"

namespace cafe {

/// Configuration for HotSketch (paper §3.2).
struct HotSketchConfig {
  /// Number of buckets `w`. The paper sets w to the number of hot features
  /// to track (with 4 slots per bucket the sketch then holds 4x that many
  /// candidates and saturates with hot features).
  uint64_t num_buckets = 1024;

  /// Slots per bucket `c`. The paper uses 4 (trading recall for throughput);
  /// Corollary 3.5 derives c* = 1 + 1/(z-1) for Zipf(z) streams.
  uint32_t slots_per_bucket = 4;

  /// Seed of the bucket hash function h(.).
  uint64_t seed = 0x5eed;

  Status Validate() const;
};

/// HotSketch: a bucketized SpaceSaving sketch reporting hot features in one
/// pass (paper §3.2).
///
/// Data structure: `w` buckets, each with `c` slots of (feature id, score).
/// Insertion hashes the feature to one bucket and then either (1) adds the
/// score to the matching slot, (2) claims an empty slot, or (3) replaces the
/// minimum-score slot, *adding* the incoming score to the stored minimum —
/// exactly SpaceSaving's overestimate-on-replace rule, restricted to one
/// bucket. One memory access, no pointers, O(1) time.
///
/// Each slot also carries a 32-bit payload. CAFE uses it to store the index
/// of the feature's exclusive embedding row (the paper stores a pointer);
/// the sketch itself only moves it around and reports it on eviction.
///
/// Theoretical guarantees: Theorems 3.1/3.3 of the paper (a feature with
/// score share > gamma of the total L1 mass is retained with probability
/// >= 1 - (1-gamma)/((c-1) gamma w) without distribution assumptions). See
/// `core/theory.h` for the numeric evaluation used in Figure 7.
class HotSketch {
 public:
  /// Sentinel key meaning "slot unoccupied". Feature ids must be smaller
  /// (the slot stores 32-bit keys to keep the paper's compact 3-attribute
  /// layout; 2^32-1 ids cover even CriteoTB's 204M-feature space).
  static constexpr uint64_t kEmptyKey = 0xffffffffULL;
  /// Payload value meaning "no payload attached".
  static constexpr int32_t kNoPayload = -1;

  /// One (feature, score, payload) entry. Exposed for tests and benches.
  /// `error` records the score inherited from the replaced minimum on a
  /// scenario-3 insertion — SpaceSaving's per-counter overestimation bound
  /// epsilon. score is an upper bound on the feature's true mass and
  /// score - error a guaranteed lower bound; CAFE promotes on the lower
  /// bound so tail features that merely inherited a big minimum cannot
  /// displace genuinely hot features.
  struct Slot {
    uint32_t key = static_cast<uint32_t>(kEmptyKey);
    float score = 0.0f;
    float error = 0.0f;
    int32_t payload = kNoPayload;

    /// Guaranteed (collision-free) lower bound on the true score mass.
    double GuaranteedScore() const {
      return static_cast<double>(score) - static_cast<double>(error);
    }
  };
  static_assert(sizeof(Slot) == 16, "slot layout must stay compact");

  /// Result of an Insert: the feature's updated score estimate, plus the
  /// identity/payload of any feature that was evicted to make room.
  struct InsertResult {
    double new_score = 0.0;
    bool inserted = false;        ///< false only if key == kEmptyKey.
    bool evicted = false;         ///< true when scenario (3) replaced a key.
    uint64_t evicted_key = kEmptyKey;
    double evicted_score = 0.0;
    int32_t evicted_payload = kNoPayload;
    /// Index (into slots()) of the slot now holding the inserted key, or -1
    /// when nothing was inserted. Valid until the next mutating call.
    int64_t slot_index = -1;
  };

  static StatusOr<HotSketch> Create(const HotSketchConfig& config);

  /// Adds `score` to `key`'s estimate (paper "Insertion", scenarios 1-3).
  InsertResult Insert(uint64_t key, double score);

  /// Returns the current score estimate, or a negative value if `key` is not
  /// tracked. (All inserted scores are non-negative, so < 0 is unambiguous.)
  double Query(uint64_t key) const;

  /// Returns a pointer to the slot holding `key`, or nullptr. The pointer is
  /// invalidated by the next Insert/Decay. Payload may be mutated in place.
  Slot* Find(uint64_t key);
  const Slot* Find(uint64_t key) const;

  /// Prefetches `key`'s bucket (one cache line at the paper's c = 4). The
  /// batched embedding paths issue this a few ids ahead of Find/Insert so
  /// the sketch probe does not stall on DRAM.
  void PrefetchBucket(uint64_t key) const {
    PrefetchRead(slots_.data() + BucketOf(key) * config_.slots_per_bucket);
  }

  /// Multiplies every stored score by `factor` (paper §3.3: periodic decay
  /// so stale hot features exit under distribution shift).
  void Decay(double factor);

  /// Returns the `k` highest-score entries, sorted descending by score.
  std::vector<std::pair<uint64_t, double>> TopK(size_t k) const;

  /// Removes `key` if present (used when CAFE demotes a feature manually).
  bool Erase(uint64_t key);

  void Clear();

  uint64_t num_buckets() const { return config_.num_buckets; }
  uint32_t slots_per_bucket() const { return config_.slots_per_bucket; }
  size_t capacity() const { return slots_.size(); }
  /// Number of occupied slots.
  size_t size() const;

  /// Bytes of the slot array. The paper's memory accounting charges 3 fields
  /// (key, score, payload) per slot; we report actual footprint.
  size_t MemoryBytes() const { return slots_.size() * sizeof(Slot); }

  const std::vector<Slot>& slots() const { return slots_; }
  /// Mutable slot access for owners that manage payloads (CAFE).
  Slot& slot_at(size_t i) { return slots_[i]; }

  /// Replaces the whole slot array (checkpoint restore). The geometry —
  /// bucket count, slots per bucket, hash seed — comes from the live
  /// config, so only the slot contents travel; a size mismatch means the
  /// checkpoint was produced by a differently sized sketch.
  Status RestoreSlots(std::vector<Slot> slots) {
    if (slots.size() != slots_.size()) {
      return Status::FailedPrecondition(
          "hot sketch: slot count does not match this sketch's geometry");
    }
    slots_ = std::move(slots);
    return Status::OK();
  }

 private:
  HotSketch(const HotSketchConfig& config);

  uint64_t BucketOf(uint64_t key) const {
    return hash_.Bounded(key, config_.num_buckets);
  }

  HotSketchConfig config_;
  SeededHash hash_;
  std::vector<Slot> slots_;  // bucket b occupies [b*c, (b+1)*c)
};

}  // namespace cafe

#endif  // CAFE_SKETCH_HOT_SKETCH_H_
