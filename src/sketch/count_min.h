#ifndef CAFE_SKETCH_COUNT_MIN_H_
#define CAFE_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace cafe {

/// Count-Min sketch (Cormode & Muthukrishnan 2005) over weighted streams:
/// `d` counter arrays of width `w`; Insert adds the weight to one counter
/// per row; Query returns the minimum (an overestimate).
///
/// Included as the representative counter-based sketch from the paper's
/// related work (§6.2): it needs d memory accesses per insertion and wastes
/// memory on infrequent items, which is why HotSketch (KV-based) wins for
/// the top-k use case. Benches use it as a reference line.
class CountMin {
 public:
  struct Config {
    uint64_t width = 1024;  ///< counters per row
    uint32_t depth = 3;     ///< number of rows / hash functions
    uint64_t seed = 0xc0;

    Status Validate() const;
  };

  static StatusOr<CountMin> Create(const Config& config);

  void Insert(uint64_t key, double weight);

  /// Point query: min over the key's counters; always >= true weight sum.
  double Query(uint64_t key) const;

  void Clear();

  size_t MemoryBytes() const { return counters_.size() * sizeof(double); }
  uint64_t width() const { return config_.width; }
  uint32_t depth() const { return config_.depth; }

 private:
  explicit CountMin(const Config& config);

  Config config_;
  std::vector<SeededHash> hashes_;
  std::vector<double> counters_;  // row r occupies [r*width, (r+1)*width)
};

/// CountMin plus a candidate set: the classic way to answer top-k queries
/// with a counter-based sketch. Keeps up to 2k candidate keys with the
/// largest sketch estimates and prunes back to k when the set overflows
/// (amortized O(1) per insert).
class CountMinTopK {
 public:
  static StatusOr<CountMinTopK> Create(const CountMin::Config& config,
                                       size_t k);

  void Insert(uint64_t key, double weight);

  /// `k` highest-estimate candidates, sorted descending (k <= configured k).
  std::vector<std::pair<uint64_t, double>> TopK(size_t k) const;

  size_t MemoryBytes() const;

 private:
  CountMinTopK(CountMin sketch, size_t k);

  void PruneToK();

  CountMin sketch_;
  size_t k_;
  std::unordered_map<uint64_t, double> candidates_;
  double admit_threshold_ = 0.0;  // estimate needed to enter the set
};

}  // namespace cafe

#endif  // CAFE_SKETCH_COUNT_MIN_H_
