#include "sketch/hot_sketch.h"

#include <algorithm>

#include "common/logging.h"

namespace cafe {

Status HotSketchConfig::Validate() const {
  if (num_buckets == 0) {
    return Status::InvalidArgument("HotSketch needs at least one bucket");
  }
  if (slots_per_bucket == 0) {
    return Status::InvalidArgument("HotSketch needs at least one slot/bucket");
  }
  return Status::OK();
}

StatusOr<HotSketch> HotSketch::Create(const HotSketchConfig& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  return HotSketch(config);
}

HotSketch::HotSketch(const HotSketchConfig& config)
    : config_(config),
      hash_(config.seed),
      slots_(config.num_buckets * config.slots_per_bucket) {}

HotSketch::InsertResult HotSketch::Insert(uint64_t key, double score) {
  InsertResult result;
  if (key >= kEmptyKey) return result;
  const uint32_t key32 = static_cast<uint32_t>(key);
  const uint64_t base = BucketOf(key) * config_.slots_per_bucket;
  Slot* bucket = slots_.data() + base;
  const uint32_t c = config_.slots_per_bucket;

  // Scenario 1: key already recorded -> add score.
  // Track the empty slot / min slot in the same pass (single memory access
  // over one cache-resident bucket, as in the paper). Slots carrying a
  // payload (hot features owning an exclusive embedding) are only eviction
  // candidates when every slot in the bucket carries one: tail-driven
  // SpaceSaving inflation must not churn the hot set — hot features exit
  // through score decay instead (§3.3).
  Slot* empty = nullptr;
  Slot* min_slot = nullptr;        // min among payload-free slots
  Slot* min_any = &bucket[0];      // min over all slots (fallback)
  for (uint32_t i = 0; i < c; ++i) {
    Slot& s = bucket[i];
    if (s.key == key32) {
      s.score += static_cast<float>(score);
      result.new_score = s.score;
      result.inserted = true;
      result.slot_index = static_cast<int64_t>(base + i);
      return result;
    }
    if (s.key == kEmptyKey) {
      if (empty == nullptr) empty = &s;
      continue;
    }
    if (min_any->key == kEmptyKey || s.score < min_any->score) min_any = &s;
    if (s.payload == kNoPayload &&
        (min_slot == nullptr || s.score < min_slot->score)) {
      min_slot = &s;
    }
  }
  if (min_slot == nullptr) min_slot = min_any;

  // Scenario 2: free slot available.
  if (empty != nullptr) {
    empty->key = key32;
    empty->score = static_cast<float>(score);
    empty->error = 0.0f;
    empty->payload = kNoPayload;
    result.new_score = score;
    result.inserted = true;
    result.slot_index = empty - slots_.data();
    return result;
  }

  // Scenario 3: replace the minimum slot, inheriting its score
  // (SpaceSaving's (f_min, s_min) -> (f_i, s_min + s_i) rule); the
  // inherited part is recorded as the newcomer's error bound.
  result.evicted = true;
  result.evicted_key = min_slot->key;
  result.evicted_score = min_slot->score;
  result.evicted_payload = min_slot->payload;
  min_slot->key = key32;
  min_slot->error = min_slot->score;
  min_slot->score += static_cast<float>(score);
  min_slot->payload = kNoPayload;
  result.new_score = min_slot->score;
  result.inserted = true;
  result.slot_index = min_slot - slots_.data();
  return result;
}

double HotSketch::Query(uint64_t key) const {
  const Slot* slot = Find(key);
  return slot != nullptr ? slot->score : -1.0;
}

HotSketch::Slot* HotSketch::Find(uint64_t key) {
  return const_cast<Slot*>(
      static_cast<const HotSketch*>(this)->Find(key));
}

const HotSketch::Slot* HotSketch::Find(uint64_t key) const {
  if (key >= kEmptyKey) return nullptr;
  const uint32_t key32 = static_cast<uint32_t>(key);
  const uint64_t base = BucketOf(key) * config_.slots_per_bucket;
  for (uint32_t i = 0; i < config_.slots_per_bucket; ++i) {
    const Slot& s = slots_[base + i];
    if (s.key == key32) return &s;
  }
  return nullptr;
}

void HotSketch::Decay(double factor) {
  CAFE_DCHECK(factor >= 0.0) << "decay factor must be non-negative";
  for (Slot& s : slots_) {
    if (s.key != kEmptyKey) {
      s.score *= static_cast<float>(factor);
      s.error *= static_cast<float>(factor);
    }
  }
}

std::vector<std::pair<uint64_t, double>> HotSketch::TopK(size_t k) const {
  std::vector<std::pair<uint64_t, double>> entries;
  entries.reserve(slots_.size());
  for (const Slot& s : slots_) {
    if (s.key != kEmptyKey) entries.emplace_back(s.key, s.score);
  }
  if (k < entries.size()) {
    std::partial_sort(entries.begin(), entries.begin() + k, entries.end(),
                      [](const auto& a, const auto& b) {
                        return a.second > b.second;
                      });
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
  }
  return entries;
}

bool HotSketch::Erase(uint64_t key) {
  Slot* slot = Find(key);
  if (slot == nullptr) return false;
  slot->key = static_cast<uint32_t>(kEmptyKey);
  slot->score = 0.0f;
  slot->error = 0.0f;
  slot->payload = kNoPayload;
  return true;
}

void HotSketch::Clear() {
  for (Slot& s : slots_) s = Slot{};
}

size_t HotSketch::size() const {
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.key != kEmptyKey) ++n;
  }
  return n;
}

}  // namespace cafe
