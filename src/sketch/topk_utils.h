#ifndef CAFE_SKETCH_TOPK_UTILS_H_
#define CAFE_SKETCH_TOPK_UTILS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace cafe {

/// Exact ground-truth top-k of an accumulated score map, sorted descending.
/// Used by the sketch evaluation benches (Figure 18) and tests.
inline std::vector<std::pair<uint64_t, double>> ExactTopK(
    const std::unordered_map<uint64_t, double>& scores, size_t k) {
  std::vector<std::pair<uint64_t, double>> entries(scores.begin(),
                                                   scores.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  if (k < entries.size()) entries.resize(k);
  return entries;
}

/// Recall of `reported` against ground truth `truth`: |reported ∩ truth| /
/// |truth|. Both are (key, score) lists; only keys matter.
template <typename A, typename B>
double TopKRecall(const std::vector<std::pair<uint64_t, A>>& truth,
                  const std::vector<std::pair<uint64_t, B>>& reported) {
  if (truth.empty()) return 1.0;
  std::unordered_set<uint64_t> reported_keys;
  reported_keys.reserve(reported.size() * 2);
  for (const auto& [key, score] : reported) reported_keys.insert(key);
  size_t hits = 0;
  for (const auto& [key, score] : truth) {
    if (reported_keys.count(key) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace cafe

#endif  // CAFE_SKETCH_TOPK_UTILS_H_
