#include "sketch/space_saving.h"

#include <algorithm>

#include "common/logging.h"

namespace cafe {

StatusOr<SpaceSaving> SpaceSaving::Create(size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("SpaceSaving capacity must be positive");
  }
  return SpaceSaving(capacity);
}

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  counters_.reserve(capacity);
  // Counts take values in a dense-ish range; buckets are allocated on
  // demand. Worst case one bucket per counter plus one transient.
  buckets_.reserve(capacity + 1);
  index_.reserve(capacity * 2);
}

int32_t SpaceSaving::AllocateBucket(uint64_t count) {
  int32_t b;
  if (!free_buckets_.empty()) {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    b = static_cast<int32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  Bucket& bucket = buckets_[b];
  bucket.count = count;
  bucket.head = -1;
  bucket.prev = -1;
  bucket.next = -1;
  bucket.in_use = true;
  return b;
}

void SpaceSaving::FreeBucket(int32_t b) {
  Bucket& bucket = buckets_[b];
  CAFE_DCHECK(bucket.head == -1) << "freeing non-empty bucket";
  // Unlink from the bucket list.
  if (bucket.prev != -1) buckets_[bucket.prev].next = bucket.next;
  if (bucket.next != -1) buckets_[bucket.next].prev = bucket.prev;
  if (min_bucket_ == b) min_bucket_ = bucket.next;
  bucket.in_use = false;
  free_buckets_.push_back(b);
}

void SpaceSaving::DetachCounter(int32_t c) {
  Counter& counter = counters_[c];
  if (counter.prev != -1) {
    counters_[counter.prev].next = counter.next;
  } else {
    buckets_[counter.bucket].head = counter.next;
  }
  if (counter.next != -1) counters_[counter.next].prev = counter.prev;
  counter.prev = counter.next = -1;
}

void SpaceSaving::AttachCounter(int32_t c, int32_t bucket) {
  Counter& counter = counters_[c];
  counter.bucket = bucket;
  counter.prev = -1;
  counter.next = buckets_[bucket].head;
  if (counter.next != -1) counters_[counter.next].prev = c;
  buckets_[bucket].head = c;
}

void SpaceSaving::IncrementCounter(int32_t c) {
  Counter& counter = counters_[c];
  const int32_t old_bucket = counter.bucket;
  const uint64_t new_count = buckets_[old_bucket].count + 1;

  // Target bucket is the next one if its count matches, else a new bucket
  // inserted right after. (Counts only ever grow by 1, so the next bucket's
  // count is >= new_count.)
  const int32_t next = buckets_[old_bucket].next;
  int32_t target;
  if (next != -1 && buckets_[next].count == new_count) {
    target = next;
  } else {
    target = AllocateBucket(new_count);
    // Note AllocateBucket may grow buckets_, so re-read links afterwards.
    Bucket& ob = buckets_[old_bucket];
    Bucket& tb = buckets_[target];
    tb.prev = old_bucket;
    tb.next = ob.next;
    if (ob.next != -1) buckets_[ob.next].prev = target;
    ob.next = target;
  }

  DetachCounter(c);
  AttachCounter(c, target);
  if (buckets_[old_bucket].head == -1) FreeBucket(old_bucket);
}

void SpaceSaving::Insert(uint64_t key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    IncrementCounter(it->second);
    return;
  }

  if (counters_.size() < capacity_) {
    // Fresh counter with count 1.
    int32_t c = static_cast<int32_t>(counters_.size());
    counters_.emplace_back();
    counters_[c].key = key;
    counters_[c].error = 0;
    int32_t bucket;
    if (min_bucket_ != -1 && buckets_[min_bucket_].count == 1) {
      bucket = min_bucket_;
    } else {
      bucket = AllocateBucket(1);
      buckets_[bucket].next = min_bucket_;
      if (min_bucket_ != -1) buckets_[min_bucket_].prev = bucket;
      min_bucket_ = bucket;
    }
    AttachCounter(c, bucket);
    index_.emplace(key, c);
    return;
  }

  // Replace an item in the minimum bucket: error becomes the old count,
  // new count is old count + 1.
  CAFE_DCHECK(min_bucket_ != -1);
  int32_t victim = buckets_[min_bucket_].head;
  Counter& counter = counters_[victim];
  index_.erase(counter.key);
  counter.error = buckets_[min_bucket_].count;
  counter.key = key;
  index_.emplace(key, victim);
  IncrementCounter(victim);
}

uint64_t SpaceSaving::Query(uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  return buckets_[counters_[it->second].bucket].count;
}

uint64_t SpaceSaving::Error(uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  return counters_[it->second].error;
}

std::vector<std::pair<uint64_t, uint64_t>> SpaceSaving::TopK(size_t k) const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(counters_.size());
  for (const auto& [key, c] : index_) {
    entries.emplace_back(key, buckets_[counters_[c].bucket].count);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (k < entries.size()) entries.resize(k);
  return entries;
}

size_t SpaceSaving::MemoryBytes() const {
  return counters_.capacity() * sizeof(Counter) +
         buckets_.capacity() * sizeof(Bucket) +
         index_.size() * (sizeof(uint64_t) + sizeof(int32_t) +
                          sizeof(void*));  // rough node overhead
}

}  // namespace cafe
