#include "sketch/count_min.h"

#include <algorithm>

#include "common/logging.h"

namespace cafe {

Status CountMin::Config::Validate() const {
  if (width == 0) return Status::InvalidArgument("CountMin width must be > 0");
  if (depth == 0) return Status::InvalidArgument("CountMin depth must be > 0");
  return Status::OK();
}

StatusOr<CountMin> CountMin::Create(const Config& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  return CountMin(config);
}

CountMin::CountMin(const Config& config)
    : config_(config), counters_(config.width * config.depth, 0.0) {
  hashes_.reserve(config.depth);
  for (uint32_t r = 0; r < config.depth; ++r) {
    hashes_.emplace_back(config.seed + r * 0x9e3779b9ULL);
  }
}

void CountMin::Insert(uint64_t key, double weight) {
  for (uint32_t r = 0; r < config_.depth; ++r) {
    counters_[r * config_.width + hashes_[r].Bounded(key, config_.width)] +=
        weight;
  }
}

double CountMin::Query(uint64_t key) const {
  double best = counters_[hashes_[0].Bounded(key, config_.width)];
  for (uint32_t r = 1; r < config_.depth; ++r) {
    best = std::min(
        best,
        counters_[r * config_.width + hashes_[r].Bounded(key, config_.width)]);
  }
  return best;
}

void CountMin::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

StatusOr<CountMinTopK> CountMinTopK::Create(const CountMin::Config& config,
                                            size_t k) {
  if (k == 0) return Status::InvalidArgument("CountMinTopK needs k > 0");
  auto sketch = CountMin::Create(config);
  if (!sketch.ok()) return sketch.status();
  return CountMinTopK(std::move(sketch).value(), k);
}

CountMinTopK::CountMinTopK(CountMin sketch, size_t k)
    : sketch_(std::move(sketch)), k_(k) {
  candidates_.reserve(2 * k + 1);
}

void CountMinTopK::Insert(uint64_t key, double weight) {
  sketch_.Insert(key, weight);
  const double estimate = sketch_.Query(key);
  auto it = candidates_.find(key);
  if (it != candidates_.end()) {
    it->second = estimate;
    return;
  }
  if (candidates_.size() < k_ || estimate > admit_threshold_) {
    candidates_.emplace(key, estimate);
    if (candidates_.size() > 2 * k_) PruneToK();
  }
}

void CountMinTopK::PruneToK() {
  std::vector<std::pair<uint64_t, double>> entries(candidates_.begin(),
                                                   candidates_.end());
  std::nth_element(entries.begin(), entries.begin() + k_ - 1, entries.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  admit_threshold_ = entries[k_ - 1].second;
  candidates_.clear();
  for (size_t i = 0; i < k_; ++i) candidates_.insert(entries[i]);
}

std::vector<std::pair<uint64_t, double>> CountMinTopK::TopK(size_t k) const {
  std::vector<std::pair<uint64_t, double>> entries(candidates_.begin(),
                                                   candidates_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (k < entries.size()) entries.resize(k);
  return entries;
}

size_t CountMinTopK::MemoryBytes() const {
  return sketch_.MemoryBytes() +
         candidates_.size() * (sizeof(uint64_t) + sizeof(double) +
                               sizeof(void*));
}

}  // namespace cafe
