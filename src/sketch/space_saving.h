#ifndef CAFE_SKETCH_SPACE_SAVING_H_
#define CAFE_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cafe {

/// Classic SpaceSaving (Metwally, Agrawal, El Abbadi 2005) for unweighted
/// top-k frequent items, implemented with the Stream-Summary structure the
/// original paper describes: a doubly-linked list of count buckets, each
/// holding the items that currently share a count, indexed by a hash table.
///
/// This is the baseline HotSketch improves on (paper §3.2): the hash table
/// roughly doubles memory and the pointer chasing costs throughput. We keep
/// it for the Figure 18 comparisons and for cross-checking HotSketch recall.
///
/// Counts here are integer frequencies (the original algorithm); HotSketch
/// generalizes to real-valued importance scores.
class SpaceSaving {
 public:
  /// `capacity` is the number of monitored items (counters).
  static StatusOr<SpaceSaving> Create(size_t capacity);

  /// Processes one occurrence of `key`.
  void Insert(uint64_t key);

  /// Estimated count of `key`, or 0 if unmonitored.
  uint64_t Query(uint64_t key) const;

  /// Overestimation error recorded for `key` (epsilon in the original
  /// paper), or 0 if unmonitored.
  uint64_t Error(uint64_t key) const;

  /// `k` highest-count monitored items, sorted descending.
  std::vector<std::pair<uint64_t, uint64_t>> TopK(size_t k) const;

  size_t capacity() const { return capacity_; }
  size_t size() const { return index_.size(); }

  /// Approximate memory footprint: counters plus hash-table index. Used by
  /// the memory-fairness comparisons in bench/fig18.
  size_t MemoryBytes() const;

 private:
  explicit SpaceSaving(size_t capacity);

  // Intrusive doubly-linked structure: counters are nodes, grouped into
  // buckets of equal count; buckets form a sorted list (ascending count).
  struct Counter {
    uint64_t key = 0;
    uint64_t error = 0;
    int32_t bucket = -1;  // index into buckets_
    int32_t prev = -1;    // sibling counters within the bucket
    int32_t next = -1;
  };
  struct Bucket {
    uint64_t count = 0;
    int32_t head = -1;    // first counter in this bucket
    int32_t prev = -1;    // adjacent buckets (sorted by count)
    int32_t next = -1;
    bool in_use = false;
  };

  // Moves counter `c` from its bucket to one with count+increment, creating
  // or recycling bucket nodes as needed.
  void IncrementCounter(int32_t c);
  void DetachCounter(int32_t c);
  void AttachCounter(int32_t c, int32_t bucket);
  int32_t AllocateBucket(uint64_t count);
  void FreeBucket(int32_t b);

  size_t capacity_;
  std::vector<Counter> counters_;
  std::vector<Bucket> buckets_;
  std::vector<int32_t> free_buckets_;
  int32_t min_bucket_ = -1;  // bucket with the smallest count
  std::unordered_map<uint64_t, int32_t> index_;  // key -> counter
};

}  // namespace cafe

#endif  // CAFE_SKETCH_SPACE_SAVING_H_
