#ifndef CAFE_NN_LAYER_H_
#define CAFE_NN_LAYER_H_

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace cafe {

/// A view over one learnable parameter block and its gradient accumulator.
/// Optimizers iterate these; the pointed-to storage is owned by the layer
/// and must outlive the optimizer.
struct Param {
  float* value = nullptr;
  float* grad = nullptr;
  size_t size = 0;
};

/// Base class for dense NN layers. The contract is classic
/// define-by-run backprop:
///  - Forward(in, out) computes out and caches whatever it needs;
///  - Backward(grad_out, grad_in) consumes the cache from the most recent
///    Forward, accumulates parameter gradients, and fills grad_in
///    (d loss / d input).
/// One Forward must precede each Backward; layers are not reentrant.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual void Forward(const Tensor& in, Tensor* out) = 0;
  virtual void Backward(const Tensor& grad_out, Tensor* grad_in) = 0;

  /// Appends this layer's parameter views to `out`. Default: no params.
  virtual void CollectParams(std::vector<Param>* out) {}

  /// Number of learnable scalars (for memory accounting). Default 0.
  virtual size_t NumParameters() const { return 0; }
};

}  // namespace cafe

#endif  // CAFE_NN_LAYER_H_
