#ifndef CAFE_NN_LOSS_H_
#define CAFE_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace cafe {

/// Binary cross-entropy computed from raw logits (numerically stable
/// log-sum-exp form, equivalent to PyTorch's BCEWithLogitsLoss):
///   loss(z, y) = max(z, 0) - z*y + log(1 + exp(-|z|))
///   dloss/dz   = sigmoid(z) - y
class BceWithLogitsLoss {
 public:
  /// `logits` is (batch, 1); `labels` has batch entries in {0, 1}.
  /// Returns the mean loss and fills `grad` (batch, 1) with d(mean loss)/dz
  /// (i.e. already divided by the batch size).
  static double Compute(const Tensor& logits, const std::vector<float>& labels,
                        Tensor* grad);

  /// Loss of one (logit, label) pair; used by evaluation (no gradient).
  static double PointLoss(float logit, float label);
};

}  // namespace cafe

#endif  // CAFE_NN_LOSS_H_
