#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"
#include "nn/activation.h"

namespace cafe {

double BceWithLogitsLoss::PointLoss(float logit, float label) {
  const double z = logit;
  const double y = label;
  return std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
}

double BceWithLogitsLoss::Compute(const Tensor& logits,
                                  const std::vector<float>& labels,
                                  Tensor* grad) {
  CAFE_DCHECK(logits.cols() == 1);
  CAFE_DCHECK(logits.rows() == labels.size());
  const size_t n = logits.rows();
  grad->Resize(n, 1);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t b = 0; b < n; ++b) {
    const float z = logits.at(b, 0);
    const float y = labels[b];
    total += PointLoss(z, y);
    grad->at(b, 0) = (SigmoidScalar(z) - y) * inv_n;
  }
  return total / static_cast<double>(n);
}

}  // namespace cafe
