#include "nn/mlp.h"

#include "common/logging.h"

namespace cafe {

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Rng& rng) {
  CAFE_CHECK(layer_sizes.size() >= 2) << "MLP needs at least in/out sizes";
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.push_back(
        std::make_unique<Linear>(layer_sizes[i], layer_sizes[i + 1], rng));
    if (i + 2 < layer_sizes.size()) {
      layers_.push_back(std::make_unique<Relu>());
    }
  }
  activations_.resize(layers_.size());
  gradients_.resize(layers_.size());
}

void Mlp::Forward(const Tensor& in, Tensor* out) {
  const Tensor* current = &in;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Tensor* next = (i + 1 == layers_.size()) ? out : &activations_[i];
    layers_[i]->Forward(*current, next);
    current = next;
  }
}

void Mlp::Backward(const Tensor& grad_out, Tensor* grad_in) {
  const Tensor* current = &grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    Tensor* next = (i == 0) ? grad_in : &gradients_[i];
    layers_[i]->Backward(*current, next);
    current = next;
  }
}

void Mlp::CollectParams(std::vector<Param>* out) {
  for (auto& layer : layers_) layer->CollectParams(out);
}

size_t Mlp::NumParameters() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer->NumParameters();
  return total;
}

}  // namespace cafe
