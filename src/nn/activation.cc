#include "nn/activation.h"

#include <cmath>

namespace cafe {

float SigmoidScalar(float x) {
  // Branch keeps exp() argument non-positive for numerical safety.
  if (x >= 0.0f) {
    float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  float e = std::exp(x);
  return e / (1.0f + e);
}

void Relu::Forward(const Tensor& in, Tensor* out) {
  out->Resize(in.rows(), in.cols());
  const float* x = in.data();
  float* y = out->data();
  for (size_t i = 0; i < in.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  cached_output_ = *out;
}

void Relu::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CAFE_DCHECK(grad_out.size() == cached_output_.size());
  grad_in->Resize(grad_out.rows(), grad_out.cols());
  const float* gy = grad_out.data();
  const float* y = cached_output_.data();
  float* gx = grad_in->data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    gx[i] = y[i] > 0.0f ? gy[i] : 0.0f;
  }
}

void Sigmoid::Forward(const Tensor& in, Tensor* out) {
  out->Resize(in.rows(), in.cols());
  const float* x = in.data();
  float* y = out->data();
  for (size_t i = 0; i < in.size(); ++i) y[i] = SigmoidScalar(x[i]);
  cached_output_ = *out;
}

void Sigmoid::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CAFE_DCHECK(grad_out.size() == cached_output_.size());
  grad_in->Resize(grad_out.rows(), grad_out.cols());
  const float* gy = grad_out.data();
  const float* y = cached_output_.data();
  float* gx = grad_in->data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    gx[i] = gy[i] * y[i] * (1.0f - y[i]);
  }
}

}  // namespace cafe
