#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/simd.h"

namespace cafe {

void Optimizer::Register(const std::vector<Param>& params) {
  params_.insert(params_.end(), params.begin(), params.end());
}

Status Optimizer::SaveState(io::Writer* writer) const {
  writer->WriteString(Name());
  return Status::OK();
}

Status Optimizer::LoadState(io::Reader* reader) {
  std::string kind;
  CAFE_RETURN_IF_ERROR(reader->ReadString(&kind));
  if (kind != Name()) {
    return Status::FailedPrecondition("checkpoint holds optimizer '" + kind +
                                      "' but the target is '" + Name() + "'");
  }
  return Status::OK();
}

void Optimizer::ZeroGrad() {
  for (const Param& p : params_) {
    std::memset(p.grad, 0, p.size * sizeof(float));
  }
}

void SgdOptimizer::Step(float lr) {
  for (const Param& p : params_) {
    // Kernel lengths are uint32; dense blocks are far smaller, but chunk
    // anyway so the contract holds for any registered size.
    size_t off = 0;
    while (off < p.size) {
      const uint32_t chunk = static_cast<uint32_t>(
          std::min<size_t>(p.size - off, size_t{1} << 30));
      simd::AxpyNeg(p.value + off, p.grad + off, chunk, lr);
      off += chunk;
    }
  }
}

void AdagradOptimizer::Register(const std::vector<Param>& params) {
  Optimizer::Register(params);
  for (const Param& p : params) accum_.emplace_back(p.size, 0.0f);
}

void AdagradOptimizer::Step(float lr) {
  for (size_t b = 0; b < params_.size(); ++b) {
    const Param& p = params_[b];
    float* acc = accum_[b].data();
    for (size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      acc[i] += g * g;
      p.value[i] -= lr * g / (std::sqrt(acc[i]) + epsilon_);
    }
  }
}

Status AdagradOptimizer::SaveState(io::Writer* writer) const {
  CAFE_RETURN_IF_ERROR(Optimizer::SaveState(writer));
  writer->WriteU64(accum_.size());
  for (const std::vector<float>& acc : accum_) writer->WriteVec(acc);
  return Status::OK();
}

Status AdagradOptimizer::LoadState(io::Reader* reader) {
  CAFE_RETURN_IF_ERROR(Optimizer::LoadState(reader));
  uint64_t blocks = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&blocks));
  if (blocks != accum_.size()) {
    return Status::FailedPrecondition(
        "adagrad: checkpoint block count does not match this optimizer");
  }
  for (std::vector<float>& acc : accum_) {
    CAFE_RETURN_IF_ERROR(
        reader->ReadVecExpected(&acc, acc.size(), "adagrad accumulator"));
  }
  return Status::OK();
}

void AdamOptimizer::Register(const std::vector<Param>& params) {
  Optimizer::Register(params);
  for (const Param& p : params) {
    m_.emplace_back(p.size, 0.0f);
    v_.emplace_back(p.size, 0.0f);
  }
}

void AdamOptimizer::Step(float lr) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t b = 0; b < params_.size(); ++b) {
    const Param& p = params_[b];
    float* m = m_[b].data();
    float* v = v_[b].data();
    for (size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      p.value[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

Status AdamOptimizer::SaveState(io::Writer* writer) const {
  CAFE_RETURN_IF_ERROR(Optimizer::SaveState(writer));
  writer->WriteI64(t_);
  writer->WriteU64(m_.size());
  for (size_t b = 0; b < m_.size(); ++b) {
    writer->WriteVec(m_[b]);
    writer->WriteVec(v_[b]);
  }
  return Status::OK();
}

Status AdamOptimizer::LoadState(io::Reader* reader) {
  CAFE_RETURN_IF_ERROR(Optimizer::LoadState(reader));
  CAFE_RETURN_IF_ERROR(reader->ReadI64(&t_));
  uint64_t blocks = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&blocks));
  if (blocks != m_.size()) {
    return Status::FailedPrecondition(
        "adam: checkpoint block count does not match this optimizer");
  }
  for (size_t b = 0; b < m_.size(); ++b) {
    CAFE_RETURN_IF_ERROR(
        reader->ReadVecExpected(&m_[b], m_[b].size(), "adam first moment"));
    CAFE_RETURN_IF_ERROR(
        reader->ReadVecExpected(&v_[b], v_[b].size(), "adam second moment"));
  }
  return Status::OK();
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name) {
  if (name == "sgd") return std::make_unique<SgdOptimizer>();
  if (name == "adagrad") return std::make_unique<AdagradOptimizer>();
  if (name == "adam") return std::make_unique<AdamOptimizer>();
  return nullptr;
}

}  // namespace cafe
