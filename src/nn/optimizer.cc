#include "nn/optimizer.h"

#include <cmath>
#include <cstring>
#include <string>

namespace cafe {

void Optimizer::Register(const std::vector<Param>& params) {
  params_.insert(params_.end(), params.begin(), params.end());
}

void Optimizer::ZeroGrad() {
  for (const Param& p : params_) {
    std::memset(p.grad, 0, p.size * sizeof(float));
  }
}

void SgdOptimizer::Step(float lr) {
  for (const Param& p : params_) {
    for (size_t i = 0; i < p.size; ++i) p.value[i] -= lr * p.grad[i];
  }
}

void AdagradOptimizer::Register(const std::vector<Param>& params) {
  Optimizer::Register(params);
  for (const Param& p : params) accum_.emplace_back(p.size, 0.0f);
}

void AdagradOptimizer::Step(float lr) {
  for (size_t b = 0; b < params_.size(); ++b) {
    const Param& p = params_[b];
    float* acc = accum_[b].data();
    for (size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      acc[i] += g * g;
      p.value[i] -= lr * g / (std::sqrt(acc[i]) + epsilon_);
    }
  }
}

void AdamOptimizer::Register(const std::vector<Param>& params) {
  Optimizer::Register(params);
  for (const Param& p : params) {
    m_.emplace_back(p.size, 0.0f);
    v_.emplace_back(p.size, 0.0f);
  }
}

void AdamOptimizer::Step(float lr) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t b = 0; b < params_.size(); ++b) {
    const Param& p = params_[b];
    float* m = m_[b].data();
    float* v = v_[b].data();
    for (size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      p.value[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name) {
  if (name == "sgd") return std::make_unique<SgdOptimizer>();
  if (name == "adagrad") return std::make_unique<AdagradOptimizer>();
  if (name == "adam") return std::make_unique<AdamOptimizer>();
  return nullptr;
}

}  // namespace cafe
