#ifndef CAFE_NN_EMBEDDING_BAG_H_
#define CAFE_NN_EMBEDDING_BAG_H_

#include <vector>

#include "data/batch.h"
#include "embed/embedding_store.h"

namespace cafe {

/// The batched embedding layer shared by every recommendation model: it
/// owns the field-major id staging and drives the EmbeddingStore through
/// one LookupBatch / ApplyGradientBatch call per field instead of one
/// virtual Lookup / ApplyGradient per (sample, field). Both directions are
/// staging-free: Forward gathers each field's column block straight into
/// the model input via LookupBatch's output stride, and Backward scatters
/// each field's gradient column block straight out of the model's gradient
/// tensor via ApplyGradientBatch's gradient stride, with the elementwise
/// clip fused into the store's read.
///
/// Field-major execution matters beyond devirtualization: ids repeat within
/// a field (the same hot advertiser, the same site id), so per-field batches
/// are exactly the streams the stores' in-batch deduplication compresses.
///
/// Layout contract: sample b's embedding block starts at out + b * stride,
/// with field f at column offset f * dim — the sample-major concatenation
/// every model feeds its dense layers. The gradient passed to Backward uses
/// the same layout.
class EmbeddingLayerGroup {
 public:
  /// `store` must outlive the group. `stride` defaults (0) to
  /// num_fields * dim, the packed layout; WDL/DCN pass their full input
  /// width so embeddings land directly in the model input tensor.
  EmbeddingLayerGroup(EmbeddingStore* store, size_t num_fields);

  /// Batched forward for all fields of `batch`: writes batch.batch_size
  /// sample blocks at out + b * stride (stride in floats). Each field's
  /// LookupBatch writes its strided column block directly (no staging copy).
  void Forward(const Batch& batch, float* out, size_t stride);

  /// Batched backward: routes each field's gradient column block of `grad`
  /// (mirroring Forward's layout) to the store with SGD rate `lr`; the
  /// store clamps every element to [-kGradClip, kGradClip] as it reads —
  /// no per-field staging buffer, no second pass over the gradient.
  /// `reuse_staged_ids` lets a TrainStep that just ran Forward on the SAME
  /// unmodified batch skip re-transposing the ids; the caller asserts the
  /// reuse explicitly (no pointer-identity guessing).
  void Backward(const Batch& batch, const float* grad, size_t stride,
                float lr, bool reuse_staged_ids = false);

  /// Routes Backward through the store's sharded scatter on `pool` with
  /// `shards` row partitions (bit-identical to the serial path). Pass
  /// nullptr / <= 1 to restore the serial scatter; `pool` must outlive the
  /// parallel phase and the same single thread must drive every Backward.
  void SetBackwardParallelism(ThreadPool* pool, uint32_t shards) {
    pool_ = pool;
    shards_ = shards;
  }

  EmbeddingStore* store() const { return store_; }

  /// Elementwise gradient clip applied by Backward. Keeps heavily collided
  /// shared rows stable at extreme compression ratios (hundreds of features
  /// SGD-ing into one row can otherwise enter a positive-feedback blowup).
  /// Uniform across stores so method comparisons stay fair.
  static constexpr float kGradClip = 1.0f;

 private:
  EmbeddingStore* store_;
  size_t num_fields_;
  ThreadPool* pool_ = nullptr;
  uint32_t shards_ = 1;
  // Backward calls since construction; drives the sampled shard-imbalance
  // probe (every 64th parallel Backward histograms one batch's ids by
  // ShardOfRow and publishes max/mean to train.shard_imbalance).
  uint64_t backward_calls_ = 0;

  // Field-major id staging, reused across batches (BuildFrom only grows
  // the backing buffer; steady state re-fills in place, no allocation).
  FieldMajorIds ids_;
};

}  // namespace cafe

#endif  // CAFE_NN_EMBEDDING_BAG_H_
