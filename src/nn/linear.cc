#include "nn/linear.h"

#include <cmath>

#include "common/simd.h"

namespace cafe {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(in_features * out_features),
      bias_(out_features, 0.0f),
      weight_grad_(in_features * out_features, 0.0f),
      bias_grad_(out_features, 0.0f) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  for (float& w : weight_) w = rng.UniformFloat(-bound, bound);
}

void Linear::Forward(const Tensor& in, Tensor* out) {
  CAFE_DCHECK(in.cols() == in_features_)
      << "Linear expects " << in_features_ << " inputs, got " << in.cols();
  cached_input_ = in;
  out->Resize(in.rows(), out_features_);
  for (size_t b = 0; b < in.rows(); ++b) {
    const float* x = in.row(b);
    float* y = out->row(b);
    for (size_t o = 0; o < out_features_; ++o) {
      const float* w = weight_.data() + o * in_features_;
      float acc = bias_[o];
      for (size_t i = 0; i < in_features_; ++i) acc += w[i] * x[i];
      y[o] = acc;
    }
  }
}

void Linear::Backward(const Tensor& grad_out, Tensor* grad_in) {
  CAFE_DCHECK(grad_out.rows() == cached_input_.rows());
  CAFE_DCHECK(grad_out.cols() == out_features_);
  grad_in->Resize(cached_input_.rows(), in_features_);
  grad_in->Zero();
  for (size_t b = 0; b < grad_out.rows(); ++b) {
    const float* x = cached_input_.row(b);
    const float* gy = grad_out.row(b);
    float* gx = grad_in->row(b);
    for (size_t o = 0; o < out_features_; ++o) {
      const float g = gy[o];
      if (g == 0.0f) continue;
      const float* w = weight_.data() + o * in_features_;
      float* gw = weight_grad_.data() + o * in_features_;
      bias_grad_[o] += g;
      // gw/x and gx/w never alias, so the interleaved outer-product row
      // splits into two axpy passes with identical per-element rounding.
      const uint32_t d = static_cast<uint32_t>(in_features_);
      simd::AddScaled(gw, x, d, g);
      simd::AddScaled(gx, w, d, g);
    }
  }
}

void Linear::CollectParams(std::vector<Param>* out) {
  out->push_back({weight_.data(), weight_grad_.data(), weight_.size()});
  out->push_back({bias_.data(), bias_grad_.data(), bias_.size()});
}

}  // namespace cafe
