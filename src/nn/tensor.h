#ifndef CAFE_NN_TENSOR_H_
#define CAFE_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace cafe {

/// A minimal 2-D row-major float32 tensor: shape (rows, cols) with
/// contiguous storage. This is the only tensor type the NN substrate needs —
/// batches are rows, features are columns. Copyable and movable.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Reshapes (reallocating if needed) and leaves contents unspecified.
  /// Cheap when the new size matches the old one — the common case inside
  /// a training loop with a fixed batch size.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  float* row(size_t r) {
    CAFE_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* row(size_t r) const {
    CAFE_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& at(size_t r, size_t c) {
    CAFE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    CAFE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace cafe

#endif  // CAFE_NN_TENSOR_H_
