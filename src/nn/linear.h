#ifndef CAFE_NN_LINEAR_H_
#define CAFE_NN_LINEAR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "nn/layer.h"

namespace cafe {

/// Fully-connected layer: out = in * W^T + b, with W of shape
/// (out_features, in_features) stored row-major (each output neuron's
/// weights are contiguous, which makes both forward and backward walk
/// memory linearly).
class Linear : public Layer {
 public:
  /// Initializes W with Xavier/Glorot uniform (+-sqrt(6/(fan_in+fan_out)))
  /// and b with zeros, matching the paper's PyTorch defaults closely enough
  /// for convergence-shape purposes.
  Linear(size_t in_features, size_t out_features, Rng& rng);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<Param>* out) override;
  size_t NumParameters() const override {
    return weight_.size() + bias_.size();
  }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

  /// Direct parameter access for tests.
  std::vector<float>& weight() { return weight_; }
  std::vector<float>& bias() { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  std::vector<float> weight_;       // (out, in) row-major
  std::vector<float> bias_;         // (out)
  std::vector<float> weight_grad_;
  std::vector<float> bias_grad_;
  Tensor cached_input_;
};

}  // namespace cafe

#endif  // CAFE_NN_LINEAR_H_
