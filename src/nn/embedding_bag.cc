#include "nn/embedding_bag.h"

#include "common/logging.h"

namespace cafe {

EmbeddingLayerGroup::EmbeddingLayerGroup(EmbeddingStore* store,
                                         size_t num_fields)
    : store_(store), num_fields_(num_fields) {
  CAFE_CHECK(store != nullptr) << "embedding layer group needs a store";
  CAFE_CHECK(num_fields > 0) << "embedding layer group needs fields";
}

void EmbeddingLayerGroup::Forward(const Batch& batch, float* out,
                                  size_t stride) {
  CAFE_DCHECK(batch.num_fields == num_fields_);
  const uint32_t d = store_->dim();
  const size_t n = batch.batch_size;
  CAFE_DCHECK(stride >= num_fields_ * d);
  ids_.BuildFrom(batch);
  // Strided gather: field f's column block of every sample is written in
  // place at out + b*stride + f*d by the store itself — no per-field
  // staging buffer, no second copy.
  for (size_t f = 0; f < num_fields_; ++f) {
    store_->LookupBatch(ids_.field(f), n, out + f * d, stride);
  }
}

void EmbeddingLayerGroup::Backward(const Batch& batch, const float* grad,
                                   size_t stride, float lr,
                                   bool reuse_staged_ids) {
  CAFE_DCHECK(batch.num_fields == num_fields_);
  const uint32_t d = store_->dim();
  const size_t n = batch.batch_size;
  CAFE_DCHECK(stride >= num_fields_ * d);
  if (!reuse_staged_ids) {
    ids_.BuildFrom(batch);
  }
  CAFE_DCHECK(ids_.batch_size() == n && ids_.num_fields() == num_fields_);
  // Strided scatter: field f's gradient column block is consumed in place
  // at grad + b*stride + f*d by the store itself, clamped as it reads —
  // the backward mirror of Forward's strided gather. With parallelism
  // configured, each field's scatter fans out over the pool's row shards;
  // fields stay sequential so stores with cross-field state (cafe's sketch,
  // ada's scores) see the same field order as the serial path.
  if (pool_ != nullptr && shards_ > 1) {
    for (size_t f = 0; f < num_fields_; ++f) {
      store_->ApplyGradientBatchSharded(ids_.field(f), n, grad + f * d,
                                        stride, lr, kGradClip, pool_,
                                        shards_);
    }
  } else {
    for (size_t f = 0; f < num_fields_; ++f) {
      store_->ApplyGradientBatch(ids_.field(f), n, grad + f * d, stride, lr,
                                 kGradClip);
    }
  }
}

}  // namespace cafe
