#include "nn/embedding_bag.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cafe {
namespace {

// Sampled shard-imbalance probe for the parallel backward: every
// kImbalanceSampleEvery-th Backward call, histogram one batch's ids by
// ShardOfRow (summed over fields — the same partition the scatter uses)
// and publish max_shard_ids / mean_shard_ids. 1.0 = perfectly balanced;
// the gauge is a proxy for how much of the pool fan-out the slowest shard
// wastes. Sampling keeps the probe off the steady-state hot path.
constexpr uint64_t kImbalanceSampleEvery = 64;

void SampleShardImbalance(const FieldMajorIds& ids, size_t num_fields,
                          size_t n, uint32_t shards, obs::Gauge* gauge) {
  std::vector<uint64_t> per_shard(shards, 0);
  for (size_t f = 0; f < num_fields; ++f) {
    const uint64_t* field_ids = ids.field(f);
    for (size_t i = 0; i < n; ++i) {
      ++per_shard[ShardOfRow(field_ids[i], shards)];
    }
  }
  const uint64_t total = static_cast<uint64_t>(num_fields) * n;
  if (total == 0) return;
  const uint64_t max_ids =
      *std::max_element(per_shard.begin(), per_shard.end());
  const double mean_ids =
      static_cast<double>(total) / static_cast<double>(shards);
  gauge->Set(static_cast<double>(max_ids) / mean_ids);
}

}  // namespace

EmbeddingLayerGroup::EmbeddingLayerGroup(EmbeddingStore* store,
                                         size_t num_fields)
    : store_(store), num_fields_(num_fields) {
  CAFE_CHECK(store != nullptr) << "embedding layer group needs a store";
  CAFE_CHECK(num_fields > 0) << "embedding layer group needs fields";
}

void EmbeddingLayerGroup::Forward(const Batch& batch, float* out,
                                  size_t stride) {
  CAFE_DCHECK(batch.num_fields == num_fields_);
  const uint32_t d = store_->dim();
  const size_t n = batch.batch_size;
  CAFE_DCHECK(stride >= num_fields_ * d);
  ids_.BuildFrom(batch);
  // Strided gather: field f's column block of every sample is written in
  // place at out + b*stride + f*d by the store itself — no per-field
  // staging buffer, no second copy.
  for (size_t f = 0; f < num_fields_; ++f) {
    store_->LookupBatch(ids_.field(f), n, out + f * d, stride);
  }
}

void EmbeddingLayerGroup::Backward(const Batch& batch, const float* grad,
                                   size_t stride, float lr,
                                   bool reuse_staged_ids) {
  CAFE_DCHECK(batch.num_fields == num_fields_);
  const uint32_t d = store_->dim();
  const size_t n = batch.batch_size;
  CAFE_DCHECK(stride >= num_fields_ * d);
  if (!reuse_staged_ids) {
    ids_.BuildFrom(batch);
  }
  CAFE_DCHECK(ids_.batch_size() == n && ids_.num_fields() == num_fields_);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Histogram* const backward_us_hist = registry.GetHistogram(
      "train.backward.total_us", obs::DefaultTimeBucketsUs());
  obs::ScopedTimer backward_timer("embedding.backward", backward_us_hist);
  // Strided scatter: field f's gradient column block is consumed in place
  // at grad + b*stride + f*d by the store itself, clamped as it reads —
  // the backward mirror of Forward's strided gather. With parallelism
  // configured, each field's scatter fans out over the pool's row shards;
  // fields stay sequential so stores with cross-field state (cafe's sketch,
  // ada's scores) see the same field order as the serial path.
  if (pool_ != nullptr && shards_ > 1) {
    static obs::Gauge* const imbalance_gauge =
        registry.GetGauge("train.shard_imbalance");
    if (++backward_calls_ % kImbalanceSampleEvery == 1) {
      SampleShardImbalance(ids_, num_fields_, n, shards_, imbalance_gauge);
    }
    for (size_t f = 0; f < num_fields_; ++f) {
      store_->ApplyGradientBatchSharded(ids_.field(f), n, grad + f * d,
                                        stride, lr, kGradClip, pool_,
                                        shards_);
    }
  } else {
    for (size_t f = 0; f < num_fields_; ++f) {
      store_->ApplyGradientBatch(ids_.field(f), n, grad + f * d, stride, lr,
                                 kGradClip);
    }
  }
}

}  // namespace cafe
