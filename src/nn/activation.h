#ifndef CAFE_NN_ACTIVATION_H_
#define CAFE_NN_ACTIVATION_H_

#include "nn/layer.h"

namespace cafe {

/// Elementwise max(0, x).
class Relu : public Layer {
 public:
  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  Tensor cached_output_;  // mask source: out > 0 <=> in > 0
};

/// Elementwise logistic sigmoid. Models keep the final layer as a raw logit
/// and use BceWithLogitsLoss for stability; this layer exists for inference
/// paths and tests.
class Sigmoid : public Layer {
 public:
  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  Tensor cached_output_;
};

/// Scalar sigmoid helper.
float SigmoidScalar(float x);

}  // namespace cafe

#endif  // CAFE_NN_ACTIVATION_H_
