#ifndef CAFE_NN_OPTIMIZER_H_
#define CAFE_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "io/serialize.h"
#include "nn/layer.h"

namespace cafe {

/// Base class for dense-parameter optimizers. Parameters are registered
/// once; Step() applies accumulated gradients and ZeroGrad() clears them.
/// (Embedding tables update sparsely inside their stores and do not go
/// through this interface.)
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Kind tag ("sgd" | "adagrad" | "adam"), the name MakeOptimizer accepts;
  /// Save/LoadState guard on it so checkpointed state cannot restore into a
  /// different optimizer.
  virtual std::string Name() const = 0;

  /// Registers parameter blocks. May be called multiple times (e.g. one
  /// call per model component); state is allocated per block.
  virtual void Register(const std::vector<Param>& params);

  /// Applies one update with learning rate `lr`, consuming `grad`.
  virtual void Step(float lr) = 0;

  /// Serializes the ADAPTIVE state (per-coordinate accumulators, step
  /// counters) such that LoadState on a freshly built optimizer with the
  /// same registered blocks continues training bit-identically. Parameter
  /// values are NOT included — the checkpoint's dense-weight blocks own
  /// those. Base implementation writes just the kind guard (SGD is
  /// stateless).
  virtual Status SaveState(io::Writer* writer) const;

  /// Restores state written by SaveState; FailedPrecondition on a kind or
  /// shape mismatch (the optimizer is then partially restored — rebuild).
  virtual Status LoadState(io::Reader* reader);

  void ZeroGrad();

 protected:
  std::vector<Param> params_;
};

/// Plain SGD: p -= lr * g. The reference update for convergence analysis
/// (paper §3.5.2 analyzes SGD).
class SgdOptimizer : public Optimizer {
 public:
  std::string Name() const override { return "sgd"; }
  void Step(float lr) override;
};

/// Adagrad: per-coordinate adaptive step, the standard choice for sparse
/// recommendation models.
class AdagradOptimizer : public Optimizer {
 public:
  explicit AdagradOptimizer(float epsilon = 1e-8f) : epsilon_(epsilon) {}

  std::string Name() const override { return "adagrad"; }
  void Register(const std::vector<Param>& params) override;
  void Step(float lr) override;
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;

 private:
  float epsilon_;
  std::vector<std::vector<float>> accum_;  // one per param block
};

/// Adam (Kingma & Ba 2015) — the optimizer the paper names for DLRM dense
/// layers (§2.1).
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f)
      : beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

  std::string Name() const override { return "adam"; }
  void Register(const std::vector<Param>& params) override;
  void Step(float lr) override;
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Factory by name ("sgd" | "adagrad" | "adam"); nullptr on unknown name.
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name);

}  // namespace cafe

#endif  // CAFE_NN_OPTIMIZER_H_
