#ifndef CAFE_NN_MLP_H_
#define CAFE_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "nn/activation.h"
#include "nn/linear.h"

namespace cafe {

/// A stack of Linear layers with ReLU between them. The final Linear has no
/// activation (models append sigmoid / use a with-logits loss as needed).
/// `layer_sizes` = {in, h1, h2, ..., out}.
class Mlp : public Layer {
 public:
  Mlp(const std::vector<size_t>& layer_sizes, Rng& rng);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  void CollectParams(std::vector<Param>* out) override;
  size_t NumParameters() const override;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Intermediate activations / gradients reused across steps to avoid
  // reallocation in the training loop.
  std::vector<Tensor> activations_;
  std::vector<Tensor> gradients_;
};

}  // namespace cafe

#endif  // CAFE_NN_MLP_H_
