#ifndef CAFE_REPLICATE_REPLICA_MANAGER_H_
#define CAFE_REPLICATE_REPLICA_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "replicate/frame.h"
#include "replicate/transport.h"
#include "serve/snapshot_manager.h"
#include "serve/swappable_store.h"

namespace cafe {
namespace replicate {

/// The replica end of a replication link: consumes the frame stream from a
/// ReplicationSource and republishes each generation locally, through the
/// SAME double-buffered O(dirty) machinery the source-side SnapshotManager
/// uses — two resident buffer stores, delta replay into the non-serving
/// one, FrozenStore::AdoptShared freeze, lease-gated reclaim — feeding a
/// local SwappableStore that a local InferenceServer serves from.
///
/// Lifecycle, driven entirely by the stream:
///  - Start() announces with kHello; the source answers with a kBase at its
///    head generation (late join == initial join).
///  - kDelta frames must be contiguous (generation == current + 1). A gap
///    (a dropped frame) poisons the chain: the replica stops applying,
///    counts the damage, and sends ONE kResync; the next kBase rebases it.
///  - A corrupt/truncated frame surfaces from the FrameParser as kCorrupt
///    and takes the same poison-once/resync-once path.
///  - Frames at or below the current generation (reordered or raced with a
///    resync) are skipped as stale — never applied, never poison.
///  - Every applied generation is acked (kAck) so the source can export
///    this replica's lag.
///
/// The apply thread is the only mutator of the buffers, so unlike the
/// source-side manager there is no publish-turn sequencing; the lease
/// machinery is still needed because serving pins (PinScopes) hold
/// generations while the apply thread wants the buffer back.
class ReplicaManager {
 public:
  struct Options {
    /// How long a publish waits for the target buffer's lease before
    /// retiring it to the holder (O(store) rebuild fallback).
    uint64_t reclaim_wait_us = 20000;
    /// Label for this replica's obs metrics (replicate.<name>.*).
    std::string name = "replica";
  };

  /// `factory` must build stores of the source's exact configuration (the
  /// same factory contract as SnapshotManager). The channel is the replica
  /// end of a transport whose source end is registered with
  /// ReplicationSource::AddReplica.
  ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                 std::unique_ptr<ByteChannel> channel);
  ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                 std::unique_ptr<ByteChannel> channel,
                 const Options& options);
  ~ReplicaManager();

  /// Sends kHello and starts the apply thread. Call once.
  Status Start();

  /// Blocks until the local serving generation reaches `generation`, the
  /// stream dies, or `timeout_us` elapses. Returns the fatal status if the
  /// apply loop stopped on one.
  Status WaitForGeneration(uint64_t generation, uint64_t timeout_us);

  /// The local serving hub (hand to InferenceServer::Start). Null until
  /// the first generation is published; WaitForGeneration first.
  SwappableStore* swappable() const;

  /// Source generation currently serving locally (0 = none yet).
  uint64_t generation() const;

  struct Stats {
    uint64_t frames_received = 0;
    uint64_t bases_applied = 0;
    uint64_t deltas_applied = 0;
    /// Frames at or below the current generation, skipped (reorder/race).
    uint64_t stale_skipped = 0;
    /// Deltas dropped while awaiting a rebase after a poison.
    uint64_t poisoned_skipped = 0;
    uint64_t corrupt_frames = 0;
    /// Deltas that arrived non-contiguous (a dropped frame upstream).
    uint64_t gap_frames = 0;
    /// kResync requests sent (one per poison transition).
    uint64_t resyncs_requested = 0;
    /// Publishes that hit the lease-retire fallback.
    uint64_t retired_buffers = 0;
    uint64_t bytes_applied = 0;
    uint64_t generation = 0;
    uint64_t train_step = 0;
    /// First error that permanently stopped the apply loop (OK = healthy).
    Status fatal;
  };
  Stats stats() const;

  /// Closes the channel (the source sees EOF) and joins the apply thread.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct PendingPayload {
    uint64_t generation = 0;
    bool is_delta = false;
    std::shared_ptr<const std::string> payload;
  };
  /// One resident ping-pong buffer (apply-thread-owned; see class comment).
  struct BufferSlot {
    std::shared_ptr<EmbeddingStore> store;
    uint64_t state_gen = 0;
    std::deque<PendingPayload> pending;
  };
  struct LeaseState {
    std::mutex mu;
    std::condition_variable cv;
    bool leased[2] = {false, false};
    uint64_t epoch[2] = {0, 0};
  };

  void ApplyLoop();
  /// Dispatches one parsed frame; returns a fatal status to stop the loop.
  Status HandleFrame(Frame frame);
  /// Queues the payload to both buffers and publishes `generation` into
  /// the local SwappableStore. `applied` (bases_applied / deltas_applied)
  /// is bumped in the SAME critical section that exposes the generation, so
  /// a stats() reader woken by WaitForGeneration never sees the count lag
  /// the generation. Apply thread only.
  Status PublishGeneration(uint64_t generation, uint64_t train_step,
                           uint64_t Stats::*applied);
  /// Lease reclaim with the retire fallback. Apply thread only.
  Status ReclaimOrRetire(size_t slot, uint64_t generation);
  /// Transition into the poisoned state and request a rebase (once).
  void EnterResync(const char* why);
  void SendControl(FrameKind kind, uint64_t generation);

  SnapshotManager::FreshStoreFactory factory_;
  std::unique_ptr<ByteChannel> channel_;
  Options options_;

  std::thread apply_thread_;
  bool started_ = false;

  // Apply-thread-only state (no lock needed).
  BufferSlot buffers_[2];
  uint64_t current_generation_ = 0;
  /// Publishes alternate slots by SEQUENCE (a rebase may jump the
  /// generation by any amount, including an even one).
  uint64_t publish_seq_ = 0;
  bool awaiting_base_ = true;  // poisoned or never synced: deltas skipped
  bool have_aux_ = false;
  uint64_t aux_generation_ = 0;
  AuxState aux_;

  std::shared_ptr<LeaseState> leases_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  bool stream_done_ = false;  // apply loop exited
  std::unique_ptr<SwappableStore> swappable_;
  Stats stats_;

  obs::Gauge* obs_generation_ = nullptr;
  obs::Counter* obs_corrupt_ = nullptr;
  obs::Counter* obs_gaps_ = nullptr;
  obs::Counter* obs_resyncs_ = nullptr;
  obs::Counter* obs_bytes_applied_ = nullptr;
};

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_REPLICA_MANAGER_H_
