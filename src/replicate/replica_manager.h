#ifndef CAFE_REPLICATE_REPLICA_MANAGER_H_
#define CAFE_REPLICATE_REPLICA_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "replicate/durable_log.h"
#include "replicate/frame.h"
#include "replicate/transport.h"
#include "serve/snapshot_manager.h"
#include "serve/swappable_store.h"

namespace cafe {
namespace replicate {

/// The replica end of a replication link: consumes the frame stream from a
/// ReplicationSource and republishes each generation locally, through the
/// SAME double-buffered O(dirty) machinery the source-side SnapshotManager
/// uses — two resident buffer stores, delta replay into the non-serving
/// one, FrozenStore::AdoptShared freeze, lease-gated reclaim — feeding a
/// local SwappableStore that a local InferenceServer serves from.
///
/// Lifecycle, driven entirely by the stream:
///  - Start() restores from the durable ledger when one is configured
///    (serving resumes BEFORE the link is up), then announces with
///    kHello(last applied generation); the source answers with just the
///    deltas since — or a kBase when the replica is older than the
///    source's history ring. A cold start is kHello(0) -> kBase.
///  - kDelta frames must be contiguous (generation == current + 1). A gap
///    (a dropped frame) poisons the chain: the replica stops applying,
///    counts the damage, and sends ONE kResync; the next kBase rebases it.
///  - A corrupt/truncated frame surfaces from the FrameParser as kCorrupt
///    and takes the same poison-once/resync-once path.
///  - Frames at or below the current generation (reordered or raced with a
///    resync) are skipped as stale — never applied, never poison.
///  - Every applied generation is acked (kAck) so the source can export
///    this replica's lag; applied frames are appended to the durable
///    ledger, which self-compacts (delta tail -> fresh base) past
///    Options::durable_compact_after_deltas.
///  - When the stream dies and Options::reconnect is set, the apply loop
///    redials with exponential backoff + jitter and greets the source
///    with its current generation — the rejoin handshake above.
///  - With heartbeats enabled, a watchdog thread sends kHeartbeat each
///    interval and severs the link itself when NOTHING has arrived for
///    liveness_timeout_us (a half-open link looks exactly like silence),
///    which feeds the reconnect path.
///
/// The apply thread is the only mutator of the buffers, so unlike the
/// source-side manager there is no publish-turn sequencing; the lease
/// machinery is still needed because serving pins (PinScopes) hold
/// generations while the apply thread wants the buffer back.
class ReplicaManager {
 public:
  struct Options {
    /// How long a publish waits for the target buffer's lease before
    /// retiring it to the holder (O(store) rebuild fallback).
    uint64_t reclaim_wait_us = 20000;
    /// Label for this replica's obs metrics (replicate.<name>.*).
    std::string name = "replica";
    /// Directory for the durable applied-state ledger ("" = volatile
    /// replica: every restart is a cold join).
    std::string durable_dir;
    /// Fold the durable delta tail into a fresh base (one SaveState of the
    /// serving buffer) once it grows past this many deltas.
    uint64_t durable_compact_after_deltas = 64;
    /// Dial a replacement channel after the stream dies. Unavailable /
    /// DeadlineExceeded results are retried with backoff; anything else
    /// gives up. Null = no reconnection (stream end is final).
    std::function<StatusOr<std::unique_ptr<ByteChannel>>()> reconnect;
    uint64_t reconnect_backoff_initial_us = 50'000;
    uint64_t reconnect_backoff_max_us = 2'000'000;
    uint32_t reconnect_max_attempts = 8;
    /// Jitter seed (backoff spreads as backoff * [1, 1.5)).
    uint64_t reconnect_seed = 0x9e3779b97f4a7c15ull;
    /// Replica -> source heartbeat period (0 = no heartbeats).
    uint64_t heartbeat_interval_us = 0;
    /// Sever the link after this long without any inbound byte, forcing a
    /// reconnect (0 = trust the transport to report death).
    uint64_t liveness_timeout_us = 0;
  };

  /// `factory` must build stores of the source's exact configuration (the
  /// same factory contract as SnapshotManager). The channel is the replica
  /// end of a transport whose source end is registered with
  /// ReplicationSource::AddReplica.
  ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                 std::unique_ptr<ByteChannel> channel);
  ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                 std::unique_ptr<ByteChannel> channel,
                 const Options& options);
  ~ReplicaManager();

  /// Restores durable state (if any), sends kHello, and starts the apply
  /// (+ optional watchdog) threads. Call once.
  Status Start();

  /// Blocks until the local serving generation reaches `generation`, the
  /// stream dies for good, or `timeout_us` elapses (DeadlineExceeded).
  /// Returns the fatal status if the apply loop stopped on one.
  Status WaitForGeneration(uint64_t generation, uint64_t timeout_us);

  /// The local serving hub (hand to InferenceServer::Start). Null until
  /// the first generation is published; WaitForGeneration first.
  SwappableStore* swappable() const;

  /// Source generation currently serving locally (0 = none yet).
  uint64_t generation() const;

  struct Stats {
    uint64_t frames_received = 0;
    uint64_t bases_applied = 0;
    uint64_t deltas_applied = 0;
    /// Frames at or below the current generation, skipped (reorder/race).
    uint64_t stale_skipped = 0;
    /// Deltas dropped while awaiting a rebase after a poison.
    uint64_t poisoned_skipped = 0;
    uint64_t corrupt_frames = 0;
    /// Deltas that arrived non-contiguous (a dropped frame upstream).
    uint64_t gap_frames = 0;
    /// kResync requests sent (one per poison transition).
    uint64_t resyncs_requested = 0;
    /// Publishes that hit the lease-retire fallback.
    uint64_t retired_buffers = 0;
    uint64_t bytes_applied = 0;
    /// Successful channel redials (replicate.<name>.reconnects_total).
    uint64_t reconnects = 0;
    /// Durable-ledger restores at Start (0 or 1).
    uint64_t restores = 0;
    /// Generation the ledger restored to serving (0 = cold start).
    uint64_t restored_generation = 0;
    /// Ledger writes that failed (replication continues; rejoin degrades
    /// to whatever chain survived).
    uint64_t durable_persist_failures = 0;
    uint64_t heartbeats_received = 0;
    uint64_t generation = 0;
    uint64_t train_step = 0;
    /// First error that permanently stopped the apply loop (OK = healthy).
    Status fatal;
  };
  Stats stats() const;

  /// Closes the channel (the source sees EOF) and joins the apply thread.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct PendingPayload {
    uint64_t generation = 0;
    bool is_delta = false;
    std::shared_ptr<const std::string> payload;
  };
  /// One resident ping-pong buffer (apply-thread-owned; see class comment).
  struct BufferSlot {
    std::shared_ptr<EmbeddingStore> store;
    uint64_t state_gen = 0;
    std::deque<PendingPayload> pending;
  };
  struct LeaseState {
    std::mutex mu;
    std::condition_variable cv;
    bool leased[2] = {false, false};
    uint64_t epoch[2] = {0, 0};
  };

  void ApplyLoop();
  /// Reads the current channel until it ends; returns a fatal status to
  /// stop the loop for good, OK to try reconnecting.
  Status DrainStream();
  /// Redials with exponential backoff + jitter. False = give up (shutdown,
  /// attempts exhausted, or a non-retriable dial error).
  bool ReconnectWithBackoff();
  void WatchdogLoop();
  /// Dispatches one parsed frame; returns a fatal status to stop the loop.
  Status HandleFrame(Frame frame);
  /// Replays a restored ledger chain into serving state. On failure the
  /// buffers are reset for a clean cold join.
  void RestoreFromDurable();
  /// Appends an applied frame to the ledger (failure = counted, not fatal)
  /// and compacts when the delta tail is long. Apply thread only.
  void PersistFrame(const Frame& frame);
  void MaybeCompactDurable(uint64_t generation, uint64_t train_step);
  /// Queues the payload to both buffers and publishes `generation` into
  /// the local SwappableStore. `applied` (bases_applied / deltas_applied /
  /// restores) is bumped in the SAME critical section that exposes the
  /// generation, so a stats() reader woken by WaitForGeneration never sees
  /// the count lag the generation. Apply thread only.
  Status PublishGeneration(uint64_t generation, uint64_t train_step,
                           uint64_t Stats::*applied);
  /// Lease reclaim with the retire fallback. Apply thread only.
  Status ReclaimOrRetire(size_t slot, uint64_t generation);
  /// Transition into the poisoned state and request a rebase (once).
  void EnterResync(const char* why);
  void SendControl(FrameKind kind, uint64_t generation);

  SnapshotManager::FreshStoreFactory factory_;
  Options options_;

  std::thread apply_thread_;
  std::thread watchdog_thread_;
  bool started_ = false;

  // Apply-thread-only state (no lock needed).
  BufferSlot buffers_[2];
  uint64_t current_generation_ = 0;
  /// Publishes alternate slots by SEQUENCE (a rebase may jump the
  /// generation by any amount, including an even one).
  uint64_t publish_seq_ = 0;
  bool awaiting_base_ = true;  // poisoned or never synced: deltas skipped
  bool have_aux_ = false;
  uint64_t aux_generation_ = 0;
  AuxState aux_;
  std::unique_ptr<DurableReplicaLog> durable_;
  uint64_t jitter_state_ = 0;  // backoff jitter PRNG state

  std::shared_ptr<LeaseState> leases_;

  /// Serializes channel Writes only (frame bytes must not interleave).
  /// NEVER taken by a close path: Shutdown and the watchdog copy the
  /// channel pointer under channel_mu_ and Close() WITHOUT send_mu_, so a
  /// Write blocked on transport backpressure (stalled peer, full socket
  /// buffer) cannot deadlock them — Close is what unblocks that Write.
  std::mutex send_mu_;
  /// Guards the channel_ POINTER (reconnect swaps it; writers and close
  /// paths copy it). Never held across a Write/Read/Close. shared_ptr so
  /// an in-flight Write on the pre-reconnect channel stays valid.
  mutable std::mutex channel_mu_;
  std::shared_ptr<ByteChannel> channel_;
  /// Steady-clock stamp of the last inbound byte (watchdog liveness).
  std::atomic<uint64_t> last_recv_us_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  bool stream_done_ = false;  // apply loop exited
  std::unique_ptr<SwappableStore> swappable_;
  Stats stats_;

  obs::Gauge* obs_generation_ = nullptr;
  obs::Counter* obs_corrupt_ = nullptr;
  obs::Counter* obs_gaps_ = nullptr;
  obs::Counter* obs_resyncs_ = nullptr;
  obs::Counter* obs_bytes_applied_ = nullptr;
  obs::Counter* obs_reconnects_ = nullptr;
};

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_REPLICA_MANAGER_H_
