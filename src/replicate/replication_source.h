#ifndef CAFE_REPLICATE_REPLICATION_SOURCE_H_
#define CAFE_REPLICATE_REPLICATION_SOURCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "replicate/frame.h"
#include "replicate/transport.h"
#include "serve/snapshot_manager.h"

namespace cafe {
namespace replicate {

/// The trainer-side end of the replication tier: subscribes to a
/// SnapshotManager's boundary payloads (Options::payload_observer ->
/// MakeObserver()) and streams them as fingerprinted frames to N replica
/// links — the same O(dirty) SaveDelta bytes the local double-buffer
/// publish replays, shipped instead of recomputed.
///
/// The source keeps its own resident HEAD store that folds in every
/// payload (LoadState/LoadDelta, generation order). That head is what
/// makes the lifecycle cheap to serve:
///  - late joiner (kHello) or poisoned replica (kResync): SaveState the
///    head NOW and send it as a kBase at the head generation — no trainer
///    involvement, no payload replay from generation 1;
///  - replicas that keep up just get the per-cut frames fanned out.
///
/// Observer calls may arrive out of generation order (concurrent Cut()
/// callers race after the claim); a reorder map drains them contiguously,
/// which also keeps the head store's delta chain exact.
///
/// Per-replica lag is exported through the obs registry:
///   replicate.replica<i>.lag_generations  (head gen - last acked gen)
///   replicate.replica<i>.lag_bytes        (stream bytes past the ack)
/// plus source totals (replicate.source.*).
class ReplicationSource {
 public:
  struct Options {
    /// Capture dense weights / optimizer state sidecars (kAux frames) when
    /// the boundary carries them.
    bool ship_aux = true;
  };

  /// `factory` must build stores of the live store's exact configuration
  /// (the SnapshotManager contract; pass the same factory).
  explicit ReplicationSource(SnapshotManager::FreshStoreFactory factory);
  ReplicationSource(SnapshotManager::FreshStoreFactory factory,
                    const Options& options);
  ~ReplicationSource();

  /// The callback to install as SnapshotManager::Options::payload_observer.
  /// Valid for the source's lifetime.
  SnapshotManager::PayloadObserver MakeObserver();

  /// Registers a replica connection and starts its ack/resync reader
  /// thread. The replica end of the transport goes to a ReplicaManager.
  /// Safe before or after publishing starts; a link added late is served a
  /// base when its kHello arrives.
  Status AddReplica(std::unique_ptr<ByteChannel> channel);

  /// Feeds one boundary payload (what the observer forwards to).
  void Publish(const SnapshotManager::BoundaryPayload& boundary);

  struct ReplicaStats {
    bool alive = false;
    /// Last generation the replica acked as serving.
    uint64_t acked_generation = 0;
    /// head_generation - acked_generation at the last update.
    uint64_t lag_generations = 0;
    /// Stream bytes sent past the acked generation.
    uint64_t lag_bytes = 0;
    /// kBase frames sent to this link (1 = initial sync only).
    uint64_t base_resyncs = 0;
    uint64_t bytes_sent = 0;
  };
  struct Stats {
    uint64_t head_generation = 0;
    uint64_t generations_published = 0;
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t base_resyncs = 0;
    /// First error that stopped the head store's apply chain (OK = healthy).
    Status head_status;
    std::vector<ReplicaStats> replicas;
  };
  Stats stats() const;

  uint64_t head_generation() const;

  /// Closes every link and joins the reader threads. Idempotent; the
  /// destructor calls it. Replica ends see EOF.
  void Shutdown();

 private:
  struct Link {
    std::unique_ptr<ByteChannel> channel;
    std::thread reader;
    size_t index = 0;
    bool alive = true;
    /// False until this link has a base (its frames would be unreadable
    /// before one); deltas are only fanned out to caught-up links.
    bool caught_up = false;
    /// kHello/kResync arrived before the first publish; serve the base as
    /// soon as there is one.
    bool hello_pending = false;
    uint64_t acked_generation = 0;
    uint64_t base_resyncs = 0;
    uint64_t bytes_sent = 0;
    obs::Gauge* lag_generations = nullptr;
    obs::Gauge* lag_bytes = nullptr;
  };

  /// One reordered boundary awaiting its drain turn.
  struct PendingEntry {
    bool is_delta = false;
    std::shared_ptr<const std::string> payload;
    uint64_t train_step = 0;
    std::string aux;  // encoded AuxState ("" = none)
  };

  void ReaderLoop(Link* link);
  /// Applies contiguous pending entries to the head store and fans the
  /// frames out to caught-up links. Caller holds mu_.
  void DrainLocked();
  /// SaveStates the head and sends it (aux first) as a kBase on `link`.
  /// Caller holds mu_.
  void SendBaseLocked(Link* link);
  /// Writes `bytes` on `link`, updating its accounting; marks the link
  /// dead on failure. Caller holds mu_.
  void WriteToLinkLocked(Link* link, const std::string& bytes);
  void UpdateLagLocked(Link* link);

  SnapshotManager::FreshStoreFactory factory_;
  Options options_;

  mutable std::mutex mu_;
  bool shutdown_ = false;
  std::unique_ptr<EmbeddingStore> head_;
  Status head_status_;
  uint64_t head_generation_ = 0;
  uint64_t head_step_ = 0;
  /// Aux sidecar of the head generation (encoded; "" = none) — resent with
  /// every base so a rejoining replica gets matching dense weights.
  std::string head_aux_;
  std::map<uint64_t, PendingEntry> pending_;
  /// generation -> cumulative stream bytes after its frames; lag_bytes for
  /// an ack at g is cumulative_bytes_ - bytes_at_[g]. Pruned to a window.
  std::map<uint64_t, uint64_t> bytes_at_;
  uint64_t cumulative_bytes_ = 0;
  uint64_t generations_published_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t base_resyncs_ = 0;
  std::vector<std::unique_ptr<Link>> links_;

  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_resyncs_ = nullptr;
  obs::Gauge* obs_head_generation_ = nullptr;
};

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_REPLICATION_SOURCE_H_
