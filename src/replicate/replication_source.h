#ifndef CAFE_REPLICATE_REPLICATION_SOURCE_H_
#define CAFE_REPLICATE_REPLICATION_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "replicate/frame.h"
#include "replicate/transport.h"
#include "serve/snapshot_manager.h"

namespace cafe {
namespace replicate {

/// The trainer-side end of the replication tier: subscribes to a
/// SnapshotManager's boundary payloads (Options::payload_observer ->
/// MakeObserver()) and streams them as fingerprinted frames to N replica
/// links — the same O(dirty) SaveDelta bytes the local double-buffer
/// publish replays, shipped instead of recomputed.
///
/// The source keeps its own resident HEAD store that folds in every
/// payload (LoadState/LoadDelta, generation order). That head is what
/// makes the lifecycle cheap to serve:
///  - late joiner (kHello 0) or poisoned replica (kResync): SaveState the
///    head NOW and send it as a kBase at the head generation — no trainer
///    involvement, no payload replay from generation 1;
///  - a RESTARTING replica (kHello G > 0) is served only the deltas since
///    G, from a bounded generation-indexed delta history ring kept beside
///    the head, falling back to a full base when G predates the ring;
///  - replicas that keep up just get the per-cut frames fanned out.
///
/// Flow control: every link owns a bounded send queue (byte + frame
/// watermarks) drained by a dedicated sender thread, so Publish() NEVER
/// blocks on a slow consumer and source memory is O(watermark x links)
/// regardless of consumer speed. A link that crosses its watermark goes
/// STALE: deltas stop enqueuing for it, and once its queue drains the
/// sender re-enters it through the same rebase path a kResync takes
/// (fresh base at the head generation) instead of replaying an unbounded
/// backlog.
///
/// Liveness (opt-in, heartbeat_interval_us / liveness_timeout_us): a
/// maintenance thread enqueues kHeartbeat frames so replicas can detect a
/// dead source, and prunes links that have been silent past the timeout
/// (replica-side acks/heartbeats count as life signs).
///
/// Observer calls may arrive out of generation order (concurrent Cut()
/// callers race after the claim); a reorder map drains them contiguously,
/// which also keeps the head store's delta chain exact.
///
/// Per-replica state is exported through the obs registry:
///   replicate.replica<i>.lag_generations       (head gen - last acked gen)
///   replicate.replica<i>.lag_bytes             (stream bytes past the ack)
///   replicate.source.link<i>.send_queue_bytes  (queued, not yet written)
///   replicate.source.link<i>.send_queue_frames
/// plus source totals (replicate.source.*, including
/// replicate.source.queue_overflow_total).
class ReplicationSource {
 public:
  struct Options {
    /// Capture dense weights / optimizer state sidecars (kAux frames) when
    /// the boundary carries them.
    bool ship_aux = true;
    /// Per-link send-queue high watermarks. Crossing EITHER marks the link
    /// stale (stop enqueuing deltas; rebase once drained). Bases and the
    /// sidecars they need always enqueue — a rebase must be able to leave.
    uint64_t send_queue_high_bytes = 256ull << 20;
    uint64_t send_queue_high_frames = 1024;
    /// Encoded delta frames retained for hello(G) catch-up. 0 disables the
    /// ring (every rejoin gets a full base).
    uint64_t delta_history_generations = 64;
    /// Source -> replica heartbeat period (0 = no heartbeats).
    uint64_t heartbeat_interval_us = 0;
    /// Prune a link after this long without any inbound frame (0 = never).
    uint64_t liveness_timeout_us = 0;
  };

  /// `factory` must build stores of the live store's exact configuration
  /// (the SnapshotManager contract; pass the same factory).
  explicit ReplicationSource(SnapshotManager::FreshStoreFactory factory);
  ReplicationSource(SnapshotManager::FreshStoreFactory factory,
                    const Options& options);
  ~ReplicationSource();

  /// The callback to install as SnapshotManager::Options::payload_observer.
  /// Valid for the source's lifetime.
  SnapshotManager::PayloadObserver MakeObserver();

  /// Registers a replica connection and starts its reader + sender
  /// threads. The replica end of the transport goes to a ReplicaManager.
  /// Safe before or after publishing starts; a link added late is served a
  /// base (or a delta catch-up) when its kHello arrives.
  Status AddReplica(std::unique_ptr<ByteChannel> channel);

  /// Feeds one boundary payload (what the observer forwards to). Never
  /// blocks on link backpressure.
  void Publish(const SnapshotManager::BoundaryPayload& boundary);

  struct ReplicaStats {
    bool alive = false;
    /// Last generation the replica acked as serving (a hello(G) counts).
    uint64_t acked_generation = 0;
    /// head_generation - acked_generation at the last update.
    uint64_t lag_generations = 0;
    /// Stream bytes sent past the acked generation.
    uint64_t lag_bytes = 0;
    /// kBase frames sent to this link (1 = initial sync only).
    uint64_t base_resyncs = 0;
    uint64_t bytes_sent = 0;
    /// Encoded frames waiting in this link's bounded send queue.
    uint64_t send_queue_bytes = 0;
    uint64_t send_queue_frames = 0;
    /// Times this link crossed its watermark and went stale.
    uint64_t queue_overflows = 0;
    /// hello(G) rejoins served from the delta history ring (no base).
    uint64_t delta_catchups = 0;
    /// Stale right now: watermark crossed, deltas paused, rebase pending.
    bool stale = false;
  };
  struct Stats {
    uint64_t head_generation = 0;
    uint64_t generations_published = 0;
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t base_resyncs = 0;
    /// Watermark crossings across all links.
    uint64_t queue_overflows = 0;
    /// Rejoins served as deltas from the history ring.
    uint64_t delta_catchups = 0;
    /// Links dropped by the liveness watchdog.
    uint64_t links_pruned = 0;
    /// Delta generations currently held in the history ring.
    uint64_t history_generations = 0;
    /// First error that stopped the head store's apply chain (OK = healthy).
    Status head_status;
    std::vector<ReplicaStats> replicas;
  };
  Stats stats() const;

  uint64_t head_generation() const;

  /// Closes every link and joins all threads. Idempotent; the destructor
  /// calls it. Replica ends see EOF.
  void Shutdown();

 private:
  struct Link {
    std::unique_ptr<ByteChannel> channel;
    std::thread reader;
    std::thread sender;
    size_t index = 0;
    bool alive = true;
    /// False until this link has a base (its frames would be unreadable
    /// before one); deltas are only fanned out to caught-up links.
    bool caught_up = false;
    /// The sender owes this link a fresh base once its queue drains: set
    /// by kHello/kResync, by a watermark overflow, and by a hello(G) the
    /// history ring cannot cover.
    bool needs_base = false;
    /// Watermark crossed; cleared when the rebase is enqueued.
    bool stale = false;
    /// Encoded frames awaiting the sender. Bounded by the watermarks.
    std::deque<std::string> send_queue;
    uint64_t queued_bytes = 0;
    uint64_t acked_generation = 0;
    uint64_t last_recv_us = 0;  // steady-clock stamp of last inbound frame
    uint64_t base_resyncs = 0;
    uint64_t bytes_sent = 0;
    uint64_t queue_overflows = 0;
    uint64_t delta_catchups = 0;
    obs::Gauge* lag_generations = nullptr;
    obs::Gauge* lag_bytes = nullptr;
    obs::Gauge* queue_bytes_gauge = nullptr;
    obs::Gauge* queue_frames_gauge = nullptr;
  };

  /// One reordered boundary awaiting its drain turn.
  struct PendingEntry {
    bool is_delta = false;
    std::shared_ptr<const std::string> payload;
    uint64_t train_step = 0;
    std::string aux;  // encoded AuxState ("" = none)
  };

  /// One generation of the delta history ring: the encoded frames exactly
  /// as a live link would have received them.
  struct HistoryEntry {
    uint64_t generation = 0;
    std::string aux_bytes;  // "" = no sidecar that generation
    std::string data_bytes;
  };

  void ReaderLoop(Link* link);
  void SenderLoop(Link* link);
  void MaintenanceLoop();
  /// Applies contiguous pending entries to the head store and fans the
  /// frames out to caught-up links. Caller holds mu_.
  void DrainLocked();
  /// Admission control: enqueues `bytes` unless the watermark says no.
  /// Returns false (and marks the link stale if `is_data`) on refusal.
  /// Caller holds mu_.
  bool EnqueueLocked(Link* link, const std::string& bytes, bool is_data);
  /// Unconditional enqueue (bases and their sidecars). Caller holds mu_.
  void EnqueueForcedLocked(Link* link, std::string bytes);
  /// SaveStates the head and enqueues it (aux first) as a kBase; marks the
  /// link caught up. Called by the SENDER with an empty queue, and by the
  /// hello path when there is already a head. Caller holds mu_.
  void PrepareBaseLocked(Link* link);
  /// True when the ring contiguously covers (G, head]: hello(G) can be
  /// served as deltas. Caller holds mu_.
  bool HistoryCoversLocked(uint64_t generation) const;
  void UpdateLagLocked(Link* link);
  void UpdateQueueGaugesLocked(Link* link);

  SnapshotManager::FreshStoreFactory factory_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable send_cv_;  // wakes senders (shared; N is small)
  std::condition_variable maintenance_cv_;
  bool shutdown_ = false;
  std::unique_ptr<EmbeddingStore> head_;
  Status head_status_;
  uint64_t head_generation_ = 0;
  uint64_t head_step_ = 0;
  /// Aux sidecar of the head generation (encoded; "" = none) — resent with
  /// every base so a rejoining replica gets matching dense weights.
  std::string head_aux_;
  std::map<uint64_t, PendingEntry> pending_;
  /// Contiguous encoded deltas ending at head_generation_ (cleared by a
  /// base publish, pruned to delta_history_generations).
  std::deque<HistoryEntry> history_;
  /// generation -> cumulative stream bytes after its frames; lag_bytes for
  /// an ack at g is cumulative_bytes_ - bytes_at_[g]. Pruned to a window.
  std::map<uint64_t, uint64_t> bytes_at_;
  uint64_t cumulative_bytes_ = 0;
  uint64_t generations_published_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t base_resyncs_ = 0;
  uint64_t queue_overflows_ = 0;
  uint64_t delta_catchups_ = 0;
  uint64_t links_pruned_ = 0;
  std::vector<std::unique_ptr<Link>> links_;
  std::thread maintenance_;

  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_resyncs_ = nullptr;
  obs::Counter* obs_overflows_ = nullptr;
  obs::Gauge* obs_head_generation_ = nullptr;
};

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_REPLICATION_SOURCE_H_
