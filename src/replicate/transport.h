#ifndef CAFE_REPLICATE_TRANSPORT_H_
#define CAFE_REPLICATE_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace cafe {
namespace replicate {

/// A bidirectional byte stream endpoint: frames flow source -> replica,
/// acks/resync requests flow back. Implementations must support one writer
/// thread and one reader thread per endpoint concurrently (the source's
/// publish path writes while its ack-reader thread reads), and Close()
/// must unblock a Read() blocked on the peer.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Writes all `size` bytes or fails. The replication protocol calls this
  /// exactly once per frame, which is what fault injection counts.
  virtual Status Write(const void* data, size_t size) = 0;

  /// Blocks until at least one byte is available (returning up to `max`),
  /// the peer closes (returns 0), or this end is Close()d (returns 0).
  virtual StatusOr<size_t> Read(void* out, size_t max) = 0;

  /// Idempotent; unblocks both directions on both ends.
  virtual void Close() = 0;
};

/// The two ends of one source<->replica connection.
struct TransportPair {
  std::unique_ptr<ByteChannel> source;
  std::unique_ptr<ByteChannel> replica;
};

/// Deterministic fault injection on the source->replica direction of a
/// pipe transport. `frame_index` counts Write() calls on the source end
/// from 0 — one frame per write by protocol contract — so tests can say
/// "corrupt the 3rd frame" and get exactly that.
struct FaultPlan {
  enum class Action {
    kDrop,      ///< swallow the frame entirely (gap at the replica)
    kTruncate,  ///< deliver only the first `arg` bytes (default: half)
    kCorrupt,   ///< flip one byte at offset `arg` % size
    kReorder,   ///< hold the frame, deliver it AFTER the next one
    kDelay,     ///< deliver intact after sleeping `arg` microseconds
  };
  struct Rule {
    uint64_t frame_index = 0;
    Action action = Action::kDrop;
    uint64_t arg = 0;
  };
  std::vector<Rule> rules;
};

/// In-process pipe: lock + condvar byte queues, no descriptors. Writes
/// never block (unbounded buffer), so fault schedules replay exactly the
/// same under TSan and on any scheduler.
TransportPair MakePipeTransport(FaultPlan source_faults = {});

/// Loopback TCP (127.0.0.1, ephemeral port, TCP_NODELAY): the same
/// protocol over a real socket — OS framing, partial reads, EPIPE on a
/// dead peer.
StatusOr<TransportPair> MakeTcpTransport();

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_TRANSPORT_H_
