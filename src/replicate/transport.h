#ifndef CAFE_REPLICATE_TRANSPORT_H_
#define CAFE_REPLICATE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace cafe {
namespace replicate {

/// A bidirectional byte stream endpoint: frames flow source -> replica,
/// acks/resync requests flow back. Implementations must support one writer
/// thread and one reader thread per endpoint concurrently (the source's
/// publish path writes while its ack-reader thread reads), and Close()
/// must unblock a Read() blocked on the peer.
///
/// Status contract (typed so callers can tell "retry" from "give up"):
///  - Unavailable: the link is down (peer closed, connection reset). A
///    reconnect — possibly after a backoff — may restore it.
///  - DeadlineExceeded: a bounded wait elapsed (Accept/Connect timeouts).
///  - ResourceExhausted: a bounded buffer refused the bytes; draining the
///    peer frees capacity. Surfaced by bounded senders, never by blocking
///    writes (those wait for capacity instead).
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Writes all `size` bytes or fails. The replication protocol calls this
  /// exactly once per frame, which is what fault injection counts. May
  /// block for peer capacity on bounded transports.
  virtual Status Write(const void* data, size_t size) = 0;

  /// Blocks until at least one byte is available (returning up to `max`),
  /// the peer closes (returns 0), or this end is Close()d (returns 0).
  virtual StatusOr<size_t> Read(void* out, size_t max) = 0;

  /// Idempotent; unblocks both directions on both ends.
  virtual void Close() = 0;
};

/// The two ends of one source<->replica connection.
struct TransportPair {
  std::unique_ptr<ByteChannel> source;
  std::unique_ptr<ByteChannel> replica;
};

/// Deterministic fault injection on the source->replica direction of a
/// pipe transport. `frame_index` counts Write() calls on the source end
/// from 0 — one frame per write by protocol contract — so tests can say
/// "corrupt the 3rd frame" and get exactly that.
struct FaultPlan {
  enum class Action {
    kDrop,      ///< swallow the frame entirely (gap at the replica)
    kTruncate,  ///< deliver only the first `arg` bytes (default: half)
    kCorrupt,   ///< flip one byte at offset `arg` % size
    kReorder,   ///< hold the frame, deliver it AFTER the next one
    kDelay,     ///< deliver intact after sleeping `arg` microseconds
  };
  struct Rule {
    uint64_t frame_index = 0;
    Action action = Action::kDrop;
    uint64_t arg = 0;
  };
  std::vector<Rule> rules;
};

/// In-process pipe: lock + condvar byte queues, no descriptors. With
/// `capacity_bytes == 0` (the default) writes never block, so fault
/// schedules replay exactly the same under TSan and on any scheduler.
/// With a nonzero capacity each direction is a bounded buffer: Write
/// blocks until the reader drains space (real-socket backpressure for
/// flow-control tests) or the lane closes (-> Unavailable).
TransportPair MakePipeTransport(FaultPlan source_faults = {},
                                size_t capacity_bytes = 0);

/// Loopback TCP (127.0.0.1, ephemeral port, TCP_NODELAY): the same
/// protocol over a real socket — OS framing, partial reads, EPIPE on a
/// dead peer.
StatusOr<TransportPair> MakeTcpTransport();

/// Accepting side of a loopback TCP link that outlives any one connection:
/// a restarting replica reconnects to the same port. One Accept at a time.
class TcpListener {
 public:
  ~TcpListener();

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()).
  static StatusOr<std::unique_ptr<TcpListener>> Bind(uint16_t port = 0);

  uint16_t port() const { return port_; }

  /// Waits up to `timeout_us` for one inbound connection.
  /// DeadlineExceeded if none arrives in time; Unavailable after Close().
  StatusOr<std::unique_ptr<ByteChannel>> Accept(uint64_t timeout_us);

  /// Unblocks a pending Accept. Idempotent.
  void Close();

 private:
  explicit TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
  std::atomic<bool> closed_{false};
};

/// Connects to a TcpListener on 127.0.0.1:`port`. Unavailable when the
/// connection is refused or reset (nobody listening — retry after a
/// backoff); DeadlineExceeded when the handshake outlives `timeout_us`.
StatusOr<std::unique_ptr<ByteChannel>> TcpConnect(uint16_t port,
                                                  uint64_t timeout_us);

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_TRANSPORT_H_
