#include "replicate/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace cafe {
namespace replicate {

FaultyChannel::FaultyChannel(std::unique_ptr<ByteChannel> inner)
    : inner_(std::move(inner)) {}

FaultyChannel::~FaultyChannel() { Close(); }

void FaultyChannel::Arm(FaultPlan::Action action, uint64_t in_frames,
                        uint64_t arg) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  action_ = action;
  fire_at_ = frames_written_ + in_frames;
  arg_ = arg;
}

void FaultyChannel::SetStalled(bool stalled) {
  std::lock_guard<std::mutex> lock(mu_);
  stalled_ = stalled;
  if (!stalled) stall_cv_.notify_all();
}

uint64_t FaultyChannel::frames_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_written_;
}

Status FaultyChannel::Write(const void* data, size_t size) {
  // Same decide-under-lock / emit-outside-lock shape as PipeChannel: the
  // inner Write may block (bounded pipe, stalled socket), and holding mu_
  // through it would wedge Arm/SetStalled/Close.
  bool emit = true;
  const char* direct = nullptr;
  size_t direct_size = 0;
  std::string owned;
  std::string flush_held;
  bool has_flush = false;
  uint64_t delay_us = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stall_cv_.wait(lock, [&] { return !stalled_ || closed_; });
    if (closed_) return Status::Unavailable("channel closed");
    const uint64_t index = frames_written_++;
    if (armed_ && index == fire_at_) {
      armed_ = false;
      switch (action_) {
        case FaultPlan::Action::kDrop:
          emit = false;
          break;
        case FaultPlan::Action::kTruncate: {
          size_t keep = arg_ != 0 ? static_cast<size_t>(arg_) : size / 2;
          keep = std::min(keep, size > 0 ? size - 1 : 0);
          owned.assign(static_cast<const char*>(data), keep);
          break;
        }
        case FaultPlan::Action::kCorrupt:
          owned.assign(static_cast<const char*>(data), size);
          if (!owned.empty()) {
            owned[static_cast<size_t>(arg_) % owned.size()] ^=
                static_cast<char>(0xff);
          }
          break;
        case FaultPlan::Action::kReorder:
          held_.assign(static_cast<const char*>(data), size);
          has_held_ = true;
          emit = false;
          break;
        case FaultPlan::Action::kDelay:
          delay_us = arg_;
          direct = static_cast<const char*>(data);
          direct_size = size;
          break;
      }
    } else {
      direct = static_cast<const char*>(data);
      direct_size = size;
    }
    if (emit && has_held_) {
      flush_held = std::move(held_);
      has_held_ = false;
      has_flush = true;
    }
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  if (emit) {
    const Status status = direct != nullptr
                              ? inner_->Write(direct, direct_size)
                              : inner_->Write(owned.data(), owned.size());
    if (!status.ok()) return status;
  }
  if (has_flush) {
    return inner_->Write(flush_held.data(), flush_held.size());
  }
  return Status::OK();
}

StatusOr<size_t> FaultyChannel::Read(void* out, size_t max) {
  return inner_->Read(out, max);
}

void FaultyChannel::Close() {
  std::string flush;
  bool has_flush = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    stalled_ = false;
    stall_cv_.notify_all();
    if (has_held_) {
      flush = std::move(held_);
      has_held_ = false;
      has_flush = true;
    }
  }
  if (has_flush) inner_->Write(flush.data(), flush.size());
  inner_->Close();
}

FaultInjector::Episode FaultInjector::Next() {
  Episode episode;
  episode.kind = static_cast<Kind>(
      rng_.Uniform(static_cast<uint64_t>(Kind::kKindCount)));
  ++counts_[static_cast<int>(episode.kind)];
  episode.target = static_cast<uint32_t>(rng_.Uniform(replica_count_));
  switch (episode.kind) {
    case Kind::kDrop:
    case Kind::kReorder:
      episode.in_frames = rng_.Uniform(3);
      break;
    case Kind::kCorrupt:
    case Kind::kTruncate:
      episode.in_frames = rng_.Uniform(3);
      episode.arg = rng_.Uniform(64);  // byte offset / truncate length seed
      break;
    case Kind::kStall:
      episode.arg = 1 + rng_.Uniform(2);  // cuts to stay stalled for
      break;
    case Kind::kKill:
      episode.arg = 1 + rng_.Uniform(3);  // cuts to stay dead for
      break;
    case Kind::kKindCount:
      break;  // unreachable
  }
  return episode;
}

const char* FaultKindName(FaultInjector::Kind kind) {
  switch (kind) {
    case FaultInjector::Kind::kDrop:
      return "drop";
    case FaultInjector::Kind::kCorrupt:
      return "corrupt";
    case FaultInjector::Kind::kTruncate:
      return "truncate";
    case FaultInjector::Kind::kReorder:
      return "reorder";
    case FaultInjector::Kind::kStall:
      return "stall";
    case FaultInjector::Kind::kKill:
      return "kill";
    case FaultInjector::Kind::kKindCount:
      break;
  }
  return "unknown";
}

}  // namespace replicate
}  // namespace cafe
