#ifndef CAFE_REPLICATE_FRAME_H_
#define CAFE_REPLICATE_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cafe {
namespace replicate {

/// Wire frame layout (io::Writer format — little-endian fixed-width):
///
///   offset  size  field
///   ------  ----  -----
///        0     4  magic        0x45464143 ("CAFE" on the wire)
///        4     1  kind         FrameKind
///        5     8  generation   snapshot generation the frame belongs to
///       13     8  train_step   trainer step the state was copied at
///       21     8  payload_size bytes of payload that follow
///       29     n  payload      kind-specific (store bytes, aux sidecar, …)
///   29 + n     8  fingerprint  64-bit FNV-1a over ALL preceding frame
///                              bytes (header + payload)
///
/// The trailing fingerprint is what makes the stream self-healing: a
/// corrupted or truncated frame fails verification instead of installing
/// divergent state, and the parser re-locks onto the next magic.
constexpr uint32_t kFrameMagic = 0x45464143;
constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 8 + 8;
constexpr size_t kFrameOverheadBytes = kFrameHeaderBytes + 8;
/// Payloads above this are rejected as corrupt length prefixes rather than
/// buffered (a flipped bit in payload_size must not ask for exabytes).
constexpr uint64_t kMaxFramePayloadBytes = 1ull << 31;

enum class FrameKind : uint8_t {
  /// Full SaveState payload for `generation` (initial sync, rebase, or a
  /// full-mode cut). Applying it is valid from ANY replica state.
  kBase = 1,
  /// SaveDelta payload relative to `generation - 1`.
  kDelta = 2,
  /// Sidecar for the SAME generation as the next kBase/kDelta frame: dense
  /// model params + optimizer state + model name (see Encode/DecodeAux).
  kAux = 3,
  /// Replica -> source: a late joiner announcing itself (send me a base).
  kHello = 4,
  /// Replica -> source: chain poisoned (gap or corrupt frame) — rebase me.
  kResync = 5,
  /// Replica -> source: `generation` is applied and serving (lag probe).
  kAck = 6,
  /// Either direction: liveness probe, no payload. `generation` carries the
  /// sender's current head/applied generation as a free diagnostic.
  kHeartbeat = 7,
};

bool IsValidFrameKind(uint8_t kind);

struct Frame {
  FrameKind kind = FrameKind::kBase;
  uint64_t generation = 0;
  uint64_t train_step = 0;
  std::string payload;
};

/// Serializes one frame, fingerprint included.
std::string EncodeFrame(const Frame& frame);

/// Parses `bytes` as EXACTLY one encoded frame (no leading damage, no
/// trailing bytes). The durable replica ledger stores frames in this form so
/// the wire fingerprint doubles as the on-disk integrity check.
Status DecodeFrame(const std::string& bytes, Frame* out);

/// The non-store half of a ServingSnapshot, shipped as a kAux payload so a
/// replica's snapshots carry the same dense weights / optimizer state the
/// source's do.
struct AuxState {
  std::string model_name;
  std::vector<std::vector<float>> dense_params;
  bool has_optimizer = false;
  std::string optimizer_state;
};

std::string EncodeAux(const AuxState& aux);
Status DecodeAux(const std::string& payload, AuxState* out);

/// Incremental push parser: Feed() raw stream chunks in, Next() frames out.
/// Tolerates arbitrary chunk boundaries, and re-synchronizes after damage
/// by scanning forward to the next magic:
///
///  - dropped frame: parses cleanly; the generation gap is the CONSUMER's
///    signal (the parser cannot know a frame never arrived);
///  - truncated frame: the next frame's bytes get consumed as the missing
///    payload, the fingerprint fails, and the scan re-locks on a later
///    magic (frames after the damage zone parse normally);
///  - flipped byte: fingerprint (or header validation) fails, same rescan.
///
/// A contiguous damage zone surfaces as a small bounded number of kCorrupt
/// results (one per rescan step, not one per byte) before parsing resumes;
/// consumers treat kCorrupt idempotently (poison once, resync once).
class FrameParser {
 public:
  enum class Result {
    kFrame,     ///< *out holds the next frame
    kNeedMore,  ///< no complete frame buffered; Feed() more bytes
    kCorrupt,   ///< damage detected and skipped; call Next() again
  };

  void Feed(const void* data, size_t size);
  Result Next(Frame* out);

  /// Total kCorrupt results surfaced.
  uint64_t corrupt_events() const { return corrupt_events_; }
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  /// Discards [pos_, pos_ + n) and compacts the buffer when the dead
  /// prefix dominates.
  void Consume(size_t n);

  std::string buffer_;
  size_t pos_ = 0;
  uint64_t corrupt_events_ = 0;
};

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_FRAME_H_
