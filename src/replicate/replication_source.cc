#include "replicate/replication_source.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "io/serialize.h"

namespace cafe {
namespace replicate {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplicationSource::ReplicationSource(SnapshotManager::FreshStoreFactory factory)
    : ReplicationSource(std::move(factory), Options()) {}

ReplicationSource::ReplicationSource(SnapshotManager::FreshStoreFactory factory,
                                     const Options& options)
    : factory_(std::move(factory)), options_(options) {
  CAFE_CHECK(factory_ != nullptr) << "replication source needs a store factory";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs_frames_ = registry.GetCounter("replicate.source.frames_sent_total");
  obs_bytes_ = registry.GetCounter("replicate.source.bytes_sent_total");
  obs_resyncs_ = registry.GetCounter("replicate.source.base_resyncs_total");
  obs_overflows_ =
      registry.GetCounter("replicate.source.queue_overflow_total");
  obs_head_generation_ = registry.GetGauge("replicate.source.head_generation");
  auto head = factory_();
  if (head.ok()) {
    head_ = std::move(head).value();
    if (head_ == nullptr) {
      head_status_ =
          Status::InvalidArgument("replication store factory returned null");
    }
  } else {
    head_status_ = head.status();
  }
  if (options_.heartbeat_interval_us > 0 || options_.liveness_timeout_us > 0) {
    maintenance_ = std::thread([this] { MaintenanceLoop(); });
  }
}

ReplicationSource::~ReplicationSource() { Shutdown(); }

SnapshotManager::PayloadObserver ReplicationSource::MakeObserver() {
  return [this](const SnapshotManager::BoundaryPayload& boundary) {
    Publish(boundary);
  };
}

Status ReplicationSource::AddReplica(std::unique_ptr<ByteChannel> channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("replication link needs a channel");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("replication source is shut down");
  }
  auto link = std::make_unique<Link>();
  link->channel = std::move(channel);
  link->index = links_.size();
  link->last_recv_us = NowUs();
  const std::string replica_prefix =
      "replicate.replica" + std::to_string(link->index);
  const std::string link_prefix =
      "replicate.source.link" + std::to_string(link->index);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  link->lag_generations = registry.GetGauge(replica_prefix + ".lag_generations");
  link->lag_bytes = registry.GetGauge(replica_prefix + ".lag_bytes");
  link->queue_bytes_gauge = registry.GetGauge(link_prefix + ".send_queue_bytes");
  link->queue_frames_gauge =
      registry.GetGauge(link_prefix + ".send_queue_frames");
  Link* raw = link.get();
  link->reader = std::thread([this, raw] { ReaderLoop(raw); });
  link->sender = std::thread([this, raw] { SenderLoop(raw); });
  links_.push_back(std::move(link));
  return Status::OK();
}

void ReplicationSource::Publish(
    const SnapshotManager::BoundaryPayload& boundary) {
  // Encode the sidecar NOW: the boundary's pointers are only valid for
  // this call, while the queued entry may wait for an earlier generation.
  std::string aux;
  if (options_.ship_aux && boundary.payload != nullptr) {
    const bool has_dense = boundary.dense_params != nullptr &&
                           !boundary.dense_params->empty();
    if (has_dense || boundary.has_optimizer) {
      AuxState state;
      if (boundary.model_name != nullptr) state.model_name = *boundary.model_name;
      if (has_dense) state.dense_params = *boundary.dense_params;
      state.has_optimizer = boundary.has_optimizer;
      if (boundary.has_optimizer && boundary.optimizer_state != nullptr) {
        state.optimizer_state = *boundary.optimizer_state;
      }
      aux = EncodeAux(state);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || !head_status_.ok() || boundary.payload == nullptr ||
      boundary.generation <= head_generation_) {
    return;
  }
  PendingEntry entry;
  entry.is_delta = boundary.is_delta;
  entry.payload = boundary.payload;
  entry.train_step = boundary.train_step;
  entry.aux = std::move(aux);
  pending_.emplace(boundary.generation, std::move(entry));
  DrainLocked();
}

void ReplicationSource::DrainLocked() {
  while (!pending_.empty()) {
    auto it = pending_.begin();
    const uint64_t generation = it->first;
    if (generation <= head_generation_) {
      pending_.erase(it);
      continue;
    }
    // Claimed generations are contiguous (a failed copy never claims one),
    // so anything beyond head+1 is just an earlier cutter that has not
    // reported yet — unless it is a base, which rebases from any state.
    if (generation != head_generation_ + 1 && it->second.is_delta) break;
    PendingEntry entry = std::move(it->second);
    pending_.erase(it);

    // Fold into the head store so a base for late joiners is always one
    // SaveState away.
    io::Reader reader(entry.payload.get());
    Status status = entry.is_delta ? head_->LoadDelta(&reader)
                                   : head_->LoadState(&reader);
    if (status.ok() && reader.remaining() != 0) {
      status = Status::Internal(
          "replication payload not fully consumed by the head store");
    }
    if (!status.ok()) {
      // The head diverged from the trainer: stop streaming rather than
      // ship frames a resync could not repair. stats() exposes the cause.
      head_status_ = status;
      return;
    }
    head_generation_ = generation;
    head_step_ = entry.train_step;
    head_aux_ = entry.aux;
    ++generations_published_;
    obs_head_generation_->Set(static_cast<double>(head_generation_));

    Frame frame;
    frame.kind = entry.is_delta ? FrameKind::kDelta : FrameKind::kBase;
    frame.generation = generation;
    frame.train_step = entry.train_step;
    frame.payload = *entry.payload;
    const std::string data_bytes = EncodeFrame(frame);
    std::string aux_bytes;
    if (!entry.aux.empty()) {
      Frame aux_frame;
      aux_frame.kind = FrameKind::kAux;
      aux_frame.generation = generation;
      aux_frame.train_step = entry.train_step;
      aux_frame.payload = entry.aux;
      aux_bytes = EncodeFrame(aux_frame);
    }
    cumulative_bytes_ += data_bytes.size() + aux_bytes.size();
    bytes_at_[generation] = cumulative_bytes_;
    while (bytes_at_.size() > 1024) bytes_at_.erase(bytes_at_.begin());

    // The history ring holds deltas contiguous up to the head; a base
    // publish resets it (catch-up across a base needs the base anyway).
    if (entry.is_delta && options_.delta_history_generations > 0) {
      HistoryEntry history;
      history.generation = generation;
      history.aux_bytes = aux_bytes;
      history.data_bytes = data_bytes;
      history_.push_back(std::move(history));
      while (history_.size() > options_.delta_history_generations) {
        history_.pop_front();
      }
    } else {
      history_.clear();
    }

    for (auto& link : links_) {
      if (!link->alive || !link->caught_up || link->stale) continue;
      if (!aux_bytes.empty() && !EnqueueLocked(link.get(), aux_bytes, true)) {
        continue;  // went stale; the sender rebases once drained
      }
      EnqueueLocked(link.get(), data_bytes, true);
      UpdateLagLocked(link.get());
    }
  }
  // Wake senders: new frames may be queued, and a link waiting on "a head
  // exists" for its first base can proceed after the first publish.
  send_cv_.notify_all();
}

bool ReplicationSource::EnqueueLocked(Link* link, const std::string& bytes,
                                      bool is_data) {
  if (!link->alive) return false;
  // An empty queue always admits (a single frame above the watermark must
  // not wedge the link forever) — so queue memory is bounded by
  // max(watermark, one frame), not blocked at zero.
  const bool fits =
      link->send_queue.empty() ||
      (link->queued_bytes + bytes.size() <= options_.send_queue_high_bytes &&
       link->send_queue.size() + 1 <= options_.send_queue_high_frames);
  if (!fits) {
    if (is_data && !link->stale) {
      // Crossing the watermark: stop enqueuing deltas for this link. The
      // queued backlog (bounded) still drains; the sender then re-enters
      // the link through the same rebase path a kResync takes.
      link->stale = true;
      link->needs_base = true;
      link->caught_up = false;
      ++link->queue_overflows;
      ++queue_overflows_;
      obs_overflows_->Add(1);
    }
    return false;
  }
  link->send_queue.push_back(bytes);
  link->queued_bytes += bytes.size();
  UpdateQueueGaugesLocked(link);
  return true;
}

void ReplicationSource::EnqueueForcedLocked(Link* link, std::string bytes) {
  link->queued_bytes += bytes.size();
  link->send_queue.push_back(std::move(bytes));
  UpdateQueueGaugesLocked(link);
}

void ReplicationSource::PrepareBaseLocked(Link* link) {
  if (head_generation_ < 1) {
    // Nothing published yet: the sender re-runs this after the first cut.
    link->needs_base = true;
    return;
  }
  link->needs_base = false;
  link->stale = false;
  io::Writer writer;
  const Status status = head_->SaveState(&writer);
  if (!status.ok()) {
    head_status_ = status;
    return;
  }
  if (!head_aux_.empty()) {
    Frame aux_frame;
    aux_frame.kind = FrameKind::kAux;
    aux_frame.generation = head_generation_;
    aux_frame.train_step = head_step_;
    aux_frame.payload = head_aux_;
    EnqueueForcedLocked(link, EncodeFrame(aux_frame));
  }
  Frame base;
  base.kind = FrameKind::kBase;
  base.generation = head_generation_;
  base.train_step = head_step_;
  base.payload = writer.Release();
  EnqueueForcedLocked(link, EncodeFrame(base));
  link->caught_up = true;
  ++link->base_resyncs;
  ++base_resyncs_;
  obs_resyncs_->Add(1);
  UpdateLagLocked(link);
  send_cv_.notify_all();
}

bool ReplicationSource::HistoryCoversLocked(uint64_t generation) const {
  return options_.delta_history_generations > 0 && !history_.empty() &&
         generation < head_generation_ &&
         history_.front().generation <= generation + 1 &&
         history_.back().generation == head_generation_;
}

void ReplicationSource::UpdateLagLocked(Link* link) {
  const uint64_t acked = link->acked_generation;
  const uint64_t lag_gen =
      head_generation_ > acked ? head_generation_ - acked : 0;
  uint64_t lag_bytes = 0;
  const auto it = bytes_at_.find(acked);
  if (it != bytes_at_.end()) {
    lag_bytes = cumulative_bytes_ - it->second;
  } else if (acked < head_generation_) {
    // Ack older than the tracked window (or 0): everything is behind.
    lag_bytes = cumulative_bytes_;
  }
  link->lag_generations->Set(static_cast<double>(lag_gen));
  link->lag_bytes->Set(static_cast<double>(lag_bytes));
}

void ReplicationSource::UpdateQueueGaugesLocked(Link* link) {
  link->queue_bytes_gauge->Set(static_cast<double>(link->queued_bytes));
  link->queue_frames_gauge->Set(static_cast<double>(link->send_queue.size()));
}

void ReplicationSource::SenderLoop(Link* link) {
  while (true) {
    std::string bytes;
    {
      std::unique_lock<std::mutex> lock(mu_);
      send_cv_.wait(lock, [&] {
        return shutdown_ || !link->alive || !link->send_queue.empty() ||
               (link->needs_base && head_generation_ >= 1);
      });
      if (shutdown_ || !link->alive) return;
      if (link->send_queue.empty()) {
        // Stale-and-drained (or a pending hello/resync): re-enter through
        // a fresh base at the head, never by replaying a backlog.
        PrepareBaseLocked(link);
        if (link->send_queue.empty()) continue;  // head error; stay parked
      }
      bytes = std::move(link->send_queue.front());
      link->send_queue.pop_front();
      link->queued_bytes -= bytes.size();
      UpdateQueueGaugesLocked(link);
    }
    // The write happens OUTSIDE mu_: it may block on transport
    // backpressure, and Publish must never wait on a slow link.
    const Status status = link->channel->Write(bytes.data(), bytes.size());
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok()) {
      link->alive = false;
      send_cv_.notify_all();
      return;
    }
    link->bytes_sent += bytes.size();
    ++frames_sent_;
    bytes_sent_ += bytes.size();
    obs_frames_->Add(1);
    obs_bytes_->Add(bytes.size());
  }
}

void ReplicationSource::ReaderLoop(Link* link) {
  FrameParser parser;
  char buf[4096];
  while (true) {
    auto n = link->channel->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    parser.Feed(buf, *n);
    Frame frame;
    while (true) {
      const FrameParser::Result result = parser.Next(&frame);
      if (result == FrameParser::Result::kNeedMore) break;
      if (result == FrameParser::Result::kCorrupt) continue;
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      link->last_recv_us = NowUs();
      switch (frame.kind) {
        case FrameKind::kHello: {
          link->caught_up = false;
          link->stale = false;
          link->acked_generation =
              std::max(link->acked_generation, frame.generation);
          if (frame.generation > 0 && frame.generation == head_generation_) {
            // Rejoiner already at the head: nothing to ship.
            link->needs_base = false;
            link->caught_up = true;
            ++link->delta_catchups;
            ++delta_catchups_;
            UpdateLagLocked(link);
          } else if (frame.generation > 0 &&
                     HistoryCoversLocked(frame.generation)) {
            // Serve only the deltas since its last applied generation.
            bool overflow = false;
            for (const HistoryEntry& entry : history_) {
              if (entry.generation <= frame.generation) continue;
              if (!entry.aux_bytes.empty() &&
                  !EnqueueLocked(link, entry.aux_bytes, true)) {
                overflow = true;
                break;
              }
              if (!EnqueueLocked(link, entry.data_bytes, true)) {
                overflow = true;
                break;
              }
            }
            if (!overflow) {
              link->needs_base = false;
              link->caught_up = true;
              ++link->delta_catchups;
              ++delta_catchups_;
            }
            // On overflow EnqueueLocked marked the link stale; the sender
            // rebases after the partial catch-up drains.
            UpdateLagLocked(link);
          } else {
            // Cold joiner, or older than the ring: full base.
            link->needs_base = true;
          }
          send_cv_.notify_all();
          break;
        }
        case FrameKind::kResync:
          link->caught_up = false;
          link->needs_base = true;
          send_cv_.notify_all();
          break;
        case FrameKind::kAck:
          link->acked_generation =
              std::max(link->acked_generation, frame.generation);
          UpdateLagLocked(link);
          break;
        case FrameKind::kHeartbeat:
          break;  // the last_recv_us stamp above is the point
        default:
          break;  // data frames never flow replica -> source
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  link->alive = false;
  send_cv_.notify_all();
}

void ReplicationSource::MaintenanceLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t interval_us = options_.heartbeat_interval_us;
  if (interval_us == 0 || (options_.liveness_timeout_us > 0 &&
                           options_.liveness_timeout_us / 2 < interval_us)) {
    // Tick at least twice per liveness window so a dead link is pruned
    // within ~1.5x the timeout.
    if (options_.liveness_timeout_us > 0) {
      interval_us = std::max<uint64_t>(options_.liveness_timeout_us / 2, 1000);
    }
  }
  if (interval_us == 0) return;
  while (!shutdown_) {
    maintenance_cv_.wait_for(lock, std::chrono::microseconds(interval_us),
                             [&] { return shutdown_; });
    if (shutdown_) return;
    const uint64_t now = NowUs();
    for (auto& link : links_) {
      if (!link->alive) continue;
      if (options_.liveness_timeout_us > 0 &&
          now - link->last_recv_us > options_.liveness_timeout_us) {
        // Silent past the deadline: dead peer (or a half-open link). Close
        // wakes its reader (which marks it dead) and unblocks its sender.
        link->alive = false;
        link->channel->Close();
        ++links_pruned_;
        continue;
      }
      if (options_.heartbeat_interval_us > 0 && link->caught_up &&
          !link->stale) {
        Frame heartbeat;
        heartbeat.kind = FrameKind::kHeartbeat;
        heartbeat.generation = head_generation_;
        heartbeat.train_step = head_step_;
        EnqueueLocked(link.get(), EncodeFrame(heartbeat), false);
      }
    }
    send_cv_.notify_all();
  }
}

ReplicationSource::Stats ReplicationSource::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.head_generation = head_generation_;
  stats.generations_published = generations_published_;
  stats.frames_sent = frames_sent_;
  stats.bytes_sent = bytes_sent_;
  stats.base_resyncs = base_resyncs_;
  stats.queue_overflows = queue_overflows_;
  stats.delta_catchups = delta_catchups_;
  stats.links_pruned = links_pruned_;
  stats.history_generations = history_.size();
  stats.head_status = head_status_;
  stats.replicas.reserve(links_.size());
  for (const auto& link : links_) {
    ReplicaStats replica;
    replica.alive = link->alive;
    replica.acked_generation = link->acked_generation;
    replica.lag_generations = head_generation_ > link->acked_generation
                                  ? head_generation_ - link->acked_generation
                                  : 0;
    const auto it = bytes_at_.find(link->acked_generation);
    replica.lag_bytes = it != bytes_at_.end()
                            ? cumulative_bytes_ - it->second
                            : (link->acked_generation < head_generation_
                                   ? cumulative_bytes_
                                   : 0);
    replica.base_resyncs = link->base_resyncs;
    replica.bytes_sent = link->bytes_sent;
    replica.send_queue_bytes = link->queued_bytes;
    replica.send_queue_frames = link->send_queue.size();
    replica.queue_overflows = link->queue_overflows;
    replica.delta_catchups = link->delta_catchups;
    replica.stale = link->stale;
    stats.replicas.push_back(replica);
  }
  return stats;
}

uint64_t ReplicationSource::head_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_generation_;
}

void ReplicationSource::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& link : links_) {
      link->channel->Close();
    }
    send_cv_.notify_all();
    maintenance_cv_.notify_all();
  }
  if (maintenance_.joinable()) maintenance_.join();
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.join();
    if (link->sender.joinable()) link->sender.join();
  }
}

}  // namespace replicate
}  // namespace cafe
