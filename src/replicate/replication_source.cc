#include "replicate/replication_source.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "io/serialize.h"

namespace cafe {
namespace replicate {

ReplicationSource::ReplicationSource(SnapshotManager::FreshStoreFactory factory)
    : ReplicationSource(std::move(factory), Options()) {}

ReplicationSource::ReplicationSource(SnapshotManager::FreshStoreFactory factory,
                                     const Options& options)
    : factory_(std::move(factory)), options_(options) {
  CAFE_CHECK(factory_ != nullptr) << "replication source needs a store factory";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs_frames_ = registry.GetCounter("replicate.source.frames_sent_total");
  obs_bytes_ = registry.GetCounter("replicate.source.bytes_sent_total");
  obs_resyncs_ = registry.GetCounter("replicate.source.base_resyncs_total");
  obs_head_generation_ = registry.GetGauge("replicate.source.head_generation");
  auto head = factory_();
  if (head.ok()) {
    head_ = std::move(head).value();
    if (head_ == nullptr) {
      head_status_ =
          Status::InvalidArgument("replication store factory returned null");
    }
  } else {
    head_status_ = head.status();
  }
}

ReplicationSource::~ReplicationSource() { Shutdown(); }

SnapshotManager::PayloadObserver ReplicationSource::MakeObserver() {
  return [this](const SnapshotManager::BoundaryPayload& boundary) {
    Publish(boundary);
  };
}

Status ReplicationSource::AddReplica(std::unique_ptr<ByteChannel> channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("replication link needs a channel");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("replication source is shut down");
  }
  auto link = std::make_unique<Link>();
  link->channel = std::move(channel);
  link->index = links_.size();
  const std::string prefix =
      "replicate.replica" + std::to_string(link->index);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  link->lag_generations = registry.GetGauge(prefix + ".lag_generations");
  link->lag_bytes = registry.GetGauge(prefix + ".lag_bytes");
  Link* raw = link.get();
  link->reader = std::thread([this, raw] { ReaderLoop(raw); });
  links_.push_back(std::move(link));
  return Status::OK();
}

void ReplicationSource::Publish(
    const SnapshotManager::BoundaryPayload& boundary) {
  // Encode the sidecar NOW: the boundary's pointers are only valid for
  // this call, while the queued entry may wait for an earlier generation.
  std::string aux;
  if (options_.ship_aux && boundary.payload != nullptr) {
    const bool has_dense = boundary.dense_params != nullptr &&
                           !boundary.dense_params->empty();
    if (has_dense || boundary.has_optimizer) {
      AuxState state;
      if (boundary.model_name != nullptr) state.model_name = *boundary.model_name;
      if (has_dense) state.dense_params = *boundary.dense_params;
      state.has_optimizer = boundary.has_optimizer;
      if (boundary.has_optimizer && boundary.optimizer_state != nullptr) {
        state.optimizer_state = *boundary.optimizer_state;
      }
      aux = EncodeAux(state);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || !head_status_.ok() || boundary.payload == nullptr ||
      boundary.generation <= head_generation_) {
    return;
  }
  PendingEntry entry;
  entry.is_delta = boundary.is_delta;
  entry.payload = boundary.payload;
  entry.train_step = boundary.train_step;
  entry.aux = std::move(aux);
  pending_.emplace(boundary.generation, std::move(entry));
  DrainLocked();
}

void ReplicationSource::DrainLocked() {
  while (!pending_.empty()) {
    auto it = pending_.begin();
    const uint64_t generation = it->first;
    if (generation <= head_generation_) {
      pending_.erase(it);
      continue;
    }
    // Claimed generations are contiguous (a failed copy never claims one),
    // so anything beyond head+1 is just an earlier cutter that has not
    // reported yet — unless it is a base, which rebases from any state.
    if (generation != head_generation_ + 1 && it->second.is_delta) break;
    PendingEntry entry = std::move(it->second);
    pending_.erase(it);

    // Fold into the head store so a base for late joiners is always one
    // SaveState away.
    io::Reader reader(entry.payload.get());
    Status status = entry.is_delta ? head_->LoadDelta(&reader)
                                   : head_->LoadState(&reader);
    if (status.ok() && reader.remaining() != 0) {
      status = Status::Internal(
          "replication payload not fully consumed by the head store");
    }
    if (!status.ok()) {
      // The head diverged from the trainer: stop streaming rather than
      // ship frames a resync could not repair. stats() exposes the cause.
      head_status_ = status;
      return;
    }
    head_generation_ = generation;
    head_step_ = entry.train_step;
    head_aux_ = entry.aux;
    ++generations_published_;
    obs_head_generation_->Set(static_cast<double>(head_generation_));

    Frame frame;
    frame.kind = entry.is_delta ? FrameKind::kDelta : FrameKind::kBase;
    frame.generation = generation;
    frame.train_step = entry.train_step;
    frame.payload = *entry.payload;
    const std::string data_bytes = EncodeFrame(frame);
    std::string aux_bytes;
    if (!entry.aux.empty()) {
      Frame aux_frame;
      aux_frame.kind = FrameKind::kAux;
      aux_frame.generation = generation;
      aux_frame.train_step = entry.train_step;
      aux_frame.payload = entry.aux;
      aux_bytes = EncodeFrame(aux_frame);
    }
    cumulative_bytes_ += data_bytes.size() + aux_bytes.size();
    bytes_at_[generation] = cumulative_bytes_;
    while (bytes_at_.size() > 1024) bytes_at_.erase(bytes_at_.begin());

    for (auto& link : links_) {
      if (!link->alive || !link->caught_up) continue;
      if (!aux_bytes.empty()) WriteToLinkLocked(link.get(), aux_bytes);
      if (link->alive) WriteToLinkLocked(link.get(), data_bytes);
      UpdateLagLocked(link.get());
    }
  }

  // A hello that arrived before the first cut is served as soon as a head
  // exists.
  if (head_generation_ >= 1) {
    for (auto& link : links_) {
      if (link->alive && link->hello_pending) SendBaseLocked(link.get());
    }
  }
}

void ReplicationSource::SendBaseLocked(Link* link) {
  link->hello_pending = false;
  if (head_generation_ < 1) {
    // Nothing published yet: remember the request instead.
    link->hello_pending = true;
    return;
  }
  io::Writer writer;
  const Status status = head_->SaveState(&writer);
  if (!status.ok()) {
    head_status_ = status;
    return;
  }
  if (!head_aux_.empty()) {
    Frame aux_frame;
    aux_frame.kind = FrameKind::kAux;
    aux_frame.generation = head_generation_;
    aux_frame.train_step = head_step_;
    aux_frame.payload = head_aux_;
    WriteToLinkLocked(link, EncodeFrame(aux_frame));
  }
  Frame base;
  base.kind = FrameKind::kBase;
  base.generation = head_generation_;
  base.train_step = head_step_;
  base.payload = writer.Release();
  if (link->alive) WriteToLinkLocked(link, EncodeFrame(base));
  if (link->alive) {
    link->caught_up = true;
    ++link->base_resyncs;
    ++base_resyncs_;
    obs_resyncs_->Add(1);
    UpdateLagLocked(link);
  }
}

void ReplicationSource::WriteToLinkLocked(Link* link,
                                          const std::string& bytes) {
  const Status status = link->channel->Write(bytes.data(), bytes.size());
  if (!status.ok()) {
    link->alive = false;
    return;
  }
  link->bytes_sent += bytes.size();
  ++frames_sent_;
  bytes_sent_ += bytes.size();
  obs_frames_->Add(1);
  obs_bytes_->Add(bytes.size());
}

void ReplicationSource::UpdateLagLocked(Link* link) {
  const uint64_t acked = link->acked_generation;
  const uint64_t lag_gen =
      head_generation_ > acked ? head_generation_ - acked : 0;
  uint64_t lag_bytes = 0;
  const auto it = bytes_at_.find(acked);
  if (it != bytes_at_.end()) {
    lag_bytes = cumulative_bytes_ - it->second;
  } else if (acked < head_generation_) {
    // Ack older than the tracked window (or 0): everything is behind.
    lag_bytes = cumulative_bytes_;
  }
  link->lag_generations->Set(static_cast<double>(lag_gen));
  link->lag_bytes->Set(static_cast<double>(lag_bytes));
}

void ReplicationSource::ReaderLoop(Link* link) {
  FrameParser parser;
  char buf[4096];
  while (true) {
    auto n = link->channel->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    parser.Feed(buf, *n);
    Frame frame;
    while (true) {
      const FrameParser::Result result = parser.Next(&frame);
      if (result == FrameParser::Result::kNeedMore) break;
      if (result == FrameParser::Result::kCorrupt) continue;
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      switch (frame.kind) {
        case FrameKind::kHello:
        case FrameKind::kResync:
          link->caught_up = false;
          SendBaseLocked(link);
          break;
        case FrameKind::kAck:
          link->acked_generation =
              std::max(link->acked_generation, frame.generation);
          UpdateLagLocked(link);
          break;
        default:
          break;  // data frames never flow replica -> source
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  link->alive = false;
}

ReplicationSource::Stats ReplicationSource::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.head_generation = head_generation_;
  stats.generations_published = generations_published_;
  stats.frames_sent = frames_sent_;
  stats.bytes_sent = bytes_sent_;
  stats.base_resyncs = base_resyncs_;
  stats.head_status = head_status_;
  stats.replicas.reserve(links_.size());
  for (const auto& link : links_) {
    ReplicaStats replica;
    replica.alive = link->alive;
    replica.acked_generation = link->acked_generation;
    replica.lag_generations = head_generation_ > link->acked_generation
                                  ? head_generation_ - link->acked_generation
                                  : 0;
    const auto it = bytes_at_.find(link->acked_generation);
    replica.lag_bytes = it != bytes_at_.end()
                            ? cumulative_bytes_ - it->second
                            : (link->acked_generation < head_generation_
                                   ? cumulative_bytes_
                                   : 0);
    replica.base_resyncs = link->base_resyncs;
    replica.bytes_sent = link->bytes_sent;
    stats.replicas.push_back(replica);
  }
  return stats;
}

uint64_t ReplicationSource::head_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_generation_;
}

void ReplicationSource::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& link : links_) {
      link->channel->Close();
    }
  }
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.join();
  }
}

}  // namespace replicate
}  // namespace cafe
