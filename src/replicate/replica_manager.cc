#include "replicate/replica_manager.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "io/serialize.h"
#include "serve/frozen_store.h"

namespace cafe {
namespace replicate {

ReplicaManager::ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                               std::unique_ptr<ByteChannel> channel)
    : ReplicaManager(std::move(factory), std::move(channel), Options()) {}

ReplicaManager::ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                               std::unique_ptr<ByteChannel> channel,
                               const Options& options)
    : factory_(std::move(factory)),
      channel_(std::move(channel)),
      options_(options),
      leases_(std::make_shared<LeaseState>()) {
  CAFE_CHECK(factory_ != nullptr) << "replica manager needs a store factory";
  CAFE_CHECK(channel_ != nullptr) << "replica manager needs a channel";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "replicate." + options_.name;
  obs_generation_ = registry.GetGauge(prefix + ".generation");
  obs_corrupt_ = registry.GetCounter(prefix + ".corrupt_frames_total");
  obs_gaps_ = registry.GetCounter(prefix + ".gap_frames_total");
  obs_resyncs_ = registry.GetCounter(prefix + ".resyncs_total");
  obs_bytes_applied_ = registry.GetCounter(prefix + ".bytes_applied_total");
}

ReplicaManager::~ReplicaManager() { Shutdown(); }

Status ReplicaManager::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("replica manager already started");
    }
    if (shutdown_) {
      return Status::FailedPrecondition("replica manager is shut down");
    }
    started_ = true;
  }
  // Announce BEFORE the apply thread exists; after this, the apply thread
  // is the channel's only writer.
  SendControl(FrameKind::kHello, 0);
  apply_thread_ = std::thread([this] { ApplyLoop(); });
  return Status::OK();
}

void ReplicaManager::SendControl(FrameKind kind, uint64_t generation) {
  Frame frame;
  frame.kind = kind;
  frame.generation = generation;
  // A write failure means the link died; the reader sees EOF and the loop
  // exits — nothing useful to do with the status here.
  const std::string bytes = EncodeFrame(frame);
  (void)channel_->Write(bytes.data(), bytes.size());
}

void ReplicaManager::EnterResync(const char* why) {
  (void)why;
  if (awaiting_base_) return;  // poison once, resync once
  awaiting_base_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.resyncs_requested;
  }
  obs_resyncs_->Add(1);
  SendControl(FrameKind::kResync, current_generation_);
}

void ReplicaManager::ApplyLoop() {
  FrameParser parser;
  char buf[4096];
  Status fatal;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) break;
    }
    auto n = channel_->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    parser.Feed(buf, *n);
    Frame frame;
    bool done = false;
    while (!done) {
      const FrameParser::Result result = parser.Next(&frame);
      if (result == FrameParser::Result::kNeedMore) break;
      if (result == FrameParser::Result::kCorrupt) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_frames;
        }
        obs_corrupt_->Add(1);
        EnterResync("corrupt or truncated frame");
        continue;
      }
      fatal = HandleFrame(std::move(frame));
      if (!fatal.ok()) done = true;
    }
    if (!fatal.ok()) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!fatal.ok() && stats_.fatal.ok()) stats_.fatal = fatal;
  stream_done_ = true;
  cv_.notify_all();
}

Status ReplicaManager::HandleFrame(Frame frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_received;
  }
  switch (frame.kind) {
    case FrameKind::kAux: {
      AuxState aux;
      const Status status = DecodeAux(frame.payload, &aux);
      if (!status.ok()) {
        // Fingerprint-valid but undecodable: treat like wire damage.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corrupt_frames;
        obs_corrupt_->Add(1);
        return Status::OK();
      }
      aux_ = std::move(aux);
      aux_generation_ = frame.generation;
      have_aux_ = true;
      return Status::OK();
    }
    case FrameKind::kBase: {
      // A base rebases from ANY state. Accept a base AT the current
      // generation only to clear a poison (the source had nothing newer).
      if (frame.generation < current_generation_ ||
          (frame.generation == current_generation_ && !awaiting_base_)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stale_skipped;
        return Status::OK();
      }
      auto payload =
          std::make_shared<const std::string>(std::move(frame.payload));
      buffers_[0].pending.push_back({frame.generation, false, payload});
      buffers_[1].pending.push_back({frame.generation, false, payload});
      CAFE_RETURN_IF_ERROR(PublishGeneration(frame.generation, frame.train_step,
                                             &Stats::bases_applied));
      awaiting_base_ = false;
      SendControl(FrameKind::kAck, frame.generation);
      return Status::OK();
    }
    case FrameKind::kDelta: {
      if (awaiting_base_) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.poisoned_skipped;
        return Status::OK();
      }
      if (frame.generation <= current_generation_) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stale_skipped;
        return Status::OK();
      }
      if (frame.generation != current_generation_ + 1) {
        // A frame upstream never arrived: the delta chain is broken and
        // only a rebase can repair it.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.gap_frames;
        }
        obs_gaps_->Add(1);
        EnterResync("generation gap (dropped frame)");
        return Status::OK();
      }
      auto payload =
          std::make_shared<const std::string>(std::move(frame.payload));
      buffers_[0].pending.push_back({frame.generation, true, payload});
      buffers_[1].pending.push_back({frame.generation, true, payload});
      CAFE_RETURN_IF_ERROR(PublishGeneration(frame.generation, frame.train_step,
                                             &Stats::deltas_applied));
      SendControl(FrameKind::kAck, frame.generation);
      return Status::OK();
    }
    default:
      return Status::OK();  // control frames never flow source -> replica
  }
}

Status ReplicaManager::ReclaimOrRetire(size_t slot, uint64_t generation) {
  bool retired = false;
  {
    std::unique_lock<std::mutex> lock(leases_->mu);
    if (leases_->leased[slot]) {
      const auto wait = std::chrono::microseconds(options_.reclaim_wait_us);
      if (!leases_->cv.wait_for(lock, wait,
                                [&] { return !leases_->leased[slot]; })) {
        leases_->leased[slot] = false;
        ++leases_->epoch[slot];
        retired = true;
      }
    }
  }
  if (!retired) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.retired_buffers;
  }

  BufferSlot& target = buffers_[slot];
  BufferSlot& other = buffers_[slot ^ 1];
  target.store.reset();  // the holder's FrozenStore keeps the old buffer

  // If the queue holds a base, a factory-fresh store suffices — the base
  // LoadState rebuilds from nothing. Entries BEFORE the last base must be
  // dropped: a delta replayed into an untrained store is not merely wrong,
  // its decay-replay guards reject it.
  size_t last_base = target.pending.size();
  for (size_t i = 0; i < target.pending.size(); ++i) {
    if (!target.pending[i].is_delta) last_base = i;
  }
  if (last_base < target.pending.size()) {
    target.pending.erase(target.pending.begin(),
                         target.pending.begin() + last_base);
    auto fresh = factory_();
    if (!fresh.ok()) return fresh.status();
    if (*fresh == nullptr) {
      return Status::InvalidArgument("replica store factory returned null");
    }
    target.store = std::move(fresh).value();
    target.state_gen = 0;
    return Status::OK();
  }

  // Delta-only queue: clone the serving buffer (it is exactly one
  // generation behind — deltas are accepted contiguously).
  if (other.store == nullptr || other.state_gen + 1 != generation) {
    return Status::Internal(
        "replica retire: serving buffer is not at the preceding generation");
  }
  auto fresh = factory_();
  if (!fresh.ok()) return fresh.status();
  if (*fresh == nullptr) {
    return Status::InvalidArgument("replica store factory returned null");
  }
  io::Writer writer;
  CAFE_RETURN_IF_ERROR(other.store->SaveState(&writer));
  io::Reader reader(writer.Release());
  CAFE_RETURN_IF_ERROR((*fresh)->LoadState(&reader));
  if (reader.remaining() != 0) {
    return Status::Internal(
        "replica state not fully consumed rebuilding a retired buffer");
  }
  target.store = std::move(fresh).value();
  target.state_gen = other.state_gen;
  while (!target.pending.empty() &&
         target.pending.front().generation <= target.state_gen) {
    target.pending.pop_front();
  }
  return Status::OK();
}

Status ReplicaManager::PublishGeneration(uint64_t generation,
                                         uint64_t train_step,
                                         uint64_t Stats::*applied) {
  // Alternate slots per PUBLISH, not per generation parity: a rebase can
  // jump the generation by any amount, and the target must never be the
  // buffer the current generation is serving from.
  const size_t slot = static_cast<size_t>(publish_seq_++ & 1);
  CAFE_RETURN_IF_ERROR(ReclaimOrRetire(slot, generation));

  BufferSlot& target = buffers_[slot];
  uint64_t applied_bytes = 0;
  while (!target.pending.empty()) {
    PendingPayload entry = std::move(target.pending.front());
    target.pending.pop_front();
    if (entry.generation <= target.state_gen) continue;  // already folded in
    if (target.store == nullptr) {
      auto fresh = factory_();
      if (!fresh.ok()) return fresh.status();
      if (*fresh == nullptr) {
        return Status::InvalidArgument("replica store factory returned null");
      }
      target.store = std::move(fresh).value();
    }
    io::Reader reader(entry.payload.get());
    Status status = entry.is_delta ? target.store->LoadDelta(&reader)
                                   : target.store->LoadState(&reader);
    if (status.ok() && reader.remaining() != 0) {
      status = Status::Internal(
          "replication payload not fully consumed by the replica buffer");
    }
    // A fingerprint-valid frame that fails to APPLY is not wire damage — a
    // resync would replay the same bytes. Configuration mismatch between
    // source and replica factories; stop for good.
    CAFE_RETURN_IF_ERROR(status);
    applied_bytes += entry.payload->size();
    target.state_gen = entry.generation;
  }
  if (target.state_gen != generation) {
    return Status::Internal(
        "replica publish drained to the wrong generation");
  }

  auto snapshot = std::make_shared<ServingSnapshot>();
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> lock(leases_->mu);
    leases_->leased[slot] = true;
    token = ++leases_->epoch[slot];
  }
  std::shared_ptr<LeaseState> lease_state = leases_;
  snapshot->buffer_lease = std::shared_ptr<void>(
      static_cast<void*>(nullptr), [lease_state, slot, token](void*) {
        std::lock_guard<std::mutex> lock(lease_state->mu);
        if (lease_state->epoch[slot] == token) {
          lease_state->leased[slot] = false;
          lease_state->cv.notify_all();
        }
      });
  snapshot->store = FrozenStore::AdoptShared(target.store);
  snapshot->generation = generation;
  snapshot->train_step = train_step;
  if (have_aux_ && aux_generation_ == generation) {
    snapshot->model_name = std::move(aux_.model_name);
    snapshot->dense_params = std::move(aux_.dense_params);
    snapshot->has_optimizer = aux_.has_optimizer;
    snapshot->optimizer_state = std::move(aux_.optimizer_state);
    have_aux_ = false;
  }

  current_generation_ = generation;
  obs_generation_->Set(static_cast<double>(generation));
  obs_bytes_applied_->Add(applied_bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (swappable_ == nullptr) {
      swappable_ = std::make_unique<SwappableStore>(std::move(snapshot));
    } else {
      swappable_->Install(std::move(snapshot));
    }
    stats_.generation = generation;
    stats_.train_step = train_step;
    stats_.bytes_applied += applied_bytes;
    ++(stats_.*applied);
    cv_.notify_all();
  }
  return Status::OK();
}

Status ReplicaManager::WaitForGeneration(uint64_t generation,
                                         uint64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
    return stats_.generation >= generation || stream_done_;
  });
  if (stats_.generation >= generation) return Status::OK();
  if (!stats_.fatal.ok()) return stats_.fatal;
  if (stream_done_) {
    return Status::FailedPrecondition(
        "replication stream ended before generation " +
        std::to_string(generation));
  }
  return Status::ResourceExhausted("replica did not reach generation " +
                                   std::to_string(generation) +
                                   " before the deadline");
}

SwappableStore* ReplicaManager::swappable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swappable_.get();
}

uint64_t ReplicaManager::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.generation;
}

ReplicaManager::Stats ReplicaManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ReplicaManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  channel_->Close();
  if (apply_thread_.joinable()) apply_thread_.join();
}

}  // namespace replicate
}  // namespace cafe
