#include "replicate/replica_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "io/serialize.h"
#include "serve/frozen_store.h"

namespace cafe {
namespace replicate {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplicaManager::ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                               std::unique_ptr<ByteChannel> channel)
    : ReplicaManager(std::move(factory), std::move(channel), Options()) {}

ReplicaManager::ReplicaManager(SnapshotManager::FreshStoreFactory factory,
                               std::unique_ptr<ByteChannel> channel,
                               const Options& options)
    : factory_(std::move(factory)),
      options_(options),
      leases_(std::make_shared<LeaseState>()),
      channel_(std::move(channel)) {
  CAFE_CHECK(factory_ != nullptr) << "replica manager needs a store factory";
  CAFE_CHECK(channel_ != nullptr) << "replica manager needs a channel";
  jitter_state_ = options_.reconnect_seed;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "replicate." + options_.name;
  obs_generation_ = registry.GetGauge(prefix + ".generation");
  obs_corrupt_ = registry.GetCounter(prefix + ".corrupt_frames_total");
  obs_gaps_ = registry.GetCounter(prefix + ".gap_frames_total");
  obs_resyncs_ = registry.GetCounter(prefix + ".resyncs_total");
  obs_bytes_applied_ = registry.GetCounter(prefix + ".bytes_applied_total");
  obs_reconnects_ = registry.GetCounter(prefix + ".reconnects_total");
}

ReplicaManager::~ReplicaManager() { Shutdown(); }

Status ReplicaManager::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return Status::FailedPrecondition("replica manager already started");
    }
    if (shutdown_) {
      return Status::FailedPrecondition("replica manager is shut down");
    }
    started_ = true;
  }
  if (!options_.durable_dir.empty()) {
    durable_ = std::make_unique<DurableReplicaLog>(options_.durable_dir);
    const Status init = durable_->Init();
    if (!init.ok()) {
      durable_.reset();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.durable_persist_failures;
    } else {
      // Serving resumes from the ledger BEFORE the link carries a byte.
      RestoreFromDurable();
    }
  }
  // Announce with the restored generation (0 = cold join, source sends a
  // base; G>0 = rejoin, source ships only the deltas since G). Sent BEFORE
  // the apply thread exists; afterwards all writes serialize on send_mu_.
  SendControl(FrameKind::kHello, awaiting_base_ ? 0 : current_generation_);
  last_recv_us_.store(NowUs(), std::memory_order_relaxed);
  apply_thread_ = std::thread([this] { ApplyLoop(); });
  if (options_.heartbeat_interval_us > 0 || options_.liveness_timeout_us > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
  return Status::OK();
}

void ReplicaManager::SendControl(FrameKind kind, uint64_t generation) {
  Frame frame;
  frame.kind = kind;
  frame.generation = generation;
  // A write failure means the link died; the reader sees EOF and takes the
  // reconnect path — nothing useful to do with the status here.
  const std::string bytes = EncodeFrame(frame);
  std::shared_ptr<ByteChannel> channel;
  {
    std::lock_guard<std::mutex> lock(channel_mu_);
    channel = channel_;
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  (void)channel->Write(bytes.data(), bytes.size());
}

void ReplicaManager::EnterResync(const char* why) {
  (void)why;
  if (awaiting_base_) return;  // poison once, resync once
  awaiting_base_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.resyncs_requested;
  }
  obs_resyncs_->Add(1);
  SendControl(FrameKind::kResync, current_generation_);
}

void ReplicaManager::RestoreFromDurable() {
  auto restored = durable_->Load();
  if (!restored.ok() || restored->generation == 0) return;  // cold start
  for (Frame& frame : restored->frames) {
    if (frame.kind == FrameKind::kAux) {
      AuxState aux;
      if (DecodeAux(frame.payload, &aux).ok()) {
        aux_ = std::move(aux);
        aux_generation_ = frame.generation;
        have_aux_ = true;
      }
      continue;
    }
    auto payload =
        std::make_shared<const std::string>(std::move(frame.payload));
    const bool is_delta = frame.kind == FrameKind::kDelta;
    buffers_[0].pending.push_back({frame.generation, is_delta, payload});
    buffers_[1].pending.push_back({frame.generation, is_delta, payload});
  }
  const Status status = PublishGeneration(
      restored->generation, restored->train_step, &Stats::restores);
  if (!status.ok()) {
    // The ledger does not fit this factory's stores (config changed under
    // us, most likely). Reset everything for a clean cold join — the
    // source's base will overwrite the ledger too.
    for (BufferSlot& slot : buffers_) {
      slot.store.reset();
      slot.pending.clear();
      slot.state_gen = 0;
    }
    publish_seq_ = 0;
    have_aux_ = false;
    current_generation_ = 0;
    return;
  }
  awaiting_base_ = false;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.restored_generation = restored->generation;
}

void ReplicaManager::PersistFrame(const Frame& frame) {
  if (durable_ == nullptr) return;
  Status status;
  switch (frame.kind) {
    case FrameKind::kBase:
      status = durable_->AppendBase(frame);
      break;
    case FrameKind::kDelta:
      status = durable_->AppendDelta(frame);
      break;
    case FrameKind::kAux:
      status = durable_->AppendAux(frame);
      break;
    default:
      return;
  }
  if (!status.ok()) {
    // Replication keeps going; rejoin just degrades to whatever chain
    // survived (worst case a full base from the source).
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.durable_persist_failures;
  }
}

void ReplicaManager::MaybeCompactDurable(uint64_t generation,
                                         uint64_t train_step) {
  if (durable_ == nullptr ||
      durable_->delta_count() < options_.durable_compact_after_deltas) {
    return;
  }
  // Fold the delta tail into one base from the buffer just published (the
  // apply thread owns its mutations; concurrent serving reads are fine).
  BufferSlot& serving = buffers_[(publish_seq_ - 1) & 1];
  if (serving.store == nullptr || serving.state_gen != generation) return;
  io::Writer writer;
  Frame base;
  base.kind = FrameKind::kBase;
  base.generation = generation;
  base.train_step = train_step;
  Status status = serving.store->SaveState(&writer);
  if (status.ok()) {
    base.payload = writer.Release();
    status = durable_->AppendBase(base);
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.durable_persist_failures;
  }
}

void ReplicaManager::ApplyLoop() {
  Status fatal;
  while (true) {
    fatal = DrainStream();
    if (!fatal.ok()) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) break;
    }
    if (!options_.reconnect) break;
    if (!ReconnectWithBackoff()) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!fatal.ok() && stats_.fatal.ok()) stats_.fatal = fatal;
  stream_done_ = true;
  cv_.notify_all();
}

Status ReplicaManager::DrainStream() {
  // The channel only changes between DrainStream invocations (the apply
  // thread itself swaps it in ReconnectWithBackoff), but copy it under the
  // pointer lock so the grab is race-free against stats readers.
  std::shared_ptr<ByteChannel> channel;
  {
    std::lock_guard<std::mutex> lock(channel_mu_);
    channel = channel_;
  }
  FrameParser parser;
  char buf[4096];
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return Status::OK();
    }
    auto n = channel->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) return Status::OK();
    last_recv_us_.store(NowUs(), std::memory_order_relaxed);
    parser.Feed(buf, *n);
    Frame frame;
    while (true) {
      const FrameParser::Result result = parser.Next(&frame);
      if (result == FrameParser::Result::kNeedMore) break;
      if (result == FrameParser::Result::kCorrupt) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_frames;
        }
        obs_corrupt_->Add(1);
        EnterResync("corrupt or truncated frame");
        continue;
      }
      CAFE_RETURN_IF_ERROR(HandleFrame(std::move(frame)));
    }
  }
}

bool ReplicaManager::ReconnectWithBackoff() {
  uint64_t backoff = std::max<uint64_t>(options_.reconnect_backoff_initial_us,
                                        1);
  for (uint32_t attempt = 0; attempt < options_.reconnect_max_attempts;
       ++attempt) {
    {
      // Jittered exponential backoff (backoff * [1, 1.5)): a fleet of
      // replicas dropped by the same source failure must not redial in
      // lockstep. Interruptible by Shutdown.
      jitter_state_ = SplitMix64(jitter_state_);
      const uint64_t wait_us = backoff + jitter_state_ % (backoff / 2 + 1);
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::microseconds(wait_us),
                       [&] { return shutdown_; })) {
        return false;
      }
    }
    auto dial = options_.reconnect();
    if (dial.ok()) {
      {
        std::lock_guard<std::mutex> lock(channel_mu_);
        channel_ = std::move(dial).value();
      }
      // Fresh link, fresh liveness window — a stale stamp here would let
      // the watchdog kill the link we just built.
      last_recv_us_.store(NowUs(), std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.reconnects;
      }
      obs_reconnects_->Add(1);
      // The rejoin handshake: either resume the delta chain where we
      // stopped, or ask for a base if we are poisoned/cold.
      SendControl(FrameKind::kHello,
                  awaiting_base_ ? 0 : current_generation_);
      return true;
    }
    const StatusCode code = dial.status().code();
    if (code != StatusCode::kUnavailable &&
        code != StatusCode::kDeadlineExceeded) {
      return false;  // not a retriable dial failure
    }
    backoff = std::min(backoff * 2, options_.reconnect_backoff_max_us);
  }
  return false;
}

void ReplicaManager::WatchdogLoop() {
  uint64_t interval_us = options_.heartbeat_interval_us;
  if (options_.liveness_timeout_us > 0) {
    const uint64_t check_us =
        std::max<uint64_t>(options_.liveness_timeout_us / 2, 1000);
    interval_us = interval_us > 0 ? std::min(interval_us, check_us) : check_us;
  }
  if (interval_us == 0) return;
  while (true) {
    uint64_t generation = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::microseconds(interval_us),
                       [&] { return shutdown_; })) {
        return;
      }
      generation = stats_.generation;
    }
    if (options_.heartbeat_interval_us > 0) {
      SendControl(FrameKind::kHeartbeat, generation);
    }
    if (options_.liveness_timeout_us > 0) {
      const uint64_t now = NowUs();
      const uint64_t last = last_recv_us_.load(std::memory_order_relaxed);
      if (now > last && now - last > options_.liveness_timeout_us) {
        // A dead source and a half-open link look identical: silence.
        // Sever the link; the apply thread's Read unblocks and takes the
        // reconnect path. Close without send_mu_ — a heartbeat Write
        // blocked on the dead link is exactly what Close must unblock.
        // Reset the stamp so we do not re-sever the replacement link
        // before it produces a byte.
        std::shared_ptr<ByteChannel> channel;
        {
          std::lock_guard<std::mutex> lock(channel_mu_);
          channel = channel_;
        }
        channel->Close();
        last_recv_us_.store(now, std::memory_order_relaxed);
      }
    }
  }
}

Status ReplicaManager::HandleFrame(Frame frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_received;
  }
  switch (frame.kind) {
    case FrameKind::kAux: {
      AuxState aux;
      const Status status = DecodeAux(frame.payload, &aux);
      if (!status.ok()) {
        // Fingerprint-valid but undecodable: treat like wire damage.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corrupt_frames;
        obs_corrupt_->Add(1);
        return Status::OK();
      }
      PersistFrame(frame);
      aux_ = std::move(aux);
      aux_generation_ = frame.generation;
      have_aux_ = true;
      return Status::OK();
    }
    case FrameKind::kBase: {
      // A base rebases from ANY state. Accept a base AT the current
      // generation only to clear a poison (the source had nothing newer).
      if (frame.generation < current_generation_ ||
          (frame.generation == current_generation_ && !awaiting_base_)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stale_skipped;
        return Status::OK();
      }
      PersistFrame(frame);
      auto payload =
          std::make_shared<const std::string>(std::move(frame.payload));
      buffers_[0].pending.push_back({frame.generation, false, payload});
      buffers_[1].pending.push_back({frame.generation, false, payload});
      CAFE_RETURN_IF_ERROR(PublishGeneration(frame.generation, frame.train_step,
                                             &Stats::bases_applied));
      awaiting_base_ = false;
      SendControl(FrameKind::kAck, frame.generation);
      return Status::OK();
    }
    case FrameKind::kDelta: {
      if (awaiting_base_) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.poisoned_skipped;
        return Status::OK();
      }
      if (frame.generation <= current_generation_) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stale_skipped;
        return Status::OK();
      }
      if (frame.generation != current_generation_ + 1) {
        // A frame upstream never arrived: the delta chain is broken and
        // only a rebase can repair it.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.gap_frames;
        }
        obs_gaps_->Add(1);
        EnterResync("generation gap (dropped frame)");
        return Status::OK();
      }
      PersistFrame(frame);
      const uint64_t train_step = frame.train_step;
      auto payload =
          std::make_shared<const std::string>(std::move(frame.payload));
      buffers_[0].pending.push_back({frame.generation, true, payload});
      buffers_[1].pending.push_back({frame.generation, true, payload});
      CAFE_RETURN_IF_ERROR(PublishGeneration(frame.generation, train_step,
                                             &Stats::deltas_applied));
      SendControl(FrameKind::kAck, frame.generation);
      MaybeCompactDurable(frame.generation, train_step);
      return Status::OK();
    }
    case FrameKind::kHeartbeat: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.heartbeats_received;
      return Status::OK();
    }
    default:
      return Status::OK();  // control frames never flow source -> replica
  }
}

Status ReplicaManager::ReclaimOrRetire(size_t slot, uint64_t generation) {
  bool retired = false;
  {
    std::unique_lock<std::mutex> lock(leases_->mu);
    if (leases_->leased[slot]) {
      const auto wait = std::chrono::microseconds(options_.reclaim_wait_us);
      if (!leases_->cv.wait_for(lock, wait,
                                [&] { return !leases_->leased[slot]; })) {
        leases_->leased[slot] = false;
        ++leases_->epoch[slot];
        retired = true;
      }
    }
  }
  if (!retired) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.retired_buffers;
  }

  BufferSlot& target = buffers_[slot];
  BufferSlot& other = buffers_[slot ^ 1];
  target.store.reset();  // the holder's FrozenStore keeps the old buffer

  // If the queue holds a base, a factory-fresh store suffices — the base
  // LoadState rebuilds from nothing. Entries BEFORE the last base must be
  // dropped: a delta replayed into an untrained store is not merely wrong,
  // its decay-replay guards reject it.
  size_t last_base = target.pending.size();
  for (size_t i = 0; i < target.pending.size(); ++i) {
    if (!target.pending[i].is_delta) last_base = i;
  }
  if (last_base < target.pending.size()) {
    target.pending.erase(target.pending.begin(),
                         target.pending.begin() + last_base);
    auto fresh = factory_();
    if (!fresh.ok()) return fresh.status();
    if (*fresh == nullptr) {
      return Status::InvalidArgument("replica store factory returned null");
    }
    target.store = std::move(fresh).value();
    target.state_gen = 0;
    return Status::OK();
  }

  // Delta-only queue: clone the serving buffer (it is exactly one
  // generation behind — deltas are accepted contiguously).
  if (other.store == nullptr || other.state_gen + 1 != generation) {
    return Status::Internal(
        "replica retire: serving buffer is not at the preceding generation");
  }
  auto fresh = factory_();
  if (!fresh.ok()) return fresh.status();
  if (*fresh == nullptr) {
    return Status::InvalidArgument("replica store factory returned null");
  }
  io::Writer writer;
  CAFE_RETURN_IF_ERROR(other.store->SaveState(&writer));
  io::Reader reader(writer.Release());
  CAFE_RETURN_IF_ERROR((*fresh)->LoadState(&reader));
  if (reader.remaining() != 0) {
    return Status::Internal(
        "replica state not fully consumed rebuilding a retired buffer");
  }
  target.store = std::move(fresh).value();
  target.state_gen = other.state_gen;
  while (!target.pending.empty() &&
         target.pending.front().generation <= target.state_gen) {
    target.pending.pop_front();
  }
  return Status::OK();
}

Status ReplicaManager::PublishGeneration(uint64_t generation,
                                         uint64_t train_step,
                                         uint64_t Stats::*applied) {
  // Alternate slots per PUBLISH, not per generation parity: a rebase can
  // jump the generation by any amount, and the target must never be the
  // buffer the current generation is serving from.
  const size_t slot = static_cast<size_t>(publish_seq_++ & 1);
  CAFE_RETURN_IF_ERROR(ReclaimOrRetire(slot, generation));

  BufferSlot& target = buffers_[slot];
  uint64_t applied_bytes = 0;
  while (!target.pending.empty()) {
    PendingPayload entry = std::move(target.pending.front());
    target.pending.pop_front();
    if (entry.generation <= target.state_gen) continue;  // already folded in
    if (target.store == nullptr) {
      auto fresh = factory_();
      if (!fresh.ok()) return fresh.status();
      if (*fresh == nullptr) {
        return Status::InvalidArgument("replica store factory returned null");
      }
      target.store = std::move(fresh).value();
    }
    io::Reader reader(entry.payload.get());
    Status status = entry.is_delta ? target.store->LoadDelta(&reader)
                                   : target.store->LoadState(&reader);
    if (status.ok() && reader.remaining() != 0) {
      status = Status::Internal(
          "replication payload not fully consumed by the replica buffer");
    }
    // A fingerprint-valid frame that fails to APPLY is not wire damage — a
    // resync would replay the same bytes. Configuration mismatch between
    // source and replica factories; stop for good.
    CAFE_RETURN_IF_ERROR(status);
    applied_bytes += entry.payload->size();
    target.state_gen = entry.generation;
  }
  if (target.state_gen != generation) {
    return Status::Internal(
        "replica publish drained to the wrong generation");
  }

  auto snapshot = std::make_shared<ServingSnapshot>();
  uint64_t token = 0;
  {
    std::lock_guard<std::mutex> lock(leases_->mu);
    leases_->leased[slot] = true;
    token = ++leases_->epoch[slot];
  }
  std::shared_ptr<LeaseState> lease_state = leases_;
  snapshot->buffer_lease = std::shared_ptr<void>(
      static_cast<void*>(nullptr), [lease_state, slot, token](void*) {
        std::lock_guard<std::mutex> lock(lease_state->mu);
        if (lease_state->epoch[slot] == token) {
          lease_state->leased[slot] = false;
          lease_state->cv.notify_all();
        }
      });
  snapshot->store = FrozenStore::AdoptShared(target.store);
  snapshot->generation = generation;
  snapshot->train_step = train_step;
  if (have_aux_ && aux_generation_ == generation) {
    snapshot->model_name = std::move(aux_.model_name);
    snapshot->dense_params = std::move(aux_.dense_params);
    snapshot->has_optimizer = aux_.has_optimizer;
    snapshot->optimizer_state = std::move(aux_.optimizer_state);
    have_aux_ = false;
  }

  current_generation_ = generation;
  obs_generation_->Set(static_cast<double>(generation));
  obs_bytes_applied_->Add(applied_bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (swappable_ == nullptr) {
      swappable_ = std::make_unique<SwappableStore>(std::move(snapshot));
    } else {
      swappable_->Install(std::move(snapshot));
    }
    stats_.generation = generation;
    stats_.train_step = train_step;
    stats_.bytes_applied += applied_bytes;
    ++(stats_.*applied);
    cv_.notify_all();
  }
  return Status::OK();
}

Status ReplicaManager::WaitForGeneration(uint64_t generation,
                                         uint64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
    return stats_.generation >= generation || stream_done_;
  });
  if (stats_.generation >= generation) return Status::OK();
  if (!stats_.fatal.ok()) return stats_.fatal;
  if (stream_done_) {
    return Status::FailedPrecondition(
        "replication stream ended before generation " +
        std::to_string(generation));
  }
  return Status::DeadlineExceeded("replica did not reach generation " +
                                  std::to_string(generation) +
                                  " before the deadline");
}

SwappableStore* ReplicaManager::swappable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swappable_.get();
}

uint64_t ReplicaManager::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.generation;
}

ReplicaManager::Stats ReplicaManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ReplicaManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    cv_.notify_all();  // unblock a backoff wait / the watchdog tick
  }
  {
    // Close WITHOUT send_mu_: a Write blocked on backpressure holds it,
    // and this Close is what unblocks that Write.
    std::shared_ptr<ByteChannel> channel;
    {
      std::lock_guard<std::mutex> lock(channel_mu_);
      channel = channel_;
    }
    channel->Close();
  }
  if (apply_thread_.joinable()) apply_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
}

}  // namespace replicate
}  // namespace cafe
