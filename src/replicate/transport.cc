#include "replicate/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

namespace cafe {
namespace replicate {
namespace {

/// One direction of a pipe. `capacity == 0` means unbounded (writes never
/// block); otherwise Append waits for the reader to drain space, which is
/// the backpressure the flow-control tests lean on. Both endpoints hold the
/// lane via shared_ptr so either side may be destroyed first.
struct PipeLane {
  explicit PipeLane(size_t capacity_bytes) : capacity(capacity_bytes) {}

  const size_t capacity;
  std::mutex mu;
  std::condition_variable cv;
  std::string data;
  bool closed = false;

  /// Blocks until the bytes fit (an oversized write goes through alone once
  /// the lane drains empty) or the lane closes. Returns false iff closed.
  /// `force` skips the capacity wait — used by Close's held-frame flush,
  /// which must never block.
  bool Append(const void* bytes, size_t size, bool force = false) {
    std::unique_lock<std::mutex> lock(mu);
    if (!force && capacity != 0) {
      cv.wait(lock, [&] {
        return closed || data.size() + size <= capacity ||
               (data.empty() && size > capacity);
      });
    }
    if (closed) return false;
    data.append(static_cast<const char*>(bytes), size);
    cv.notify_all();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
};

class PipeChannel : public ByteChannel {
 public:
  PipeChannel(std::shared_ptr<PipeLane> out, std::shared_ptr<PipeLane> in,
              FaultPlan faults)
      : out_(std::move(out)), in_(std::move(in)) {
    for (const FaultPlan::Rule& rule : faults.rules) {
      faults_[rule.frame_index] = rule;
    }
  }

  ~PipeChannel() override { Close(); }

  Status Write(const void* data, size_t size) override {
    // Decide what to emit under write_mu_, emit after releasing it: a
    // bounded lane's Append blocks for capacity, and holding write_mu_
    // through that wait would deadlock Close() (which takes write_mu_ to
    // flush a reorder-held frame before closing the lane).
    const char* direct = nullptr;  // emit caller bytes without copying
    size_t direct_size = 0;
    std::string owned;       // fault-modified bytes (emitted when !direct)
    bool emit = true;        // false: kDrop / kReorder swallow the frame
    std::string flush_held;  // previously held frame, emitted after
    bool has_flush = false;
    uint64_t delay_us = 0;
    {
      std::lock_guard<std::mutex> write_lock(write_mu_);
      const uint64_t index = next_write_index_++;
      const auto it = faults_.find(index);
      if (it == faults_.end()) {
        direct = static_cast<const char*>(data);
        direct_size = size;
      } else {
        const FaultPlan::Rule& rule = it->second;
        switch (rule.action) {
          case FaultPlan::Action::kDrop:
            emit = false;  // the frame never happened; a held frame stays
            break;
          case FaultPlan::Action::kTruncate: {
            size_t keep =
                rule.arg != 0 ? static_cast<size_t>(rule.arg) : size / 2;
            keep = std::min(keep, size > 0 ? size - 1 : 0);
            owned.assign(static_cast<const char*>(data), keep);
            break;
          }
          case FaultPlan::Action::kCorrupt:
            owned.assign(static_cast<const char*>(data), size);
            if (!owned.empty()) {
              owned[static_cast<size_t>(rule.arg) % owned.size()] ^=
                  static_cast<char>(0xff);
            }
            break;
          case FaultPlan::Action::kReorder:
            held_.assign(static_cast<const char*>(data), size);
            has_held_ = true;
            emit = false;
            break;
          case FaultPlan::Action::kDelay:
            delay_us = rule.arg;
            direct = static_cast<const char*>(data);
            direct_size = size;
            break;
        }
      }
      if (emit && has_held_) {
        // The emitted frame lands first, then the held one — the swap a
        // kReorder rule asked for.
        flush_held = std::move(held_);
        has_held_ = false;
        has_flush = true;
      }
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    if (emit) {
      const bool ok = direct != nullptr
                          ? out_->Append(direct, direct_size)
                          : out_->Append(owned.data(), owned.size());
      if (!ok) return Status::Unavailable("pipe closed");
    }
    if (has_flush && !out_->Append(flush_held.data(), flush_held.size())) {
      return Status::Unavailable("pipe closed");
    }
    return Status::OK();
  }

  StatusOr<size_t> Read(void* out, size_t max) override {
    if (max == 0) return size_t{0};
    std::unique_lock<std::mutex> lock(in_->mu);
    in_->cv.wait(lock, [&] { return !in_->data.empty() || in_->closed; });
    if (in_->data.empty()) return size_t{0};  // closed and drained
    const size_t n = std::min(max, in_->data.size());
    std::memcpy(out, in_->data.data(), n);
    in_->data.erase(0, n);
    in_->cv.notify_all();  // a bounded lane's writer may be capacity-blocked
    return n;
  }

  void Close() override {
    // Flush a reorder-held frame rather than silently losing it: the fault
    // asked for a swap, and no later frame arrived to swap with. Forced
    // append — Close must not block on a full bounded lane.
    std::string flush;
    bool has_flush = false;
    {
      std::lock_guard<std::mutex> write_lock(write_mu_);
      if (has_held_) {
        flush = std::move(held_);
        has_held_ = false;
        has_flush = true;
      }
    }
    if (has_flush) out_->Append(flush.data(), flush.size(), /*force=*/true);
    out_->Close();
    in_->Close();
  }

 private:
  std::shared_ptr<PipeLane> out_;
  std::shared_ptr<PipeLane> in_;
  std::unordered_map<uint64_t, FaultPlan::Rule> faults_;
  /// Serializes writers against each other and against Close's held-frame
  /// flush (guards next_write_index_ / held_ / has_held_). Never held
  /// across a lane Append.
  std::mutex write_mu_;
  uint64_t next_write_index_ = 0;
  std::string held_;
  bool has_held_ = false;
};

class TcpChannel : public ByteChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel() override {
    Close();
    // The fd is released only here: the owner destroys the channel after
    // joining every thread that touches it, whereas Close() may run while
    // another thread is still blocked in recv on this fd — closing there
    // would race the kernel fd table (and could hand a recycled fd to the
    // reader).
    ::close(fd_);
  }

  Status Write(const void* data, size_t size) override {
    const char* p = static_cast<const char*>(data);
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(std::string("tcp send failed: ") +
                                   std::strerror(errno));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  StatusOr<size_t> Read(void* out, size_t max) override {
    while (true) {
      const ssize_t n = ::recv(fd_, out, max, 0);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      if (closed_.load(std::memory_order_acquire)) return size_t{0};
      return Status::Unavailable(std::string("tcp recv failed: ") +
                                 std::strerror(errno));
    }
  }

  void Close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    ::shutdown(fd_, SHUT_RDWR);  // unblocks a peer (or own) blocked recv
  }

 private:
  int fd_;
  std::atomic<bool> closed_{false};
};

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TransportPair MakePipeTransport(FaultPlan source_faults,
                                size_t capacity_bytes) {
  // source -> replica
  auto forward = std::make_shared<PipeLane>(capacity_bytes);
  // replica -> source: control frames are tiny; keep it unbounded so a
  // capacity meant for data frames can't deadlock ack/hello traffic.
  auto backward = std::make_shared<PipeLane>(0);
  TransportPair pair;
  pair.source = std::make_unique<PipeChannel>(forward, backward,
                                              std::move(source_faults));
  pair.replica = std::make_unique<PipeChannel>(backward, forward, FaultPlan{});
  return pair;
}

TcpListener::~TcpListener() {
  Close();
  ::close(fd_);
}

StatusOr<std::unique_ptr<TcpListener>> TcpListener::Bind(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("tcp listener: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    ::close(fd);
    return Status::Unavailable("tcp listener: bind/listen failed on port " +
                               std::to_string(port));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(fd);
    return Status::Internal("tcp listener: getsockname failed");
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

StatusOr<std::unique_ptr<ByteChannel>> TcpListener::Accept(
    uint64_t timeout_us) {
  // Poll in short slices so a concurrent Close() is noticed promptly even
  // on platforms where shutdown() on a listening socket doesn't wake poll.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("tcp listener closed");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded("tcp accept timed out after " +
                                      std::to_string(timeout_us) + "us");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int slice_ms =
        static_cast<int>(std::min<int64_t>(remaining.count() + 1, 50));
    const int ready = ::poll(&pfd, 1, slice_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("tcp accept poll failed: ") +
                              std::strerror(errno));
    }
    if (ready == 0) continue;
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (closed_.load(std::memory_order_acquire)) {
        return Status::Unavailable("tcp listener closed");
      }
      return Status::Unavailable(std::string("tcp accept failed: ") +
                                 std::strerror(errno));
    }
    SetNoDelay(conn);
    return std::unique_ptr<ByteChannel>(new TcpChannel(conn));
  }
}

void TcpListener::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<std::unique_ptr<ByteChannel>> TcpConnect(uint16_t port,
                                                  uint64_t timeout_us) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("tcp connect: socket() failed");
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    return Status::Unavailable(std::string("tcp connect failed: ") +
                               std::strerror(saved));
  }
  struct pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  const int timeout_ms = static_cast<int>(
      std::min<uint64_t>(timeout_us / 1000 + 1, 1u << 30));
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready <= 0) {
    ::close(fd);
    return Status::DeadlineExceeded("tcp connect timed out after " +
                                    std::to_string(timeout_us) + "us");
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 || err != 0) {
    ::close(fd);
    return Status::Unavailable(std::string("tcp connect failed: ") +
                               std::strerror(err != 0 ? err : errno));
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the channel
  SetNoDelay(fd);
  return std::unique_ptr<ByteChannel>(new TcpChannel(fd));
}

StatusOr<TransportPair> MakeTcpTransport() {
  auto listener_or = TcpListener::Bind(0);
  if (!listener_or.ok()) return listener_or.status();
  std::unique_ptr<TcpListener> listener = std::move(listener_or).value();

  // Loopback connect completes against the listen backlog without a
  // concurrent accept, so this stays single-threaded.
  auto client_or = TcpConnect(listener->port(), /*timeout_us=*/2'000'000);
  if (!client_or.ok()) return client_or.status();
  auto server_or = listener->Accept(/*timeout_us=*/2'000'000);
  if (!server_or.ok()) return server_or.status();

  TransportPair pair;
  pair.source = std::move(server_or).value();
  pair.replica = std::move(client_or).value();
  return pair;
}

}  // namespace replicate
}  // namespace cafe
