#include "replicate/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

namespace cafe {
namespace replicate {
namespace {

/// One direction of a pipe: an unbounded byte queue. Both endpoints hold
/// it via shared_ptr so either side may be destroyed first.
struct PipeLane {
  std::mutex mu;
  std::condition_variable cv;
  std::string data;
  bool closed = false;

  void Append(const void* bytes, size_t size) {
    std::lock_guard<std::mutex> lock(mu);
    data.append(static_cast<const char*>(bytes), size);
    cv.notify_all();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
};

class PipeChannel : public ByteChannel {
 public:
  PipeChannel(std::shared_ptr<PipeLane> out, std::shared_ptr<PipeLane> in,
              FaultPlan faults)
      : out_(std::move(out)), in_(std::move(in)) {
    for (const FaultPlan::Rule& rule : faults.rules) {
      faults_[rule.frame_index] = rule;
    }
  }

  ~PipeChannel() override { Close(); }

  Status Write(const void* data, size_t size) override {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    const uint64_t index = next_write_index_++;
    {
      std::lock_guard<std::mutex> lock(out_->mu);
      if (out_->closed) return Status::FailedPrecondition("pipe closed");
    }
    const auto it = faults_.find(index);
    if (it == faults_.end()) {
      EmitWithHeld(data, size);
      return Status::OK();
    }
    const FaultPlan::Rule& rule = it->second;
    switch (rule.action) {
      case FaultPlan::Action::kDrop:
        break;  // the frame never happened; a held frame stays held
      case FaultPlan::Action::kTruncate: {
        size_t keep = rule.arg != 0 ? static_cast<size_t>(rule.arg) : size / 2;
        keep = std::min(keep, size > 0 ? size - 1 : 0);
        EmitWithHeld(data, keep);
        break;
      }
      case FaultPlan::Action::kCorrupt: {
        std::string damaged(static_cast<const char*>(data), size);
        if (!damaged.empty()) {
          damaged[static_cast<size_t>(rule.arg) % damaged.size()] ^=
              static_cast<char>(0xff);
        }
        EmitWithHeld(damaged.data(), damaged.size());
        break;
      }
      case FaultPlan::Action::kReorder:
        held_.assign(static_cast<const char*>(data), size);
        has_held_ = true;
        break;
      case FaultPlan::Action::kDelay:
        std::this_thread::sleep_for(std::chrono::microseconds(rule.arg));
        EmitWithHeld(data, size);
        break;
    }
    return Status::OK();
  }

  StatusOr<size_t> Read(void* out, size_t max) override {
    if (max == 0) return size_t{0};
    std::unique_lock<std::mutex> lock(in_->mu);
    in_->cv.wait(lock, [&] { return !in_->data.empty() || in_->closed; });
    if (in_->data.empty()) return size_t{0};  // closed and drained
    const size_t n = std::min(max, in_->data.size());
    std::memcpy(out, in_->data.data(), n);
    in_->data.erase(0, n);
    return n;
  }

  void Close() override {
    {
      // Flush a reorder-held frame rather than silently losing it: the
      // fault asked for a swap, and no later frame arrived to swap with.
      std::lock_guard<std::mutex> write_lock(write_mu_);
      if (has_held_) {
        has_held_ = false;
        out_->Append(held_.data(), held_.size());
      }
    }
    out_->Close();
    in_->Close();
  }

 private:
  /// Emits `size` bytes, then any frame held back by a kReorder rule (so
  /// the held frame lands AFTER its successor — the swap).
  void EmitWithHeld(const void* data, size_t size) {
    out_->Append(data, size);
    if (has_held_) {
      has_held_ = false;
      out_->Append(held_.data(), held_.size());
    }
  }

  std::shared_ptr<PipeLane> out_;
  std::shared_ptr<PipeLane> in_;
  std::unordered_map<uint64_t, FaultPlan::Rule> faults_;
  /// Serializes writers against each other and against Close's held-frame
  /// flush (guards next_write_index_ / held_ / has_held_).
  std::mutex write_mu_;
  uint64_t next_write_index_ = 0;
  std::string held_;
  bool has_held_ = false;
};

class TcpChannel : public ByteChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel() override {
    Close();
    // The fd is released only here: the owner destroys the channel after
    // joining every thread that touches it, whereas Close() may run while
    // another thread is still blocked in recv on this fd — closing there
    // would race the kernel fd table (and could hand a recycled fd to the
    // reader).
    ::close(fd_);
  }

  Status Write(const void* data, size_t size) override {
    const char* p = static_cast<const char*>(data);
    size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("tcp send failed: ") +
                                std::strerror(errno));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  StatusOr<size_t> Read(void* out, size_t max) override {
    while (true) {
      const ssize_t n = ::recv(fd_, out, max, 0);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      if (closed_.load(std::memory_order_acquire)) return size_t{0};
      return Status::Internal(std::string("tcp recv failed: ") +
                              std::strerror(errno));
    }
  }

  void Close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    ::shutdown(fd_, SHUT_RDWR);  // unblocks a peer (or own) blocked recv
  }

 private:
  int fd_;
  std::atomic<bool> closed_{false};
};

}  // namespace

TransportPair MakePipeTransport(FaultPlan source_faults) {
  auto forward = std::make_shared<PipeLane>();   // source -> replica
  auto backward = std::make_shared<PipeLane>();  // replica -> source
  TransportPair pair;
  pair.source = std::make_unique<PipeChannel>(forward, backward,
                                              std::move(source_faults));
  pair.replica = std::make_unique<PipeChannel>(backward, forward, FaultPlan{});
  return pair;
}

StatusOr<TransportPair> MakeTcpTransport() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::Internal("tcp transport: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 1) < 0) {
    ::close(listener);
    return Status::Internal("tcp transport: bind/listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    ::close(listener);
    return Status::Internal("tcp transport: getsockname failed");
  }

  // Loopback connect completes against the listen backlog without a
  // concurrent accept, so this stays single-threaded.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client < 0) {
    ::close(listener);
    return Status::Internal("tcp transport: client socket() failed");
  }
  if (::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listener);
    ::close(client);
    return Status::Internal("tcp transport: connect failed");
  }
  const int server = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (server < 0) {
    ::close(client);
    return Status::Internal("tcp transport: accept failed");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(server, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  TransportPair pair;
  pair.source = std::make_unique<TcpChannel>(server);
  pair.replica = std::make_unique<TcpChannel>(client);
  return pair;
}

}  // namespace replicate
}  // namespace cafe
