#include "replicate/durable_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "io/serialize.h"

namespace cafe {
namespace replicate {
namespace {

/// Parses "<kind>-<generation>.frame"; returns false for anything else
/// (temp files, strangers — Load leaves those alone, appends never make
/// them).
bool ParseLedgerName(const std::string& name, std::string* kind,
                     uint64_t* generation) {
  const size_t dash = name.find('-');
  const size_t suffix = name.rfind(".frame");
  if (dash == std::string::npos || suffix == std::string::npos ||
      suffix + 6 != name.size() || dash == 0 || dash + 1 >= suffix) {
    return false;
  }
  *kind = name.substr(0, dash);
  if (*kind != "base" && *kind != "delta" && *kind != "aux") return false;
  uint64_t value = 0;
  for (size_t i = dash + 1; i < suffix; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

/// Reads and fingerprint-validates one ledger file. Any failure means the
/// file is unusable (torn write survived somehow, bit rot): callers prune.
Status LoadFrameFile(const std::string& path, Frame* out) {
  auto bytes = io::ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeFrame(*bytes, out);
}

}  // namespace

Status DurableReplicaLog::Init() { return io::EnsureDirectory(dir_); }

std::string DurableReplicaLog::PathFor(const char* kind,
                                       uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s-%020" PRIu64 ".frame", kind,
                generation);
  return dir_ + "/" + name;
}

StatusOr<DurableReplicaLog::Restored> DurableReplicaLog::Load() {
  delta_count_ = 0;
  base_generation_ = 0;
  auto names = io::ListDirectory(dir_);
  if (!names.ok()) return names.status();

  std::vector<uint64_t> bases;
  std::map<uint64_t, bool> deltas;  // generation -> present
  std::map<uint64_t, bool> auxes;
  for (const std::string& name : *names) {
    std::string kind;
    uint64_t generation = 0;
    if (!ParseLedgerName(name, &kind, &generation)) continue;
    if (kind == "base") bases.push_back(generation);
    if (kind == "delta") deltas[generation] = true;
    if (kind == "aux") auxes[generation] = true;
  }
  std::sort(bases.begin(), bases.end(), std::greater<uint64_t>());

  // Newest base that actually validates wins; older bases are stale.
  Restored restored;
  Frame base;
  uint64_t base_gen = 0;
  for (uint64_t candidate : bases) {
    if (LoadFrameFile(PathFor("base", candidate), &base).ok()) {
      base_gen = candidate;
      break;
    }
  }
  if (base_gen == 0) {
    // Nothing usable: clear the ledger so stale deltas cannot shadow the
    // next chain.
    for (const std::string& name : *names) {
      std::string kind;
      uint64_t generation = 0;
      if (ParseLedgerName(name, &kind, &generation)) {
        (void)io::RemoveFile(dir_ + "/" + name);
      }
    }
    return Status::NotFound("no valid durable base in " + dir_);
  }

  auto push_with_aux = [&](Frame frame) {
    const auto aux_it = auxes.find(frame.generation);
    if (aux_it != auxes.end()) {
      Frame aux;
      if (LoadFrameFile(PathFor("aux", frame.generation), &aux).ok() &&
          aux.kind == FrameKind::kAux) {
        restored.frames.push_back(std::move(aux));
      }
      auxes.erase(aux_it);
    }
    restored.generation = frame.generation;
    restored.train_step = frame.train_step;
    restored.frames.push_back(std::move(frame));
  };
  if (base.kind != FrameKind::kBase || base.generation != base_gen) {
    return Status::Internal("durable base file holds a non-base frame");
  }
  push_with_aux(std::move(base));

  // Contiguous validated deltas extend the chain; the first gap or damaged
  // file ends it (later deltas are unusable without their predecessor).
  uint64_t head = base_gen;
  while (deltas.count(head + 1) != 0) {
    Frame delta;
    if (!LoadFrameFile(PathFor("delta", head + 1), &delta).ok() ||
        delta.kind != FrameKind::kDelta || delta.generation != head + 1) {
      break;
    }
    ++head;
    ++delta_count_;
    push_with_aux(std::move(delta));
  }
  base_generation_ = base_gen;

  // Prune everything outside the restored chain.
  for (uint64_t stale : bases) {
    if (stale != base_gen) (void)io::RemoveFile(PathFor("base", stale));
  }
  for (const auto& entry : deltas) {
    if (entry.first <= base_gen || entry.first > head) {
      (void)io::RemoveFile(PathFor("delta", entry.first));
    }
  }
  for (const auto& entry : auxes) {  // those consumed above were erased
    (void)io::RemoveFile(PathFor("aux", entry.first));
  }
  return restored;
}

Status DurableReplicaLog::AppendBase(const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  CAFE_RETURN_IF_ERROR(
      io::WriteFileAtomic(PathFor("base", frame.generation), bytes));

  // The new base subsumes the old chain: prune every other ledger file
  // (keeping a same-generation aux, which still describes this base).
  auto names = io::ListDirectory(dir_);
  if (names.ok()) {
    for (const std::string& name : *names) {
      std::string kind;
      uint64_t generation = 0;
      if (!ParseLedgerName(name, &kind, &generation)) continue;
      if (kind == "base" && generation == frame.generation) continue;
      if (kind == "aux" && generation == frame.generation) continue;
      (void)io::RemoveFile(dir_ + "/" + name);
    }
  }
  base_generation_ = frame.generation;
  delta_count_ = 0;
  return Status::OK();
}

Status DurableReplicaLog::AppendDelta(const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  CAFE_RETURN_IF_ERROR(
      io::WriteFileAtomic(PathFor("delta", frame.generation), bytes));
  ++delta_count_;
  return Status::OK();
}

Status DurableReplicaLog::AppendAux(const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  return io::WriteFileAtomic(PathFor("aux", frame.generation), bytes);
}

}  // namespace replicate
}  // namespace cafe
