#ifndef CAFE_REPLICATE_FAULT_INJECTOR_H_
#define CAFE_REPLICATE_FAULT_INJECTOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "replicate/transport.h"

namespace cafe {
namespace replicate {

/// Wraps any ByteChannel and injects faults on the Write path at runtime —
/// unlike FaultPlan (fixed schedule at transport construction), faults are
/// Arm()ed between episodes while the link is live, which is what the chaos
/// soak needs. Also models a slow consumer: SetStalled(true) blocks every
/// Write until unstalled (the channel stays open, bytes just stop moving).
///
/// Thread-safe: Arm/SetStalled may race Write/Read/Close.
class FaultyChannel : public ByteChannel {
 public:
  explicit FaultyChannel(std::unique_ptr<ByteChannel> inner);
  ~FaultyChannel() override;

  /// One-shot: the `in_frames`-th Write from now (0 = the next one) gets
  /// `action` applied (kDelay's sleep uses `arg` microseconds, kTruncate /
  /// kCorrupt use it as in FaultPlan). Replaces any previously armed fault.
  void Arm(FaultPlan::Action action, uint64_t in_frames, uint64_t arg = 0);

  /// While stalled, Write blocks (frames queue in the CALLER, not here).
  /// Unstalling releases blocked writers.
  void SetStalled(bool stalled);

  /// Total Write() calls observed (fault scheduling feedback for tests).
  uint64_t frames_written() const;

  Status Write(const void* data, size_t size) override;
  StatusOr<size_t> Read(void* out, size_t max) override;
  void Close() override;

 private:
  std::unique_ptr<ByteChannel> inner_;
  mutable std::mutex mu_;
  std::condition_variable stall_cv_;
  bool stalled_ = false;
  bool closed_ = false;
  bool armed_ = false;
  FaultPlan::Action action_ = FaultPlan::Action::kDrop;
  uint64_t fire_at_ = 0;  // absolute frame index the armed fault fires at
  uint64_t arg_ = 0;
  uint64_t frames_written_ = 0;
  std::string held_;  // reorder hold-back, same semantics as PipeChannel
  bool has_held_ = false;
};

/// A seeded generator of chaos episodes: each Next() picks one fault class
/// and small parameters. The soak test applies the episode to a live
/// replication rig and asserts byte-identical convergence afterwards.
/// Deterministic for a fixed seed.
class FaultInjector {
 public:
  enum class Kind {
    kDrop = 0,
    kCorrupt,
    kTruncate,
    kReorder,
    kStall,    ///< slow consumer: stall the link for `arg` cuts, then drain
    kKill,     ///< kill the replica process; restart it after `arg` cuts
    kKindCount,
  };

  struct Episode {
    Kind kind = Kind::kDrop;
    uint64_t in_frames = 0;  ///< transport faults: fire this many writes out
    uint64_t arg = 0;        ///< corrupt offset / stall length / kill length
    uint32_t target = 0;     ///< which replica link to hit
  };

  explicit FaultInjector(uint64_t seed, uint32_t replica_count)
      : rng_(seed), replica_count_(replica_count) {}

  Episode Next();

  /// Episodes generated so far for `kind` (soak coverage assertion).
  uint64_t count(Kind kind) const {
    return counts_[static_cast<int>(kind)];
  }

 private:
  Rng rng_;
  uint32_t replica_count_;
  uint64_t counts_[static_cast<int>(Kind::kKindCount)] = {};
};

const char* FaultKindName(FaultInjector::Kind kind);

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_FAULT_INJECTOR_H_
