#ifndef CAFE_REPLICATE_DURABLE_LOG_H_
#define CAFE_REPLICATE_DURABLE_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "replicate/frame.h"

namespace cafe {
namespace replicate {

/// A replica's on-disk applied-state ledger: one file per applied frame
/// (`base-<gen>.frame`, `delta-<gen>.frame`, `aux-<gen>.frame`), each the
/// exact EncodeFrame() bytes — so the wire fingerprint doubles as the
/// on-disk integrity check, every file is written atomically
/// (io::WriteFileAtomic), and Load() re-validates byte by byte before
/// anything reaches a store.
///
/// The chain invariant: one base at generation B plus contiguous deltas
/// B+1..H. AppendBase prunes everything that is not part of the new chain
/// (that is also how compaction works — the owner periodically folds a long
/// delta tail into a fresh base from its serving store's SaveState).
///
/// Restart flow: Load() returns the chain; the replica replays it locally,
/// then greets the source with hello(H), and the source ships only the
/// deltas since H (or a base when H has aged out of its history ring).
///
/// Not thread-safe: the replica's apply thread is the only caller.
class DurableReplicaLog {
 public:
  explicit DurableReplicaLog(std::string dir) : dir_(std::move(dir)) {}

  /// Creates the directory (one level) if needed.
  Status Init();

  struct Restored {
    uint64_t generation = 0;  ///< head of the chain
    uint64_t train_step = 0;
    /// Base first, then contiguous deltas; each data frame preceded by its
    /// same-generation aux sidecar when one was persisted.
    std::vector<Frame> frames;
  };

  /// Validates and returns the longest usable chain, pruning stale and
  /// damaged files. NotFound when no valid base exists.
  StatusOr<Restored> Load();

  /// Persists `frame` as the new chain root and prunes every other file
  /// except a same-generation aux.
  Status AppendBase(const Frame& frame);

  /// Persists a delta file. The caller keeps the chain contiguity invariant
  /// (it only appends frames it actually applied in order).
  Status AppendDelta(const Frame& frame);

  /// Persists an aux sidecar for its generation.
  Status AppendAux(const Frame& frame);

  /// Deltas currently in the chain (compaction trigger).
  uint64_t delta_count() const { return delta_count_; }

  /// Generation of the current chain root (0 = none).
  uint64_t base_generation() const { return base_generation_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const char* kind, uint64_t generation) const;

  std::string dir_;
  uint64_t delta_count_ = 0;
  uint64_t base_generation_ = 0;
};

}  // namespace replicate
}  // namespace cafe

#endif  // CAFE_REPLICATE_DURABLE_LOG_H_
