#include "replicate/frame.h"

#include <cstring>

#include "io/serialize.h"

namespace cafe {
namespace replicate {

bool IsValidFrameKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(FrameKind::kBase) &&
         kind <= static_cast<uint8_t>(FrameKind::kHeartbeat);
}

std::string EncodeFrame(const Frame& frame) {
  io::Writer writer;
  writer.WriteU32(kFrameMagic);
  writer.WriteU8(static_cast<uint8_t>(frame.kind));
  writer.WriteU64(frame.generation);
  writer.WriteU64(frame.train_step);
  writer.WriteU64(frame.payload.size());
  writer.WriteBytes(frame.payload.data(), frame.payload.size());
  const uint64_t fp = io::Fingerprint(writer.buffer().data(), writer.size());
  writer.WriteU64(fp);
  return writer.Release();
}

Status DecodeFrame(const std::string& bytes, Frame* out) {
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  switch (parser.Next(out)) {
    case FrameParser::Result::kFrame:
      break;
    case FrameParser::Result::kNeedMore:
      return Status::OutOfRange("frame truncated");
    case FrameParser::Result::kCorrupt:
      return Status::InvalidArgument("frame corrupt");
  }
  if (parser.buffered_bytes() != 0) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  return Status::OK();
}

std::string EncodeAux(const AuxState& aux) {
  io::Writer writer;
  writer.WriteString(aux.model_name);
  writer.WriteU64(aux.dense_params.size());
  for (const std::vector<float>& block : aux.dense_params) {
    writer.WriteVec(block);
  }
  writer.WriteBool(aux.has_optimizer);
  writer.WriteString(aux.optimizer_state);
  return writer.Release();
}

Status DecodeAux(const std::string& payload, AuxState* out) {
  io::Reader reader(&payload);
  CAFE_RETURN_IF_ERROR(reader.ReadString(&out->model_name));
  uint64_t blocks = 0;
  CAFE_RETURN_IF_ERROR(reader.ReadU64(&blocks));
  if (blocks > reader.remaining()) {
    return Status::OutOfRange("aux payload: corrupt dense block count");
  }
  out->dense_params.resize(blocks);
  for (std::vector<float>& block : out->dense_params) {
    CAFE_RETURN_IF_ERROR(reader.ReadVec(&block));
  }
  CAFE_RETURN_IF_ERROR(reader.ReadBool(&out->has_optimizer));
  CAFE_RETURN_IF_ERROR(reader.ReadString(&out->optimizer_state));
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("aux payload: trailing bytes");
  }
  return Status::OK();
}

void FrameParser::Feed(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void FrameParser::Consume(size_t n) {
  pos_ += n;
  if (pos_ > 4096 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

FrameParser::Result FrameParser::Next(Frame* out) {
  while (true) {
    const size_t avail = buffer_.size() - pos_;
    if (avail < sizeof(uint32_t)) return Result::kNeedMore;

    // Lock onto the magic. Anything before it is damage.
    uint32_t magic = 0;
    std::memcpy(&magic, buffer_.data() + pos_, sizeof(magic));
    if (magic != kFrameMagic) {
      // Scan for the next full 4-byte magic so one damage zone costs one
      // rescan, not one event per skipped byte.
      const char* base = buffer_.data() + pos_;
      const char first = static_cast<char>(kFrameMagic & 0xff);
      size_t skip = avail - (sizeof(uint32_t) - 1);
      for (size_t at = 1; at + sizeof(uint32_t) <= avail;) {
        const void* hit = std::memchr(base + at, first, avail - at);
        if (hit == nullptr) break;
        const size_t offset =
            static_cast<size_t>(static_cast<const char*>(hit) - base);
        if (offset + sizeof(uint32_t) > avail) break;
        uint32_t candidate = 0;
        std::memcpy(&candidate, base + offset, sizeof(candidate));
        if (candidate == kFrameMagic) {
          skip = offset;
          break;
        }
        at = offset + 1;
      }
      Consume(skip);
      ++corrupt_events_;
      return Result::kCorrupt;
    }

    if (avail < kFrameHeaderBytes) return Result::kNeedMore;
    const char* header = buffer_.data() + pos_;
    const uint8_t kind = static_cast<uint8_t>(header[4]);
    uint64_t generation = 0, train_step = 0, payload_size = 0;
    std::memcpy(&generation, header + 5, sizeof(generation));
    std::memcpy(&train_step, header + 13, sizeof(train_step));
    std::memcpy(&payload_size, header + 21, sizeof(payload_size));
    if (!IsValidFrameKind(kind) || payload_size > kMaxFramePayloadBytes) {
      // A header this magic prefixes is garbage (likely a flipped byte or a
      // magic-looking run inside damaged payload): skip past the magic and
      // rescan.
      Consume(sizeof(uint32_t));
      ++corrupt_events_;
      return Result::kCorrupt;
    }

    const size_t total =
        kFrameHeaderBytes + static_cast<size_t>(payload_size) + 8;
    if (avail < total) return Result::kNeedMore;

    uint64_t stored_fp = 0;
    std::memcpy(&stored_fp, header + kFrameHeaderBytes + payload_size,
                sizeof(stored_fp));
    const uint64_t fp =
        io::Fingerprint(header, kFrameHeaderBytes + payload_size);
    if (fp != stored_fp) {
      Consume(sizeof(uint32_t));
      ++corrupt_events_;
      return Result::kCorrupt;
    }

    out->kind = static_cast<FrameKind>(kind);
    out->generation = generation;
    out->train_step = train_step;
    out->payload.assign(header + kFrameHeaderBytes,
                        static_cast<size_t>(payload_size));
    Consume(total);
    return Result::kFrame;
  }
}

}  // namespace replicate
}  // namespace cafe
