#include "core/cafe_config.h"

#include <algorithm>

namespace cafe {

Status CafeConfig::Validate() const {
  CAFE_RETURN_IF_ERROR(embedding.Validate());
  if (hot_percentage < 0.0 || hot_percentage > 1.0) {
    return Status::InvalidArgument("hot_percentage must be in [0, 1]");
  }
  if (slots_per_bucket == 0) {
    return Status::InvalidArgument("slots_per_bucket must be positive");
  }
  if (decay_coefficient < 0.0 || decay_coefficient > 1.0) {
    return Status::InvalidArgument("decay_coefficient must be in [0, 1]");
  }
  if (decay_interval == 0) {
    return Status::InvalidArgument("decay_interval must be positive");
  }
  if (promote_margin < 1.0) {
    return Status::InvalidArgument("promote_margin must be >= 1");
  }
  if (demotion_hysteresis <= 0.0 || demotion_hysteresis > 1.0) {
    return Status::InvalidArgument("demotion_hysteresis must be in (0, 1]");
  }
  if (medium_threshold_fraction <= 0.0 || medium_threshold_fraction >= 1.0) {
    return Status::InvalidArgument(
        "medium_threshold_fraction must be in (0, 1)");
  }
  if (medium_table_fraction <= 0.0 || medium_table_fraction >= 1.0) {
    return Status::InvalidArgument("medium_table_fraction must be in (0, 1)");
  }
  if (per_field_hot && field_layout.num_fields() == 0) {
    return Status::InvalidArgument("per_field_hot requires a field layout");
  }
  return Status::OK();
}

StatusOr<CafeMemoryPlan> CafeMemoryPlan::Compute(const CafeConfig& config,
                                                 size_t slot_bytes) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  CafeMemoryPlan plan;
  plan.budget_bytes = config.embedding.BudgetBytes();
  const uint64_t row_bytes = config.embedding.dim * sizeof(float);

  // Each hot feature costs one sketch bucket (c slots) plus one exclusive
  // row (paper §5.3: sketch-to-embedding memory ratio 12:d per hot feature
  // with their 12-byte buckets; we charge our actual slot footprint).
  const uint64_t per_hot =
      static_cast<uint64_t>(slot_bytes) * config.slots_per_bucket + row_bytes;
  const double hot_bytes =
      config.hot_percentage * static_cast<double>(plan.budget_bytes);
  plan.hot_capacity = static_cast<uint64_t>(hot_bytes / per_hot);
  // Never allocate more exclusive rows than features exist.
  plan.hot_capacity =
      std::min<uint64_t>(plan.hot_capacity, config.embedding.total_features);
  plan.sketch_bytes = plan.hot_capacity *
                      static_cast<uint64_t>(slot_bytes) *
                      config.slots_per_bucket;
  plan.hot_table_bytes = plan.hot_capacity * row_bytes;

  const uint64_t used = plan.sketch_bytes + plan.hot_table_bytes;
  plan.shared_bytes = plan.budget_bytes > used ? plan.budget_bytes - used : 0;
  uint64_t shared_rows = plan.shared_bytes / row_bytes;
  if (shared_rows == 0) {
    // Degenerate "leave-one-out"-style budgets: keep one shared row so the
    // non-hot path stays defined (paper Figure 15(a) "loo" point), taking
    // the row back from the hot region if needed.
    shared_rows = 1;
    if (plan.hot_capacity > 0 && plan.budget_bytes < used + row_bytes) {
      --plan.hot_capacity;
      plan.sketch_bytes = plan.hot_capacity *
                          static_cast<uint64_t>(slot_bytes) *
                          config.slots_per_bucket;
      plan.hot_table_bytes = plan.hot_capacity * row_bytes;
    }
    plan.shared_bytes = row_bytes;
  }
  if (config.use_multi_level && shared_rows >= 2) {
    plan.shared_rows_b = std::max<uint64_t>(
        1, static_cast<uint64_t>(config.medium_table_fraction *
                                 static_cast<double>(shared_rows)));
    plan.shared_rows_a = shared_rows - plan.shared_rows_b;
  } else {
    plan.shared_rows_a = shared_rows;
    plan.shared_rows_b = 0;
  }
  if (plan.hot_capacity == 0 && plan.shared_rows_a == 0) {
    return Status::ResourceExhausted("cafe: budget below one embedding row");
  }
  return plan;
}

}  // namespace cafe
