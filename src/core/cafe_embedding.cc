#include "core/cafe_embedding.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace cafe {

StatusOr<std::unique_ptr<CafeEmbedding>> CafeEmbedding::Create(
    const CafeConfig& config) {
  auto plan = CafeMemoryPlan::Compute(config, sizeof(HotSketch::Slot));
  if (!plan.ok()) return plan.status();
  return std::unique_ptr<CafeEmbedding>(
      new CafeEmbedding(config, plan.value()));
}

CafeEmbedding::CafeEmbedding(const CafeConfig& config,
                             const CafeMemoryPlan& plan)
    : config_(config),
      plan_(plan),
      sketch_(std::move(HotSketch::Create(HotSketchConfig{
                            /*num_buckets=*/std::max<uint64_t>(
                                1, plan.hot_capacity),
                            /*slots_per_bucket=*/config.slots_per_bucket,
                            /*seed=*/config.embedding.seed ^ 0x5ce7cULL})
                            .value())),
      hash_a_(config.embedding.seed ^ 0xaaULL),
      hash_b_(config.embedding.seed ^ 0xbbULL),
      hot_table_(plan.hot_capacity * config.embedding.dim),
      shared_a_(plan.shared_rows_a * config.embedding.dim),
      shared_b_(plan.shared_rows_b * config.embedding.dim) {
  Rng rng(config.embedding.seed);
  const float bound = embed_internal::InitBound(config.embedding.dim);
  for (float& w : shared_a_) w = rng.UniformFloat(-bound, bound);
  if (config.use_multi_level) {
    // Table-B rows start at zero so a fresh medium feature's pooled
    // embedding equals its previous cold embedding (smooth class change).
    std::fill(shared_b_.begin(), shared_b_.end(), 0.0f);
  }
  free_rows_.reserve(plan.hot_capacity);
  for (uint64_t r = plan.hot_capacity; r-- > 0;) {
    free_rows_.push_back(static_cast<int32_t>(r));
  }
  row_prev_score_.assign(plan.hot_capacity, 0.0f);

  if (config.per_field_hot) {
    // Partition exclusive rows across fields proportionally to cardinality
    // (the ablation design; the default single pool lets importance decide).
    const uint64_t total = config.field_layout.total_features();
    const size_t fields = config.field_layout.num_fields();
    field_quota_.assign(fields, 0);
    field_used_.assign(fields, 0);
    uint64_t assigned = 0;
    for (size_t f = 0; f < fields; ++f) {
      field_quota_[f] = plan.hot_capacity *
                        config.field_layout.cardinality(f) / std::max<uint64_t>(total, 1);
      assigned += field_quota_[f];
    }
    // Distribute rounding leftovers round-robin.
    for (size_t f = 0; assigned < plan.hot_capacity; f = (f + 1) % fields) {
      ++field_quota_[f];
      ++assigned;
    }
  }

  if (config.auto_threshold) {
    // No promotions before the first maintenance tick: by then the sketch
    // has seen decay_interval iterations of importance mass, so the first
    // occupants of the exclusive table are already plausible hot features
    // rather than whichever ids arrived in the first batch.
    hot_threshold_ = std::numeric_limits<double>::infinity();
  } else {
    hot_threshold_ = config.hot_threshold;
  }
  medium_threshold_ = hot_threshold_ * config.medium_threshold_fraction;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string prefix = "store." + Name() + ".";
  obs_migrations_ = registry.GetCounter(prefix + "migrations_total");
  obs_demotions_ = registry.GetCounter(prefix + "demotions_total");
  obs_decay_ticks_ = registry.GetCounter(prefix + "decay_ticks_total");
  obs_lookup_hot_ = registry.GetCounter(prefix + "lookup_hot_total");
  obs_lookup_medium_ = registry.GetCounter(prefix + "lookup_medium_total");
  obs_lookup_cold_ = registry.GetCounter(prefix + "lookup_cold_total");
  obs_hot_occupancy_ = registry.GetGauge(prefix + "hot_occupancy");
  obs_victim_queue_depth_ = registry.GetGauge(prefix + "victim_queue_depth");
  obs_hot_threshold_ = registry.GetGauge(prefix + "hot_threshold");
}

void CafeEmbedding::SharedLookup(uint64_t id, bool medium, float* out) const {
  const uint32_t d = config_.embedding.dim;
  const float* a =
      shared_a_.data() + hash_a_.Bounded(id, plan_.shared_rows_a) * d;
  if (medium && plan_.shared_rows_b > 0) {
    const float* b =
        shared_b_.data() + hash_b_.Bounded(id, plan_.shared_rows_b) * d;
    for (uint32_t i = 0; i < d; ++i) out[i] = a[i] + b[i];
  } else {
    embed_internal::CopyRow(out, a, d);
  }
}

void CafeEmbedding::Lookup(uint64_t id, float* out) {
  LookupOne(id, out, /*occurrences=*/1);
}

void CafeEmbedding::LookupConst(uint64_t id, float* out) const {
  // The serving path: identical resolution to LookupOne but with the
  // hot/cold classification read-only and no lookup statistics — the
  // "frozen at snapshot time" semantics, and what makes concurrent serving
  // callers safe on a quiescent store.
  const HotSketch::Slot* slot = sketch_.Find(id);
  if (slot != nullptr && slot->payload >= 0) {
    embed_internal::CopyRow(
        out,
        hot_table_.data() +
            static_cast<size_t>(slot->payload) * config_.embedding.dim,
        config_.embedding.dim);
    return;
  }
  const bool medium = config_.use_multi_level && slot != nullptr &&
                      slot->GuaranteedScore() >= medium_threshold_;
  SharedLookup(id, medium, out);
}

void CafeEmbedding::LookupOne(uint64_t id, float* out, uint64_t occurrences) {
  const HotSketch::Slot* slot = sketch_.Find(id);
  if (slot != nullptr && slot->payload >= 0) {
    embed_internal::CopyRow(
        out,
        hot_table_.data() +
            static_cast<size_t>(slot->payload) * config_.embedding.dim,
        config_.embedding.dim);
    lookup_stats_.hot += occurrences;
    obs_lookup_hot_->Add(occurrences);
    return;
  }
  const bool medium = config_.use_multi_level && slot != nullptr &&
                      slot->GuaranteedScore() >= medium_threshold_;
  SharedLookup(id, medium, out);
  if (medium) {
    lookup_stats_.medium += occurrences;
    obs_lookup_medium_->Add(occurrences);
  } else {
    lookup_stats_.cold += occurrences;
    obs_lookup_cold_->Add(occurrences);
  }
}

void CafeEmbedding::ResolveUniqueRows(const BatchDeduper& dedup,
                                      std::vector<ResolvedRow>* rows,
                                      PathStats* stats) const {
  const uint32_t d = config_.embedding.dim;
  const size_t num_unique = dedup.num_unique();
  const std::vector<uint64_t>& unique = dedup.unique_ids();
  rows->resize(num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    if (u + PrefetchDistance() < num_unique) {
      sketch_.PrefetchBucket(unique[u + PrefetchDistance()]);
    }
    const uint64_t id = unique[u];
    const HotSketch::Slot* slot = sketch_.Find(id);
    ResolvedRow& resolved = (*rows)[u];
    if (slot != nullptr && slot->payload >= 0) {
      resolved.a = hot_table_.data() + static_cast<size_t>(slot->payload) * d;
      resolved.b = nullptr;
      if (stats != nullptr) stats->hot += dedup.count(u);
    } else {
      const bool medium = config_.use_multi_level && slot != nullptr &&
                          slot->GuaranteedScore() >= medium_threshold_;
      resolved.a =
          shared_a_.data() + hash_a_.Bounded(id, plan_.shared_rows_a) * d;
      resolved.b = medium && plan_.shared_rows_b > 0
                       ? shared_b_.data() +
                             hash_b_.Bounded(id, plan_.shared_rows_b) * d
                       : nullptr;
      if (stats != nullptr) {
        if (medium) {
          stats->medium += dedup.count(u);
        } else {
          stats->cold += dedup.count(u);
        }
      }
    }
  }
}

void CafeEmbedding::MaterializeUniqueRows(const BatchDeduper& dedup,
                                          const std::vector<ResolvedRow>& rows,
                                          size_t n, float* out,
                                          size_t out_stride) const {
  const uint32_t d = config_.embedding.dim;
  const size_t num_unique = dedup.num_unique();
  for (size_t u = 0; u < num_unique; ++u) {
    if (u + PrefetchDistance() < num_unique) {
      const ResolvedRow& ahead = rows[u + PrefetchDistance()];
      PrefetchRead(ahead.a);
      if (ahead.b != nullptr) PrefetchRead(ahead.b);
    }
    const ResolvedRow& resolved = rows[u];
    float* dst =
        out + static_cast<size_t>(dedup.first_occurrence(u)) * out_stride;
    if (resolved.b == nullptr) {
      simd::CopyRow(dst, resolved.a, d);
    } else {
      simd::AddRows(dst, resolved.a, resolved.b, d);
    }
  }
  dedup.ReplicateRows(out, n, d, out_stride);
}

void CafeEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                     size_t out_stride) const {
  // Concurrent-read path with the SAME two-pass dedup'd resolve as
  // LookupBatch (Resolve/MaterializeUniqueRows — one copy of the
  // resolution rules), minus statistics. The scratch that made the
  // training path unshareable lives in thread_local storage here — one
  // deduper + row buffer per serving worker — so any number of threads
  // still run lookups concurrently while skewed serving batches pay one
  // sketch probe per UNIQUE id instead of per occurrence. Classification
  // is read-only, so the output stays byte-identical to n scalar
  // LookupConst calls.
  struct ConstBatchScratch {
    BatchDeduper dedup;
    std::vector<ResolvedRow> rows;
  };
  static thread_local ConstBatchScratch scratch;
  if (!scratch.dedup.BuildAdaptive(ids, n)) {
    // Mostly-unique batch: direct scalar resolve, sketch bucket prefetched
    // ahead (same abandon heuristic as the training path).
    for (size_t i = 0; i < n; ++i) {
      if (i + PrefetchDistance() < n) {
        sketch_.PrefetchBucket(ids[i + PrefetchDistance()]);
      }
      LookupConst(ids[i], out + i * out_stride);
    }
    return;
  }
  ResolveUniqueRows(scratch.dedup, &scratch.rows, /*stats=*/nullptr);
  MaterializeUniqueRows(scratch.dedup, scratch.rows, n, out, out_stride);
}

void CafeEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                                size_t out_stride) {
  Obs().RecordLookup(n);
  // Sketch probe + hot/cold classification once per unique id; duplicate
  // occurrences replicate the resolved row. Lookups are read-only, so the
  // output is byte-identical to n scalar calls either way — which is what
  // makes the dedup ADAPTIVE: skewed per-field batches (the common case
  // after the field-major consumer refactor) dedup heavily and take the
  // per-unique path, while mostly-unique batches abandon dedup after a
  // sampled prefix and run a direct devirtualized loop instead of paying
  // for a scratch table they would not reuse.
  if (!dedup_.BuildAdaptive(ids, n)) {
    for (size_t i = 0; i < n; ++i) {
      if (i + PrefetchDistance() < n) {
        sketch_.PrefetchBucket(ids[i + PrefetchDistance()]);
      }
      LookupOne(ids[i], out + i * out_stride, 1);
    }
    return;
  }

  // Resolve and materialize run as separate passes so the two DEPENDENT
  // memory accesses of a cafe lookup — sketch bucket, then embedding row —
  // never serialize: pass 1 probes buckets (prefetched PrefetchDistance()
  // ahead) and only records row addresses; pass 2 copies rows (again
  // prefetched PrefetchDistance() ahead). The scalar path eats the full
  // bucket-then-row latency chain on every call.
  const PathStats before = lookup_stats_;
  ResolveUniqueRows(dedup_, &row_ptr_scratch_, &lookup_stats_);
  obs_lookup_hot_->Add(lookup_stats_.hot - before.hot);
  obs_lookup_medium_->Add(lookup_stats_.medium - before.medium);
  obs_lookup_cold_->Add(lookup_stats_.cold - before.cold);
  MaterializeUniqueRows(dedup_, row_ptr_scratch_, n, out, out_stride);
}

CafeEmbedding::Path CafeEmbedding::ClassifyForTest(uint64_t id) const {
  const HotSketch::Slot* slot = sketch_.Find(id);
  if (slot != nullptr && slot->payload >= 0) return Path::kHot;
  if (config_.use_multi_level && slot != nullptr &&
      slot->GuaranteedScore() >= medium_threshold_) {
    return Path::kMedium;
  }
  return Path::kCold;
}

size_t CafeEmbedding::FieldQuotaIndex(uint64_t id) const {
  return config_.field_layout.FieldOf(id);
}

bool CafeEmbedding::TryPromote(uint64_t id, HotSketch::Slot* slot) {
  if (free_rows_.empty()) return false;
  size_t field = 0;
  if (config_.per_field_hot) {
    field = FieldQuotaIndex(id);
    if (field_used_[field] >= field_quota_[field]) return false;
  }
  const int32_t row = free_rows_.back();
  free_rows_.pop_back();
  if (config_.per_field_hot) ++field_used_[field];
  if (dirty_hot_.enabled()) dirty_hot_.Mark(static_cast<uint64_t>(row));
  // Migration initialization: copy the feature's current shared embedding
  // so its representation evolves smoothly across the promotion (§3.3).
  const bool was_medium = config_.use_multi_level &&
                          slot->GuaranteedScore() >= medium_threshold_;
  // Sharded batch: the copy reads the shared row(s) and overwrites the
  // claimed hot row, so their pending deferred SGD must land first (no-ops
  // outside a sharded batch).
  FlushRow(static_cast<uint64_t>(row));
  FlushRow(plan_.hot_capacity + hash_a_.Bounded(id, plan_.shared_rows_a));
  if (was_medium && plan_.shared_rows_b > 0) {
    FlushRow(plan_.hot_capacity + plan_.shared_rows_a +
             hash_b_.Bounded(id, plan_.shared_rows_b));
  }
  SharedLookup(id, was_medium,
               hot_table_.data() +
                   static_cast<size_t>(row) * config_.embedding.dim);
  slot->payload = row;
  ++migrations_;
  obs_migrations_->Add(1);
  return true;
}

void CafeEmbedding::FreeRow(int32_t row) {
  CAFE_DCHECK(row >= 0 &&
              static_cast<uint64_t>(row) < plan_.hot_capacity);
  free_rows_.push_back(row);
}

using embed_internal::GradNorm;

void CafeEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  const double importance = config_.importance == ImportanceMetric::kFrequency
                                ? 1.0
                                : GradNorm(grad, config_.embedding.dim);
  ApplyGradientOne(id, grad, lr, importance);
}

void CafeEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                       const float* grads, size_t grad_stride,
                                       float lr, float clip) {
  // Per-batch sketch insertion (the paper's training-loop formulation): the
  // batch is deduplicated and the sketch advances ONCE per unique id, by
  // the id's total importance over the batch — occurrence count under the
  // frequency metric, summed per-occurrence clipped gradient norms under
  // the gradient-norm metric (summing norms rather than taking the norm of
  // the sum keeps scores identical to the scalar stream; mixed-sign
  // gradients must not cancel a hot feature's importance). Gradients
  // accumulate straight from the model's strided tensor with the clamp
  // fused into the read; promotion, demotion, and one SGD step with the
  // accumulated gradient then run per unique id.
  const uint32_t d = config_.embedding.dim;
  dedup_.Build(ids, n);
  Obs().RecordBackward(n, dedup_.num_unique());
  dedup_.AccumulateRows(grads, n, d, grad_stride, clip, &grad_accum_);
  const size_t num_unique = dedup_.num_unique();
  if (config_.importance == ImportanceMetric::kFrequency) {
    importance_accum_.resize(num_unique);
    for (size_t u = 0; u < num_unique; ++u) {
      importance_accum_[u] = static_cast<double>(dedup_.count(u));
    }
  } else {
    dedup_.AccumulateNorms(grads, n, d, grad_stride, clip,
                           &importance_accum_);
  }
  const std::vector<uint64_t>& unique = dedup_.unique_ids();
  for (size_t u = 0; u < num_unique; ++u) {
    if (u + PrefetchDistance() < num_unique) {
      sketch_.PrefetchBucket(unique[u + PrefetchDistance()]);
    }
    ApplyGradientOne(unique[u], grad_accum_.data() + u * d, lr,
                     importance_accum_[u]);
  }
  obs_victim_queue_depth_->Set(
      static_cast<double>(victim_queue_.size() - victim_idx_));
}

void CafeEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                              const float* grads,
                                              size_t grad_stride, float lr,
                                              float clip, ThreadPool* pool,
                                              uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Per-phase timing feeds the trainer's backward split (accumulate /
  // decide / scatter); batch-granular, so the cost is three clock pairs
  // per backward call regardless of batch size.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Histogram* const accumulate_hist = registry.GetHistogram(
      "train.backward.accumulate_us", obs::DefaultTimeBucketsUs());
  static obs::Histogram* const decide_hist = registry.GetHistogram(
      "train.backward.decide_us", obs::DefaultTimeBucketsUs());
  static obs::Histogram* const scatter_hist = registry.GetHistogram(
      "train.backward.scatter_us", obs::DefaultTimeBucketsUs());

  const uint32_t d = config_.embedding.dim;
  dedup_.Build(ids, n);
  const size_t num_unique = dedup_.num_unique();
  Obs().RecordBackward(n, num_unique);
  grad_accum_.resize(num_unique * d);
  importance_accum_.resize(num_unique);

  // Phase A: gradient + importance accumulation, sharded by unique index.
  // Each worker scans the full occurrence stream and sums only its own
  // unique ids' slices in stream order, so every accumulator is
  // bit-identical to the serial reduction.
  obs::ScopedTimer accumulate_timer("backward.accumulate", accumulate_hist);
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    dedup_.AccumulateRowsSharded(
        grads, n, d, grad_stride, clip, grad_accum_.data(),
        [&](size_t u) { return ShardOfRow(u, num_shards) == shard; });
    if (config_.importance == ImportanceMetric::kFrequency) {
      const size_t begin = num_unique * shard / num_shards;
      const size_t end = num_unique * (shard + 1) / num_shards;
      for (size_t u = begin; u < end; ++u) {
        importance_accum_[u] = static_cast<double>(dedup_.count(u));
      }
    } else {
      dedup_.AccumulateNormsSharded(
          grads, n, d, grad_stride, clip, importance_accum_.data(),
          [&](size_t u) { return ShardOfRow(u, num_shards) == shard; });
    }
  });

  accumulate_timer.Finish();

  // Phase B: the serial decision machine, unchanged from the serial path
  // (sketch insertion, eviction, promotion, demotion, counters, and every
  // dirty mark happen on this thread in unique order), with the SGD steps
  // deferred as per-row op chains. TryPromote flushes a row's chain before
  // touching its floats, so migration copies see serial-identical bytes.
  obs::ScopedTimer decide_timer("backward.decide", decide_hist);
  const uint64_t total_rows =
      plan_.hot_capacity + plan_.shared_rows_a + plan_.shared_rows_b;
  if (row_gen_.size() < total_rows) {
    row_gen_.assign(total_rows, 0);
    row_head_.resize(total_rows);
    row_tail_.resize(total_rows);
  }
  ++batch_gen_;
  deferred_lr_ = lr;
  deferred_ops_.clear();
  const std::vector<uint64_t>& unique = dedup_.unique_ids();
  for (size_t u = 0; u < num_unique; ++u) {
    if (u + PrefetchDistance() < num_unique) {
      sketch_.PrefetchBucket(unique[u + PrefetchDistance()]);
    }
    ApplyGradientOne(unique[u], grad_accum_.data() + u * d, lr,
                     importance_accum_[u], static_cast<int64_t>(u));
  }
  decide_timer.Finish();

  // Phase C: parallel scatter of the undrained ops, sharded by global row.
  // All ops on one row share an owner and sit in decision order in the op
  // list, so each row replays its serial SGD sequence exactly; rows are
  // disjoint across shards, so no float is written by two workers.
  const size_t num_ops = deferred_ops_.size();
  obs::ScopedTimer scatter_timer("backward.scatter", scatter_hist);
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t i = 0; i < num_ops; ++i) {
      const DeferredOp& op = deferred_ops_[i];
      if (op.applied || ShardOfRow(op.row, num_shards) != shard) continue;
      if (i + PrefetchDistance() < num_ops) {
        const DeferredOp& ahead = deferred_ops_[i + PrefetchDistance()];
        if (!ahead.applied && ShardOfRow(ahead.row, num_shards) == shard) {
          PrefetchWrite(RowAtGlobal(ahead.row));
        }
      }
      float* dst = RowAtGlobal(op.row);
      const float* g = grad_accum_.data() + static_cast<size_t>(op.u) * d;
      simd::AxpyNeg(dst, g, d, lr);
    }
  });
  scatter_timer.Finish();
  obs_victim_queue_depth_->Set(
      static_cast<double>(victim_queue_.size() - victim_idx_));
}

void CafeEmbedding::ApplyGradientOne(uint64_t id, const float* grad, float lr,
                                     double importance, int64_t defer_u) {
  const uint32_t d = config_.embedding.dim;
  const bool track = dirty_hot_.enabled();
  HotSketch::InsertResult res = sketch_.Insert(id, importance);
  if (track && res.slot_index >= 0) MarkBucket(res.slot_index);
  if (res.evicted && res.evicted_payload >= 0) {
    // A hot feature lost its sketch slot: its exclusive row is recycled and
    // it silently degrades to the shared path (§3.3 exit-by-eviction).
    FreeRow(res.evicted_payload);
    if (config_.per_field_hot) {
      --field_used_[FieldQuotaIndex(res.evicted_key)];
    }
    ++demotions_;
    obs_demotions_->Add(1);
  }
  CAFE_DCHECK(res.slot_index >= 0);
  HotSketch::Slot* slot = &sketch_.slot_at(res.slot_index);

  // Promotion gates on the guaranteed score so SpaceSaving inheritance
  // inflation cannot push arbitrary tail features into the hot set. When
  // the table is full, a candidate takes the row of the hot feature with
  // the smallest last-interval growth, provided the candidate's guaranteed
  // accumulation clearly beats that growth — candidates survive in the
  // sketch only briefly, so their guaranteed score underestimates their
  // rate and a win is an honest win.
  if (slot->payload < 0 && slot->GuaranteedScore() >= hot_threshold_) {
    if (!TryPromote(id, slot) && !config_.per_field_hot) {
      while (victim_idx_ < victim_queue_.size()) {
        const auto [growth, victim_index] = victim_queue_[victim_idx_];
        if (victim_index == res.slot_index) break;  // cannot evict self
        HotSketch::Slot& victim = sketch_.slot_at(victim_index);
        if (victim.payload < 0) {
          ++victim_idx_;  // already demoted through another path
          continue;
        }
        if (slot->GuaranteedScore() >
            std::max(growth * config_.promote_margin, 1e-12)) {
          if (track) MarkBucket(victim_index);
          FreeRow(victim.payload);
          victim.payload = HotSketch::kNoPayload;
          ++demotions_;
          obs_demotions_->Add(1);
          ++victim_idx_;
          TryPromote(id, slot);
        }
        break;
      }
    }
  }

  if (slot->payload >= 0) {
    if (track) dirty_hot_.Mark(static_cast<uint64_t>(slot->payload));
    if (defer_u >= 0) {
      DeferOp(static_cast<uint64_t>(slot->payload),
              static_cast<uint32_t>(defer_u));
      return;
    }
    float* row =
        hot_table_.data() + static_cast<size_t>(slot->payload) * d;
    simd::AxpyNeg(row, grad, d, lr);
    return;
  }
  const uint64_t row_a = hash_a_.Bounded(id, plan_.shared_rows_a);
  float* a = shared_a_.data() + row_a * d;
  const bool medium = config_.use_multi_level &&
                      slot->GuaranteedScore() >= medium_threshold_;
  if (track) dirty_shared_a_.Mark(row_a);
  if (medium && plan_.shared_rows_b > 0) {
    // Pooled-by-sum embedding: the gradient flows to both rows unchanged.
    const uint64_t row_b = hash_b_.Bounded(id, plan_.shared_rows_b);
    if (track) dirty_shared_b_.Mark(row_b);
    if (defer_u >= 0) {
      DeferOp(plan_.hot_capacity + row_a, static_cast<uint32_t>(defer_u));
      DeferOp(plan_.hot_capacity + plan_.shared_rows_a + row_b,
              static_cast<uint32_t>(defer_u));
      return;
    }
    float* b = shared_b_.data() + row_b * d;
    // The two pooled rows never alias (separate arrays), so the interleaved
    // update splits into two axpy passes with the same per-element rounding.
    simd::AxpyNeg(a, grad, d, lr);
    simd::AxpyNeg(b, grad, d, lr);
  } else {
    if (defer_u >= 0) {
      DeferOp(plan_.hot_capacity + row_a, static_cast<uint32_t>(defer_u));
      return;
    }
    simd::AxpyNeg(a, grad, d, lr);
  }
}

void CafeEmbedding::DeferOp(uint64_t row, uint32_t u) {
  const int32_t op = static_cast<int32_t>(deferred_ops_.size());
  deferred_ops_.push_back(DeferredOp{row, u, /*next=*/-1, /*applied=*/false});
  if (row_gen_[row] != batch_gen_) {
    row_gen_[row] = batch_gen_;
    row_head_[row] = op;
  } else {
    deferred_ops_[row_tail_[row]].next = op;
  }
  row_tail_[row] = op;
}

void CafeEmbedding::FlushRow(uint64_t row) {
  if (row >= row_gen_.size() || row_gen_[row] != batch_gen_) return;
  const uint32_t d = config_.embedding.dim;
  float* dst = RowAtGlobal(row);
  // Chain order is decision order, so the drained prefix reproduces the
  // serial machine's float state at this point of the unique stream.
  for (int32_t op = row_head_[row]; op >= 0; op = deferred_ops_[op].next) {
    DeferredOp& o = deferred_ops_[op];
    if (o.applied) continue;
    const float* g = grad_accum_.data() + static_cast<size_t>(o.u) * d;
    for (uint32_t k = 0; k < d; ++k) dst[k] -= deferred_lr_ * g[k];
    o.applied = true;
  }
}

void CafeEmbedding::RefreshVictimQueue() {
  victim_queue_.clear();
  victim_idx_ = 0;
  const size_t capacity = sketch_.capacity();
  for (size_t i = 0; i < capacity; ++i) {
    const HotSketch::Slot& s = sketch_.slots()[i];
    if (s.key == HotSketch::kEmptyKey || s.payload < 0) continue;
    const double growth =
        static_cast<double>(s.score) - row_prev_score_[s.payload];
    victim_queue_.emplace_back(growth, static_cast<int64_t>(i));
  }
  std::sort(victim_queue_.begin(), victim_queue_.end());
  // Snapshot scores for the next interval's growth measurement.
  for (size_t i = 0; i < capacity; ++i) {
    const HotSketch::Slot& s = sketch_.slots()[i];
    if (s.key != HotSketch::kEmptyKey && s.payload >= 0) {
      row_prev_score_[s.payload] = s.score;
    }
  }
}

void CafeEmbedding::RefreshThresholds() {
  // Auto mode: keep the exclusive table saturated — the threshold is the
  // score of the (hot capacity)-th hottest sketch entry.
  std::vector<double> scores;
  scores.reserve(sketch_.capacity());
  for (const HotSketch::Slot& s : sketch_.slots()) {
    if (s.key != HotSketch::kEmptyKey) {
      scores.push_back(s.GuaranteedScore());
    }
  }
  if (scores.size() <= plan_.hot_capacity || plan_.hot_capacity == 0) {
    hot_threshold_ = 1e-12;
  } else {
    std::nth_element(scores.begin(), scores.begin() + (plan_.hot_capacity - 1),
                     scores.end(), std::greater<double>());
    hot_threshold_ = scores[plan_.hot_capacity - 1];
  }
  medium_threshold_ = hot_threshold_ * config_.medium_threshold_fraction;
}

void CafeEmbedding::Tick() {
  ++iteration_;
  if (iteration_ % config_.decay_interval != 0) return;

  // Measure per-row growth over the closing interval BEFORE decay so the
  // victim queue reflects pure traffic, then decay and refresh thresholds.
  // Decay multiplies every slot by one fixed coefficient, so the next
  // delta ships a replay count instead of the slot array; the maintenance
  // pass still rewrites the victim queue + growth snapshot wholesale
  // (O(hot), rebuilt from mid-interval state a replica cannot reconstruct).
  if (dirty_buckets_.enabled()) {
    ++pending_decay_ticks_;
    maintenance_dirty_ = true;
  }
  RefreshVictimQueue();
  sketch_.Decay(config_.decay_coefficient);
  if (config_.auto_threshold) {
    RefreshThresholds();
  } else {
    medium_threshold_ = hot_threshold_ * config_.medium_threshold_fraction;
  }

  // Demotion scan: hot features whose decayed score fell below the
  // threshold give their exclusive row back; the shared row serves again
  // (the paper discards the exclusive embedding on demotion). Auto mode
  // applies hysteresis so boundary features do not thrash.
  const double demote_below =
      config_.auto_threshold
          ? hot_threshold_ * config_.demotion_hysteresis
          : hot_threshold_;
  const size_t capacity = sketch_.capacity();
  for (size_t i = 0; i < capacity; ++i) {
    HotSketch::Slot& s = sketch_.slot_at(i);
    if (s.key != HotSketch::kEmptyKey && s.payload >= 0 &&
        s.GuaranteedScore() < demote_below) {
      if (dirty_buckets_.enabled()) MarkBucket(static_cast<int64_t>(i));
      FreeRow(s.payload);
      if (config_.per_field_hot) --field_used_[FieldQuotaIndex(s.key)];
      s.payload = HotSketch::kNoPayload;
      ++demotions_;
      obs_demotions_->Add(1);
    }
  }
  // Re-snapshot after decay so next interval's growth is decay-consistent.
  for (size_t i = 0; i < capacity; ++i) {
    const HotSketch::Slot& s = sketch_.slots()[i];
    if (s.key != HotSketch::kEmptyKey && s.payload >= 0) {
      row_prev_score_[s.payload] = s.score;
    }
  }

  obs_decay_ticks_->Add(1);
  obs_hot_occupancy_->Set(static_cast<double>(hot_count()));
  obs_victim_queue_depth_->Set(
      static_cast<double>(victim_queue_.size() - victim_idx_));
  obs_hot_threshold_->Set(hot_threshold_);
}

size_t CafeEmbedding::MemoryBytes() const {
  return sketch_.MemoryBytes() +
         (hot_table_.size() + shared_a_.size() + shared_b_.size()) *
             sizeof(float);
}

Status CafeEmbedding::SaveState(io::Writer* writer) const {
  // Sizing guard (derived from config + plan; re-checked on load).
  writer->WriteU32(config_.embedding.dim);
  writer->WriteU64(plan_.hot_capacity);
  writer->WriteU64(plan_.shared_rows_a);
  writer->WriteU64(plan_.shared_rows_b);
  writer->WriteU64(sketch_.capacity());
  writer->WriteBool(config_.use_multi_level);
  writer->WriteBool(config_.per_field_hot);

  // The complete migration machinery, not just the tables: thresholds, the
  // per-interval growth snapshot, and the victim queue, so a restored store
  // keeps promoting/demoting exactly like the uninterrupted one.
  writer->WriteVec(sketch_.slots());
  writer->WriteVec(hot_table_);
  writer->WriteVec(shared_a_);
  writer->WriteVec(shared_b_);
  writer->WriteVec(free_rows_);
  writer->WriteVec(field_used_);
  writer->WriteF64(hot_threshold_);
  writer->WriteF64(medium_threshold_);
  writer->WriteVec(row_prev_score_);
  writer->WriteU64(victim_queue_.size());
  for (const auto& [growth, slot_index] : victim_queue_) {
    writer->WriteF64(growth);
    writer->WriteI64(slot_index);
  }
  writer->WriteU64(victim_idx_);
  writer->WriteU64(iteration_);
  writer->WriteU64(migrations_);
  writer->WriteU64(demotions_);
  writer->WriteU64(lookup_stats_.hot);
  writer->WriteU64(lookup_stats_.medium);
  writer->WriteU64(lookup_stats_.cold);
  return Status::OK();
}

Status CafeEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_hot_.Enable(plan_.hot_capacity);
    dirty_shared_a_.Enable(plan_.shared_rows_a);
    dirty_shared_b_.Enable(plan_.shared_rows_b);
    dirty_buckets_.Enable(sketch_.num_buckets());
  } else {
    dirty_hot_.Disable();
    dirty_shared_a_.Disable();
    dirty_shared_b_.Disable();
    dirty_buckets_.Disable();
  }
  pending_decay_ticks_ = 0;
  maintenance_dirty_ = false;
  return Status::OK();
}

Status CafeEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_hot_.enabled()) {
    return Status::FailedPrecondition(
        "cafe embedding: dirty tracking is not enabled");
  }
  const uint32_t c = config_.slots_per_bucket;
  // Sizing guard, as in SaveState.
  writer->WriteU32(config_.embedding.dim);
  writer->WriteU64(plan_.hot_capacity);
  writer->WriteU64(plan_.shared_rows_a);
  writer->WriteU64(plan_.shared_rows_b);
  writer->WriteU64(sketch_.capacity());

  // O(1)/O(hot) machinery every delta carries: counters, thresholds, the
  // free-row list and per-field usage.
  writer->WriteU64(iteration_);
  writer->WriteU64(migrations_);
  writer->WriteU64(demotions_);
  writer->WriteU64(lookup_stats_.hot);
  writer->WriteU64(lookup_stats_.medium);
  writer->WriteU64(lookup_stats_.cold);
  writer->WriteU64(victim_idx_);
  writer->WriteF64(hot_threshold_);
  writer->WriteF64(medium_threshold_);
  writer->WriteVec(free_rows_);
  writer->WriteVec(field_used_);

  // Maintenance state: rewritten wholesale only at decay ticks.
  writer->WriteBool(maintenance_dirty_);
  if (maintenance_dirty_) {
    writer->WriteVec(row_prev_score_);
    writer->WriteU64(victim_queue_.size());
    for (const auto& [growth, slot_index] : victim_queue_) {
      writer->WriteF64(growth);
      writer->WriteI64(slot_index);
    }
  }

  // Sketch: decay ticks ship as a replay count (the apply side re-runs
  // Decay with the configured coefficient), then dirty buckets only (one
  // Insert touches one bucket, so this scales with unique ids).
  writer->WriteU64(pending_decay_ticks_);
  writer->WriteU64(dirty_buckets_.rows().size());
  for (const uint64_t bucket : dirty_buckets_.rows()) {
    writer->WriteU64(bucket);
    writer->WriteBytes(sketch_.slots().data() + bucket * c,
                       c * sizeof(HotSketch::Slot));
  }

  // The embedding tables, dirty rows only.
  const uint32_t d = config_.embedding.dim;
  const size_t delta_start = writer->size();
  delta_internal::WriteDirtyRows(writer, dirty_hot_, hot_table_.data(), d);
  delta_internal::WriteDirtyRows(writer, dirty_shared_a_, shared_a_.data(), d);
  delta_internal::WriteDirtyRows(writer, dirty_shared_b_, shared_b_.data(), d);
  Obs().RecordDelta(dirty_hot_.rows().size() + dirty_shared_a_.rows().size() +
                        dirty_shared_b_.rows().size(),
                    writer->size() - delta_start);

  dirty_hot_.Flush();
  dirty_shared_a_.Flush();
  dirty_shared_b_.Flush();
  dirty_buckets_.Flush();
  pending_decay_ticks_ = 0;
  maintenance_dirty_ = false;
  return Status::OK();
}

Status CafeEmbedding::LoadDelta(io::Reader* reader) {
  const uint32_t c = config_.slots_per_bucket;
  uint32_t d = 0;
  uint64_t hot_capacity = 0, rows_a = 0, rows_b = 0, sketch_capacity = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&hot_capacity));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows_a));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows_b));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&sketch_capacity));
  if (d != config_.embedding.dim || hot_capacity != plan_.hot_capacity ||
      rows_a != plan_.shared_rows_a || rows_b != plan_.shared_rows_b ||
      sketch_capacity != sketch_.capacity()) {
    return Status::FailedPrecondition(
        "cafe embedding: delta sizing does not match this store");
  }

  CAFE_RETURN_IF_ERROR(reader->ReadU64(&iteration_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&migrations_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&demotions_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&lookup_stats_.hot));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&lookup_stats_.medium));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&lookup_stats_.cold));
  uint64_t victim_idx = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&victim_idx));
  victim_idx_ = static_cast<size_t>(victim_idx);
  CAFE_RETURN_IF_ERROR(reader->ReadF64(&hot_threshold_));
  CAFE_RETURN_IF_ERROR(reader->ReadF64(&medium_threshold_));
  CAFE_RETURN_IF_ERROR(reader->ReadVec(&free_rows_));
  if (free_rows_.size() > plan_.hot_capacity) {
    return Status::FailedPrecondition("cafe embedding: corrupt free-row list");
  }
  CAFE_RETURN_IF_ERROR(reader->ReadVecExpected(&field_used_, field_used_.size(),
                                               "per-field usage"));

  bool maintenance = false;
  CAFE_RETURN_IF_ERROR(reader->ReadBool(&maintenance));
  if (maintenance) {
    CAFE_RETURN_IF_ERROR(reader->ReadVecExpected(
        &row_prev_score_, row_prev_score_.size(), "row score snapshot"));
    uint64_t queue_size = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&queue_size));
    if (queue_size > sketch_.capacity()) {
      return Status::FailedPrecondition(
          "cafe embedding: corrupt victim queue size");
    }
    victim_queue_.resize(queue_size);
    for (auto& [growth, slot_index] : victim_queue_) {
      CAFE_RETURN_IF_ERROR(reader->ReadF64(&growth));
      CAFE_RETURN_IF_ERROR(reader->ReadI64(&slot_index));
      if (slot_index < 0 ||
          static_cast<uint64_t>(slot_index) >= sketch_.capacity()) {
        return Status::FailedPrecondition(
            "cafe embedding: victim queue slot index out of range");
      }
    }
  }

  uint64_t decay_ticks = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&decay_ticks));
  if (decay_ticks > iteration_) {
    return Status::FailedPrecondition(
        "cafe embedding: corrupt delta decay count");
  }
  // Replay the decay ticks the source ran since the last delta. Untouched
  // buckets see the exact multiply sequence the source did; dirty buckets
  // are overwritten with their final bytes just below.
  for (uint64_t tick = 0; tick < decay_ticks; ++tick) {
    sketch_.Decay(config_.decay_coefficient);
  }
  uint64_t bucket_count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&bucket_count));
  if (bucket_count > sketch_.num_buckets()) {
    return Status::FailedPrecondition(
        "cafe embedding: corrupt delta bucket count");
  }
  for (uint64_t i = 0; i < bucket_count; ++i) {
    uint64_t bucket = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&bucket));
    if (bucket >= sketch_.num_buckets()) {
      return Status::FailedPrecondition(
          "cafe embedding: delta bucket out of range");
    }
    CAFE_RETURN_IF_ERROR(reader->ReadBytes(&sketch_.slot_at(bucket * c),
                                           c * sizeof(HotSketch::Slot)));
  }

  CAFE_RETURN_IF_ERROR(delta_internal::ReadDirtyRows(
      reader, hot_table_.data(), plan_.hot_capacity, d, "hot table"));
  CAFE_RETURN_IF_ERROR(delta_internal::ReadDirtyRows(
      reader, shared_a_.data(), plan_.shared_rows_a, d, "shared table A"));
  return delta_internal::ReadDirtyRows(reader, shared_b_.data(),
                                       plan_.shared_rows_b, d,
                                       "shared table B");
}

Status CafeEmbedding::LoadState(io::Reader* reader) {
  uint32_t d = 0;
  uint64_t hot_capacity = 0, rows_a = 0, rows_b = 0, sketch_capacity = 0;
  bool multi_level = false, per_field = false;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&hot_capacity));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows_a));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows_b));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&sketch_capacity));
  CAFE_RETURN_IF_ERROR(reader->ReadBool(&multi_level));
  CAFE_RETURN_IF_ERROR(reader->ReadBool(&per_field));
  if (d != config_.embedding.dim || hot_capacity != plan_.hot_capacity ||
      rows_a != plan_.shared_rows_a || rows_b != plan_.shared_rows_b ||
      sketch_capacity != sketch_.capacity() ||
      multi_level != config_.use_multi_level ||
      per_field != config_.per_field_hot) {
    return Status::FailedPrecondition(
        "cafe embedding: checkpoint sizing does not match this store");
  }

  std::vector<HotSketch::Slot> slots;
  CAFE_RETURN_IF_ERROR(reader->ReadVec(&slots));
  CAFE_RETURN_IF_ERROR(sketch_.RestoreSlots(std::move(slots)));
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&hot_table_, hot_table_.size(), "hot table"));
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&shared_a_, shared_a_.size(), "shared table A"));
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&shared_b_, shared_b_.size(), "shared table B"));
  CAFE_RETURN_IF_ERROR(reader->ReadVec(&free_rows_));
  if (free_rows_.size() > plan_.hot_capacity) {
    return Status::FailedPrecondition("cafe embedding: corrupt free-row list");
  }
  CAFE_RETURN_IF_ERROR(reader->ReadVecExpected(&field_used_, field_used_.size(),
                                               "per-field usage"));
  CAFE_RETURN_IF_ERROR(reader->ReadF64(&hot_threshold_));
  CAFE_RETURN_IF_ERROR(reader->ReadF64(&medium_threshold_));
  CAFE_RETURN_IF_ERROR(reader->ReadVecExpected(
      &row_prev_score_, row_prev_score_.size(), "row score snapshot"));
  uint64_t queue_size = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&queue_size));
  if (queue_size > sketch_.capacity()) {
    return Status::FailedPrecondition(
        "cafe embedding: corrupt victim queue size");
  }
  victim_queue_.resize(queue_size);
  for (auto& [growth, slot_index] : victim_queue_) {
    CAFE_RETURN_IF_ERROR(reader->ReadF64(&growth));
    CAFE_RETURN_IF_ERROR(reader->ReadI64(&slot_index));
    if (slot_index < 0 ||
        static_cast<uint64_t>(slot_index) >= sketch_.capacity()) {
      return Status::FailedPrecondition(
          "cafe embedding: victim queue slot index out of range");
    }
  }
  uint64_t victim_idx = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&victim_idx));
  victim_idx_ = static_cast<size_t>(victim_idx);
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&iteration_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&migrations_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&demotions_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&lookup_stats_.hot));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&lookup_stats_.medium));
  return reader->ReadU64(&lookup_stats_.cold);
}

}  // namespace cafe
