#include "core/theory.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cafe {
namespace theory {

namespace {
double Clamp01(double p) { return std::clamp(p, 0.0, 1.0); }
}  // namespace

double HoldProbabilityLowerBound(uint64_t w, uint32_t c, double gamma) {
  CAFE_CHECK(c >= 2) << "bound requires at least 2 slots per bucket";
  CAFE_CHECK(gamma > 0.0 && gamma < 1.0);
  const double denom = (static_cast<double>(c) - 1.0) * gamma *
                       static_cast<double>(w);
  return Clamp01(1.0 - (1.0 - gamma) / denom);
}

double ZipfHoldProbabilityLowerBound(uint64_t w, uint32_t c, double gamma,
                                     double z) {
  CAFE_CHECK(c >= 2) << "bound requires at least 2 slots per bucket";
  CAFE_CHECK(gamma > 0.0 && gamma < 1.0);
  CAFE_CHECK(z > 1.0) << "Theorem 3.3 assumes z > 1";
  // sup over eta of 3^-eta * (1 - eta / ((c-1) gamma (eta w)^z)), evaluated
  // on a log grid spanning eta in [1e-6, 64].
  double best = 0.0;
  const double log_lo = std::log(1e-6);
  const double log_hi = std::log(64.0);
  constexpr int kSteps = 4000;
  for (int i = 0; i <= kSteps; ++i) {
    const double eta =
        std::exp(log_lo + (log_hi - log_lo) * i / static_cast<double>(kSteps));
    const double denom = (static_cast<double>(c) - 1.0) * gamma *
                         std::pow(eta * static_cast<double>(w), z);
    const double value = std::pow(3.0, -eta) * (1.0 - eta / denom);
    best = std::max(best, value);
  }
  return Clamp01(best);
}

double OptimalSlotsPerBucket(double z) {
  CAFE_CHECK(z > 1.0) << "Corollary 3.5 requires z > 1";
  return 1.0 + 1.0 / (z - 1.0);
}

}  // namespace theory
}  // namespace cafe
