#ifndef CAFE_CORE_THEORY_H_
#define CAFE_CORE_THEORY_H_

#include <cstdint>

namespace cafe {

/// Numeric evaluation of the paper's HotSketch guarantees (§3.5.1). Used by
/// bench/fig7_theory to regenerate Figure 7 and by tests to cross-check the
/// sketch's empirical recall against theory.
namespace theory {

/// Theorem 3.1 (distribution-free): lower bound on the probability that a
/// feature carrying a `gamma` share of the total importance mass is held by
/// a HotSketch with `w` buckets and `c` slots per bucket.
/// Pr > 1 - (1-gamma) / ((c-1) * gamma * w). Clamped to [0, 1].
double HoldProbabilityLowerBound(uint64_t w, uint32_t c, double gamma);

/// Theorem 3.3 (Zipf(z) streams): lower bound
///   Pr > sup_{eta>0} 3^{-eta} * (1 - eta / ((c-1) * gamma * (eta*w)^z)).
/// The supremum is evaluated numerically on a log-spaced eta grid.
/// Clamped to [0, 1].
double ZipfHoldProbabilityLowerBound(uint64_t w, uint32_t c, double gamma,
                                     double z);

/// Corollary 3.5: the recall-optimal slots-per-bucket under a fixed memory
/// budget for a Zipf(z) stream, c* = 1 + 1/(z-1). Requires z > 1.
double OptimalSlotsPerBucket(double z);

}  // namespace theory
}  // namespace cafe

#endif  // CAFE_CORE_THEORY_H_
