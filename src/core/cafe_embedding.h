#ifndef CAFE_CORE_CAFE_EMBEDDING_H_
#define CAFE_CORE_CAFE_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/hash.h"
#include "core/cafe_config.h"
#include "embed/batch_dedup.h"
#include "embed/dirty_rows.h"
#include "embed/embedding_store.h"
#include "sketch/hot_sketch.h"

namespace cafe {

/// CAFE: the paper's Compact, Adaptive, Fast embedding layer (§3).
///
/// A HotSketch tracks per-feature importance (gradient L2 norms). Features
/// whose score exceeds the hot threshold own an exclusive row in the hot
/// table (the sketch slot's payload stores the row index, standing in for
/// the paper's pointer); everything else shares rows of hash table A, and —
/// with multi-level enabled (§3.4) — features above the medium threshold
/// additionally pool a row from hash table B.
///
/// Migration (§3.3):
///  - promotion happens inline in ApplyGradient when a feature's score
///    crosses the hot threshold: its current shared embedding is copied into
///    the claimed exclusive row so learning stays smooth;
///  - demotion happens when scores fall below the threshold after periodic
///    decay (Tick) or when the sketch evicts the feature; the exclusive row
///    is simply discarded and the shared row serves again.
///
/// Thresholds: fixed (paper Figure 15(b) sweep) or auto-derived at each
/// maintenance tick so the hot table stays saturated (default).
class CafeEmbedding : public EmbeddingStore {
 public:
  /// Forward-path classification, exposed for stats and tests.
  enum class Path { kHot, kMedium, kCold };

  struct PathStats {
    uint64_t hot = 0;
    uint64_t medium = 0;
    uint64_t cold = 0;
  };

  static StatusOr<std::unique_ptr<CafeEmbedding>> Create(
      const CafeConfig& config);

  uint32_t dim() const override { return config_.embedding.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  void Tick() override;
  size_t MemoryBytes() const override;
  std::string Name() const override {
    return config_.use_multi_level ? "cafe-ml" : "cafe";
  }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

  /// Classification a lookup of `id` would take right now.
  Path ClassifyForTest(uint64_t id) const;

  const CafeConfig& config() const { return config_; }
  const CafeMemoryPlan& plan() const { return plan_; }
  const HotSketch& sketch() const { return sketch_; }
  double hot_threshold() const { return hot_threshold_; }
  double medium_threshold() const { return medium_threshold_; }
  /// Currently allocated exclusive rows.
  uint64_t hot_count() const {
    return plan_.hot_capacity - free_rows_.size();
  }
  uint64_t migrations() const { return migrations_; }
  uint64_t demotions() const { return demotions_; }
  const PathStats& lookup_stats() const { return lookup_stats_; }
  void ResetLookupStats() { lookup_stats_ = PathStats{}; }

 private:
  CafeEmbedding(const CafeConfig& config, const CafeMemoryPlan& plan);

  /// One forward resolution (sketch probe + path classification + row
  /// copy), counted as `occurrences` lookups in the stats. The scalar path
  /// calls it per id, the batched path once per unique id.
  void LookupOne(uint64_t id, float* out, uint64_t occurrences);

  /// Sketch insertion, promotion/demotion, and the SGD step for one feature
  /// whose batch importance is `importance` (gradient-norm metric: L2 norm
  /// of `grad`; frequency metric: number of occurrences). With `defer_u >= 0`
  /// (the sharded batch path) the decision machine runs unchanged but the
  /// SGD step is recorded as a deferred op on the target global row(s) for
  /// the parallel scatter instead of applied inline; `defer_u` is the
  /// feature's unique index into `grad_accum_`.
  void ApplyGradientOne(uint64_t id, const float* grad, float lr,
                        double importance, int64_t defer_u = -1);

  /// Writes the shared-table representation of `id` (used for cold/medium
  /// lookups and as migration initialization).
  void SharedLookup(uint64_t id, bool medium, float* out) const;

  struct ResolvedRow;

  /// Pass 1 of the dedup'd batch lookup: probes the sketch once per unique
  /// id of `dedup` (bucket-prefetched) and records each id's resolved row
  /// pointer(s) in `rows`. Classification is read-only; `stats` (when not
  /// null — the training path) is advanced by the occurrence counts. The
  /// ONE copy of CAFE's resolution rules shared by LookupBatch and
  /// LookupBatchConst, so the serving path can never drift from the
  /// training path.
  void ResolveUniqueRows(const BatchDeduper& dedup,
                         std::vector<ResolvedRow>* rows,
                         PathStats* stats) const;

  /// Pass 2: materializes each unique id's row(s) at its first occurrence
  /// in `out` (row-prefetched) and replicates to duplicate occurrences.
  void MaterializeUniqueRows(const BatchDeduper& dedup,
                             const std::vector<ResolvedRow>& rows, size_t n,
                             float* out, size_t out_stride) const;

  /// Tries to claim an exclusive row for the feature in `slot`; returns
  /// true and installs the payload on success.
  bool TryPromote(uint64_t id, HotSketch::Slot* slot);

  void FreeRow(int32_t row);

  /// Refreshes hot/medium thresholds from current sketch contents
  /// (auto-threshold mode).
  void RefreshThresholds();

  /// Rebuilds the swap-victim queue from per-interval hot-slot growth.
  void RefreshVictimQueue();

  size_t FieldQuotaIndex(uint64_t id) const;

  CafeConfig config_;
  CafeMemoryPlan plan_;
  HotSketch sketch_;
  SeededHash hash_a_;
  SeededHash hash_b_;

  std::vector<float> hot_table_;    // hot_capacity x dim
  std::vector<float> shared_a_;     // shared_rows_a x dim
  std::vector<float> shared_b_;     // shared_rows_b x dim (multi-level)
  std::vector<int32_t> free_rows_;

  // Per-field exclusive-row quotas (Figure 15(d) ablation); empty when
  // per_field_hot is off.
  std::vector<uint64_t> field_quota_;
  std::vector<uint64_t> field_used_;

  double hot_threshold_ = 0.0;
  double medium_threshold_ = 0.0;
  // Per-row sketch score at the last maintenance tick. Hot slots are
  // protected from eviction, so (score - prev) over one interval is exactly
  // the feature's own importance traffic — the honest baseline candidates
  // must beat to take the row.
  std::vector<float> row_prev_score_;
  // Hot slots ordered by last-interval growth (ascending): the swap-victim
  // queue for competitive promotion. Rebuilt at every tick.
  std::vector<std::pair<double, int64_t>> victim_queue_;
  size_t victim_idx_ = 0;
  uint64_t iteration_ = 0;
  uint64_t migrations_ = 0;
  uint64_t demotions_ = 0;
  PathStats lookup_stats_;

  // Batch scratch, reused across calls: sketch probes and promotion checks
  // run once per unique id in the batch.
  BatchDeduper dedup_;
  std::vector<float> grad_accum_;        // num_unique x dim
  std::vector<double> importance_accum_; // num_unique
  /// A unique id's resolved embedding source: one row (b == nullptr) or a
  /// medium feature's pooled pair of rows.
  struct ResolvedRow {
    const float* a = nullptr;
    const float* b = nullptr;
  };
  std::vector<ResolvedRow> row_ptr_scratch_;  // num_unique

  // Deferred-SGD machinery for the sharded batch path. CAFE's migration
  // decisions are inherently sequential (each Insert/promotion/demotion
  // depends on the sketch state left by the previous one), so the sharded
  // backward runs the decision machine serially and defers only the
  // embarrassingly-parallel part — the dim-wide SGD steps — as ops keyed by
  // GLOBAL row: hot [0, H), shared A [H, H+A), shared B [H+A, H+A+B).
  // Ops on one row chain together in decision order; when the machine must
  // read or overwrite a row's floats mid-batch (TryPromote's migration
  // copy), FlushRow drains that row's chain first so the floats match the
  // serial machine at that point of the unique stream. Generation stamps
  // make chain reset O(touched rows) per batch.
  struct DeferredOp {
    uint64_t row;    // global row index
    uint32_t u;      // unique index into grad_accum_
    int32_t next;    // next op on the same row, -1 = end
    bool applied;    // drained by FlushRow before the parallel scatter
  };
  float* RowAtGlobal(uint64_t row) {
    const uint32_t d = config_.embedding.dim;
    if (row < plan_.hot_capacity) {
      return hot_table_.data() + static_cast<size_t>(row) * d;
    }
    row -= plan_.hot_capacity;
    if (row < plan_.shared_rows_a) {
      return shared_a_.data() + static_cast<size_t>(row) * d;
    }
    return shared_b_.data() +
           static_cast<size_t>(row - plan_.shared_rows_a) * d;
  }
  void DeferOp(uint64_t row, uint32_t u);
  void FlushRow(uint64_t row);
  std::vector<DeferredOp> deferred_ops_;
  std::vector<uint64_t> row_gen_;   // per global row, last batch generation
  std::vector<int32_t> row_head_;   // per global row, first pending op
  std::vector<int32_t> row_tail_;   // per global row, last pending op
  uint64_t batch_gen_ = 0;
  float deferred_lr_ = 0.0f;

  /// Marks the bucket owning sketch slot `slot_index` dirty.
  void MarkBucket(int64_t slot_index) {
    dirty_buckets_.Mark(static_cast<uint64_t>(slot_index) /
                        config_.slots_per_bucket);
  }

  // Incremental-snapshot tracking. Big arrays are row-keyed: the three
  // embedding tables plus the sketch (keyed by BUCKET — one Insert touches
  // one bucket, so dirty buckets scale with unique ids like dirty rows).
  // A maintenance tick decays every sketch slot and rebuilds the victim
  // queue / growth snapshot wholesale, so it flags those sections fully
  // dirty for the next delta; the remaining machinery (counters,
  // thresholds, free list, per-field usage) is O(hot) and travels with
  // every delta.
  DirtyRowSet dirty_hot_;
  DirtyRowSet dirty_shared_a_;
  DirtyRowSet dirty_shared_b_;
  DirtyRowSet dirty_buckets_;
  /// Decay ticks since the last SaveDelta. Decay multiplies every slot by
  /// one fixed coefficient, so the delta ships this count and the apply
  /// side replays sketch_.Decay() deterministically — O(1) on the wire
  /// instead of the whole slot array.
  uint64_t pending_decay_ticks_ = 0;
  bool maintenance_dirty_ = false;

  // Registry mirrors (store.cafe.* / store.cafe-ml.*), bound in the
  // constructor. The serialized counters above (migrations_, demotions_,
  // lookup_stats_) stay members because SaveState/SaveDelta carry them and
  // parity tests assert byte-identical output; the registry handles are
  // additive process-wide mirrors that survive ResetLookupStats and
  // snapshot cuts.
  obs::Counter* obs_migrations_ = nullptr;
  obs::Counter* obs_demotions_ = nullptr;
  obs::Counter* obs_decay_ticks_ = nullptr;
  obs::Counter* obs_lookup_hot_ = nullptr;
  obs::Counter* obs_lookup_medium_ = nullptr;
  obs::Counter* obs_lookup_cold_ = nullptr;
  obs::Gauge* obs_hot_occupancy_ = nullptr;
  obs::Gauge* obs_victim_queue_depth_ = nullptr;
  obs::Gauge* obs_hot_threshold_ = nullptr;
};

}  // namespace cafe

#endif  // CAFE_CORE_CAFE_EMBEDDING_H_
