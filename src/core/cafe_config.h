#ifndef CAFE_CORE_CAFE_CONFIG_H_
#define CAFE_CORE_CAFE_CONFIG_H_

#include <cstdint>

#include "common/status.h"
#include "embed/embedding_store.h"

namespace cafe {

/// How CAFE measures feature importance (paper §5.3, Figure 15(d)):
/// gradient L2 norms (the paper's choice, theoretically motivated in
/// §3.5.2) or raw occurrence frequency (the ablation).
enum class ImportanceMetric {
  kGradNorm,
  kFrequency,
};

/// Full configuration of a CafeEmbedding.
struct CafeConfig {
  /// Base sizing: feature count, dimension, compression ratio, seed.
  EmbeddingConfig embedding;

  /// Fraction of the memory budget given to HotSketch + the exclusive
  /// (hot) table; the rest goes to the shared hash table(s). The paper
  /// finds ~0.7 optimal across compression ratios (§5.3, Figure 15(a)).
  double hot_percentage = 0.7;

  /// Slots per HotSketch bucket; the paper uses 4 (§4).
  uint32_t slots_per_bucket = 4;

  /// Importance-score threshold above which a feature becomes hot
  /// (§3.3). Only used when auto_threshold is false; the paper tunes it
  /// per dataset (500 on Criteo at 1000x, Figure 15(b)).
  double hot_threshold = 500.0;

  /// When true (default), the threshold is re-derived at every maintenance
  /// tick as the score of the (hot capacity)-th hottest sketch entry, which
  /// keeps the exclusive table saturated at any scale without hand-tuning —
  /// the saturation goal the paper describes ("the threshold is meticulously
  /// set, allowing HotSketch to always saturate with hot features").
  bool auto_threshold = true;

  /// Multiplicative score decay applied every decay_interval iterations
  /// (§3.3 / Figure 15(c); 0.98 is the paper's best on Criteo).
  double decay_coefficient = 0.98;

  /// Iterations between maintenance ticks (decay + demotion scan +
  /// threshold refresh).
  uint64_t decay_interval = 1000;

  /// When the exclusive table is full, a promotion candidate replaces the
  /// currently weakest hot feature if its guaranteed score exceeds the
  /// weakest one's by this factor. Competitive swapping lets the true hot
  /// set displace cold-start occupants without waiting for decay.
  double promote_margin = 1.5;

  /// In auto-threshold mode, a hot feature is demoted only when its score
  /// falls below hysteresis * threshold. Without slack, the kth-largest
  /// threshold sits exactly on the boundary of the hot set and sketch
  /// overestimation noise would demote/promote features every tick,
  /// discarding their learned embeddings each time.
  double demotion_hysteresis = 0.5;

  /// Enables multi-level (2-level) hash embedding for non-hot features
  /// (§3.4): medium features pool two rows from two tables, cold features
  /// read one row from the first table. "CAFE-ML" in the paper.
  bool use_multi_level = false;

  /// Medium-feature threshold as a fraction of the hot threshold.
  double medium_threshold_fraction = 0.2;

  /// Share of the non-hot memory given to the second (medium-only) table.
  double medium_table_fraction = 1.0 / 3.0;

  /// Importance metric (Figure 15(d) ablation).
  ImportanceMetric importance = ImportanceMetric::kGradNorm;

  /// When non-empty together with per_field_hot, splits the exclusive table
  /// into per-field sub-tables sized by cardinality (the ablation the paper
  /// shows is WORSE than one global table, Figure 15(d)).
  bool per_field_hot = false;
  FieldLayout field_layout;

  Status Validate() const;
};

/// The derived memory plan: how the byte budget splits into sketch, hot
/// table and shared table(s). Computed by CafeMemoryPlan::Compute and
/// exposed so benches (and the offline-separation control) can mirror
/// CAFE's split exactly.
struct CafeMemoryPlan {
  uint64_t budget_bytes = 0;
  uint64_t hot_capacity = 0;    ///< exclusive rows == sketch buckets
  uint64_t sketch_bytes = 0;
  uint64_t hot_table_bytes = 0;
  uint64_t shared_rows_a = 0;   ///< first (cold+medium) hash table rows
  uint64_t shared_rows_b = 0;   ///< second (medium-only) table rows
  uint64_t shared_bytes = 0;

  static StatusOr<CafeMemoryPlan> Compute(const CafeConfig& config,
                                          size_t slot_bytes);
};

}  // namespace cafe

#endif  // CAFE_CORE_CAFE_CONFIG_H_
