#ifndef CAFE_SERVE_SNAPSHOT_MANAGER_H_
#define CAFE_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "embed/embedding_store.h"
#include "models/model.h"
#include "serve/swappable_store.h"

namespace cafe {

/// Cuts consistent ServingSnapshots from a store (and optionally a model)
/// that is STILL TAKING gradient updates — the online half of the rollout
/// subsystem. No full quiesce: the server never drains and the trainer
/// never stops for a rebuild; it pauses only for the in-memory state copy.
///
/// The scheme is epoch-based double buffering, where an epoch is a training
/// step boundary:
///
///   trainer thread                      rollout thread
///   --------------                      --------------
///   TrainStep(batch k)                  Cut(): request + wait
///   AtStepBoundary(k):
///     state -> WRITE buffer  ----+
///   TrainStep(batch k+1)        +--->   claim buffer (now the READ buffer)
///   TrainStep(batch k+2)                publish off the trainer thread
///   AtStepBoundary(k+2):                (next Cut may already be copying)
///     state -> fresh WRITE buffer
///
/// Between gradient steps the store is consistent (every mutation happens
/// inside ApplyGradient*/Tick on the trainer thread), so the copy taken at
/// a boundary is exactly the state a quiesced freeze at that step would
/// capture — bit-identical, which tests/hot_swap_test.cc asserts. The copy
/// is the mutable state exposed by SaveState (tables, sketches, thresholds,
/// RNG — the complete continued-training state), so the expensive publish
/// runs on the rollout thread while training continues; ownership of the
/// hand-off buffer moves between the two threads at the epoch boundary,
/// never shared.
///
/// When no trainer is active (before BeginTraining / after FinishTraining)
/// Cut() copies directly on the calling thread — the store is quiescent by
/// contract then, which is how the initial and final generations are cut.
///
/// # Full cuts (Options::incremental == false)
///
/// Every cut copies the full SaveState payload and publishes by LoadState
/// into a factory-fresh store — each snapshot is self-contained, any number
/// of generations can be retained side by side, and both the trainer pause
/// and the publish are O(store bytes).
///
/// # Incremental cuts (Options::incremental == true)
///
/// The WHOLE path is O(rows changed since the last cut):
///
///  - Trainer copy: the first serviced cut copies the full SaveState base
///    and switches the store's dirty-row tracking on at the same boundary;
///    every later cut copies only a SaveDelta.
///  - Publish: the manager keeps TWO resident ping-pong buffer stores. Each
///    payload is queued to both; a cut drains the NON-serving buffer's
///    lagging queue (the deltas it missed while it was pinned by the
///    previous-but-one generation) directly via LoadDelta, then freezes and
///    publishes that buffer with a no-copy handoff
///    (FrozenStore::AdoptShared) while the previous generation keeps
///    serving from the other buffer. No full serialize, no LoadState, no
///    fresh store per publish — steady-state publish cost is two delta
///    applications.
///  - Reclaim: each published snapshot carries a lease on its buffer; the
///    buffer only re-enters delta replay once every holder — including
///    outstanding SwappableStore PinScopes — has dropped the snapshot
///    (Install() retires the outgoing generation; the last pin releases the
///    lease). If a consumer retains an old generation past
///    Options::reclaim_wait_us, the manager RETIRES that buffer to the
///    holder (shared ownership keeps it alive) and rebuilds a replacement
///    from the serving buffer's SaveState — an O(store) fallback that keeps
///    every generation correct at the cost of one full rebuild, counted in
///    Stats::retired_buffers.
///
/// Either way every published generation is bit-identical to a quiesced
/// SaveState freeze at its step — the invariant the hot-swap/parity test
/// batteries assert for all 9 stores, under TSan.
///
/// Incremental-mode retention contract: at most the two most recent
/// generations can be held WITHOUT forcing retire fallbacks; a rollout loop
/// that installs each snapshot into a SwappableStore (dropping its own
/// reference) satisfies it naturally. A snapshot may outlive the manager —
/// shared buffer ownership keeps its store alive.
class SnapshotManager {
 public:
  /// Builds a fresh, untrained store of the live store's exact
  /// configuration (the checkpoint-restore contract: state is copied into
  /// it via LoadState).
  using FreshStoreFactory =
      std::function<StatusOr<std::unique_ptr<EmbeddingStore>>()>;

  /// One boundary copy, as handed to Options::payload_observer: exactly
  /// the bytes a replica must replay to reach `generation` (a full
  /// SaveState base, or a SaveDelta relative to generation - 1), plus the
  /// sidecar the snapshot carries. The pointers are valid only for the
  /// duration of the observer call; `payload` may be retained (it is the
  /// same shared buffer the publish path replays, never copied).
  struct BoundaryPayload {
    uint64_t generation = 0;
    uint64_t train_step = 0;
    bool is_delta = false;
    std::shared_ptr<const std::string> payload;
    const std::vector<std::vector<float>>* dense_params = nullptr;
    const std::string* optimizer_state = nullptr;
    bool has_optimizer = false;
    const std::string* model_name = nullptr;
  };

  /// Observes every successful boundary copy, invoked from Cut() after the
  /// generation is claimed and BEFORE the local publish (a replica stream
  /// never waits on the local buffer swap, and still sees a generation
  /// whose local publish later failed — the failure poisons the LOCAL
  /// chain; the shipped payload itself is consistent). Calls may arrive
  /// out of generation order when Cut() runs concurrently; consumers must
  /// reorder by `generation`. The observer must not call back into the
  /// manager.
  using PayloadObserver = std::function<void(const BoundaryPayload&)>;

  struct Options {
    /// Trainer steps that must elapse between serviced cuts; a pending
    /// request simply waits at the boundary until the interval is met.
    /// 0 services every request at the next boundary.
    uint64_t min_steps_between_cuts = 0;

    /// Replication tap (see BoundaryPayload above); null = disabled.
    PayloadObserver payload_observer;

    /// Incremental cuts + double-buffered O(dirty) publish (see the class
    /// comment). Requires a store with SupportsIncrementalSnapshots()
    /// (checked at construction).
    bool incremental = false;

    /// Also copy the live model's Optimizer::SaveState (Adagrad/Adam
    /// accumulators, Adam step counter) at the same boundary, making every
    /// snapshot a full training-resume checkpoint
    /// (serve/snapshot_checkpoint.h writes it as a v2 container). Adds the
    /// optimizer serialize to the trainer pause. Requires a live model.
    bool capture_optimizer = false;

    /// Incremental mode: how long a publish waits for the target buffer's
    /// lease before giving up and retiring it (O(store) rebuild fallback).
    /// In a healthy rollout the lease released a whole cut interval ago;
    /// this only bites consumers that retain generations.
    uint64_t reclaim_wait_us = 20000;
  };

  /// `live_store` (and `live_model`, when not null) must outlive the
  /// manager; `live_model`'s dense parameters are captured into each
  /// snapshot at the same boundary as the store state. Pass a null model
  /// for store-only snapshots.
  SnapshotManager(EmbeddingStore* live_store, RecModel* live_model,
                  FreshStoreFactory factory, const Options& options);
  SnapshotManager(EmbeddingStore* live_store, RecModel* live_model,
                  FreshStoreFactory factory);

  /// Switches the live store's dirty tracking back off (incremental mode)
  /// with a FULL epoch reset, so a fresh manager on the same live store —
  /// even after this one's publish chain was poisoned — rebases cleanly.
  /// The caller must have stopped training and joined every Cut() caller
  /// first — the same quiescence the rest of teardown already requires.
  /// Outstanding snapshots stay valid: their buffers are co-owned.
  ~SnapshotManager();

  /// Trainer thread: call once between TrainStep k and k+1 (and never
  /// concurrently with mutations). Near-free when no cut is pending (one
  /// relaxed atomic load); services a pending request by copying the
  /// store's state + the model's dense weights into the hand-off buffer.
  void AtStepBoundary(uint64_t step);

  /// Marks the trainer active: Cut() now blocks for a boundary copy
  /// instead of copying directly.
  void BeginTraining();

  /// Trainer thread, after the last step: wakes any cutter still waiting
  /// (it falls back to a direct copy — the store is quiescent again) and
  /// returns Cut() to direct-copy mode. `final_step` labels those cuts.
  void FinishTraining(uint64_t final_step);

  /// Rollout thread: returns a consistent snapshot of the live state.
  /// Active trainer: blocks until the next (interval-eligible) step
  /// boundary copy, then publishes off the trainer thread. Idle trainer:
  /// copies directly on this thread. Concurrent Cut() calls are safe; they
  /// serialize on the hand-off and (incremental mode) publish in claim
  /// order.
  StatusOr<std::shared_ptr<const ServingSnapshot>> Cut();

  /// True while a Cut() is waiting for a step boundary to copy at. Lets
  /// tests (and cautious trainers) sequence deterministically against the
  /// rollout thread; the training loop itself only needs AtStepBoundary.
  bool cut_pending() const {
    return cut_requested_.load(std::memory_order_acquire);
  }

  struct Stats {
    uint64_t cuts = 0;
    /// Cuts serviced as deltas (incremental mode; the first cut is a base).
    uint64_t delta_cuts = 0;
    /// Incremental publishes that hit the retire fallback (the target
    /// buffer's generation was still held past reclaim_wait_us, forcing an
    /// O(store) rebuild). 0 in a healthy install-and-release rollout.
    uint64_t retired_buffers = 0;
    /// Trainer pause per cut (the state copy) — the cost training pays.
    double last_copy_us = 0.0;
    double max_copy_us = 0.0;
    /// Bytes of the last boundary copy (full SaveState or delta payload).
    uint64_t last_copy_bytes = 0;
    /// Off-trainer publish per cut, split into the delta/base replay into
    /// the target buffer (apply) and the whole publish (reclaim wait +
    /// apply + freeze). Incremental mode: apply bytes are the lagging-queue
    /// payload bytes folded into the published buffer — O(dirty) in steady
    /// state. Full mode: apply == the LoadState rebuild, bytes == the full
    /// payload.
    double last_apply_us = 0.0;
    uint64_t last_apply_bytes = 0;
    double last_publish_us = 0.0;
    double max_publish_us = 0.0;
    /// Back-compat aliases of the publish timings (pre-double-buffer name).
    double last_rebuild_us = 0.0;
    double max_rebuild_us = 0.0;
  };
  Stats stats() const;

 private:
  /// One queued copy payload awaiting replay into a buffer.
  struct PendingPayload {
    uint64_t generation = 0;
    bool is_delta = false;
    /// Shared between the two buffers' queues (applied once per buffer,
    /// through a borrowing io::Reader — never copied).
    std::shared_ptr<const std::string> payload;
  };

  /// One resident ping-pong buffer. Only the publish-turn holder touches a
  /// slot (publishes are generation-sequenced), so no per-slot lock.
  struct BufferSlot {
    std::shared_ptr<EmbeddingStore> store;  // null until first materialized
    /// Generation whose state the store currently holds.
    uint64_t state_gen = 0;
    /// Payloads newer than state_gen, oldest first (the lagging queue).
    std::deque<PendingPayload> pending;
  };

  /// Lease bookkeeping shared with outstanding snapshots' lease deleters;
  /// lives in a shared_ptr so a snapshot outliving the manager releases
  /// against valid memory.
  struct LeaseState {
    std::mutex mu;
    std::condition_variable cv;
    bool leased[2] = {false, false};
    /// Bumped per lease hand-out AND per retire: a retired (stale) lease's
    /// eventual release compares its token against this and no-ops, so it
    /// can never clear a lease the replacement buffer handed out later.
    uint64_t epoch[2] = {0, 0};
  };

  /// Copies live state into the hand-off buffer — the full SaveState
  /// payload, or (incremental mode, after the base) a SaveDelta — plus the
  /// model's dense weights and (capture_optimizer) optimizer state. Caller
  /// holds mu_ and guarantees the store is not being mutated (trainer
  /// thread at a boundary, or no trainer active).
  void CopyStateLocked(uint64_t step);

  /// Factory call + null/name validation.
  StatusOr<std::unique_ptr<EmbeddingStore>> MakeValidatedFreshStore();

  /// Incremental-mode publish for `generation`: queue the payload to both
  /// buffers, wait for the publish turn, reclaim-or-retire the target
  /// buffer, drain its lagging queue via LoadDelta/LoadState, freeze it
  /// into `out` with a lease. Fills the apply/publish stats fields.
  Status PublishIncremental(std::shared_ptr<const std::string> payload,
                            bool is_delta, uint64_t generation,
                            ServingSnapshot* out);

  /// Waits up to reclaim_wait_us for `slot`'s lease, else retires the
  /// buffer to its holder and rebuilds a replacement at generation
  /// `generation - 1` from the other (serving) buffer's SaveState.
  Status ReclaimOrRetire(size_t slot, uint64_t generation, bool* retired);

  /// One definition of the per-publish Stats update (apply/publish splits,
  /// maxes, the last_rebuild_us aliases, the retire counter), shared by the
  /// incremental and full publish paths so the two modes cannot drift.
  void RecordPublishStats(double apply_us, uint64_t apply_bytes,
                          double publish_us, bool retired);

  EmbeddingStore* live_store_;
  RecModel* live_model_;
  FreshStoreFactory factory_;
  Options options_;
  std::string live_name_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Fast-path flag the trainer polls; mu_ guards the slow path.
  std::atomic<bool> cut_requested_{false};
  bool copy_ready_ = false;
  bool training_active_ = false;
  uint64_t last_step_ = 0;
  uint64_t last_cut_step_ = 0;
  /// Incremental mode: true once the base copy + EnableDirtyTracking ran
  /// at a boundary (subsequent copies are deltas). Guarded by mu_.
  bool base_cut_done_ = false;
  // Hand-off buffer (the write buffer until claimed by Cut(), which moves
  // it out and leaves a fresh one behind — the double-buffer exchange).
  std::string pending_payload_;
  bool pending_is_delta_ = false;
  std::vector<std::vector<float>> pending_dense_;
  std::string pending_optimizer_;
  bool pending_has_optimizer_ = false;
  std::string pending_model_name_;
  uint64_t pending_step_ = 0;
  Status pending_status_;
  /// Guarded by mu_; assigned at claim time so generation order == step
  /// order regardless of publish completion order.
  uint64_t next_generation_ = 0;

  /// Incremental-mode publish state. Publishes MUST run in claim order
  /// (each delta is relative to the buffers' current state), so publishers
  /// sequence on published_generation_ under publish_mu_; the turn holder
  /// then works on the buffers unlocked (no other thread touches them until
  /// it advances the generation). A failed publish poisons the chain:
  /// every later incremental cut fails fast instead of publishing divergent
  /// state. Lease state lives separately (leases_) so a serving thread
  /// releasing the last pin never contends with an in-flight apply.
  std::mutex publish_mu_;
  std::condition_variable publish_cv_;
  uint64_t published_generation_ = 0;
  Status publish_status_;
  BufferSlot buffers_[2];
  std::shared_ptr<LeaseState> leases_;

  Stats stats_;
};

}  // namespace cafe

#endif  // CAFE_SERVE_SNAPSHOT_MANAGER_H_
