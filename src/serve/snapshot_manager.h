#ifndef CAFE_SERVE_SNAPSHOT_MANAGER_H_
#define CAFE_SERVE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "embed/embedding_store.h"
#include "models/model.h"
#include "serve/swappable_store.h"

namespace cafe {

/// Cuts consistent ServingSnapshots from a store (and optionally a model)
/// that is STILL TAKING gradient updates — the online half of the rollout
/// subsystem. No full quiesce: the server never drains and the trainer
/// never stops for a rebuild; it pauses only for the in-memory state copy.
///
/// The scheme is epoch-based double buffering, where an epoch is a training
/// step boundary:
///
///   trainer thread                      rollout thread
///   --------------                      --------------
///   TrainStep(batch k)                  Cut(): request + wait
///   AtStepBoundary(k):
///     state -> WRITE buffer  ----+
///   TrainStep(batch k+1)        +--->   claim buffer (now the READ buffer)
///   TrainStep(batch k+2)                rebuild fresh store <- READ buffer
///   AtStepBoundary(k+2):                FrozenStore::Adopt -> snapshot
///     state -> fresh WRITE buffer       (next Cut may already be copying)
///
/// Between gradient steps the store is consistent (every mutation happens
/// inside ApplyGradient*/Tick on the trainer thread), so the copy taken at
/// a boundary is exactly the state a quiesced freeze at that step would
/// capture — bit-identical, which tests/hot_swap_test.cc asserts. The copy
/// is the mutable state exposed by SaveState (tables, sketches, thresholds,
/// RNG — the complete continued-training state), so the expensive rebuild
/// (LoadState into a factory-fresh store) runs on the rollout thread while
/// training continues; ownership of the buffer moves between the two
/// threads at the epoch boundary, never shared.
///
/// When no trainer is active (before BeginTraining / after FinishTraining)
/// Cut() copies directly on the calling thread — the store is quiescent by
/// contract then, which is how the initial and final generations are cut.
///
/// With Options::incremental the boundary copy shrinks from O(store bytes)
/// to O(rows changed since the last cut): the first serviced cut copies the
/// full SaveState payload and switches the store's dirty-row tracking on at
/// the same boundary; later cuts copy only a SaveDelta. The rollout side
/// keeps ONE resident staging store in sync (base + deltas replayed in
/// claim order) and publishes every snapshot from it, so each published
/// generation is still bit-identical to a quiesced freeze at its step —
/// the same guarantee as full cuts, at a trainer pause proportional to the
/// write set.
class SnapshotManager {
 public:
  /// Builds a fresh, untrained store of the live store's exact
  /// configuration (the checkpoint-restore contract: state is copied into
  /// it via LoadState).
  using FreshStoreFactory =
      std::function<StatusOr<std::unique_ptr<EmbeddingStore>>()>;

  struct Options {
    /// Trainer steps that must elapse between serviced cuts; a pending
    /// request simply waits at the boundary until the interval is met.
    /// 0 services every request at the next boundary.
    uint64_t min_steps_between_cuts = 0;

    /// Incremental cuts: the FIRST serviced cut copies the store's full
    /// SaveState payload and enables dirty-row tracking at the same step
    /// boundary; every later cut copies only a SaveDelta — the trainer's
    /// pause becomes O(rows changed since the last cut) instead of
    /// O(store bytes). The rollout side maintains a resident staging store
    /// (base + deltas applied in claim order) and publishes each snapshot
    /// from it, so rebuild cost and memory stay flat no matter how many
    /// deltas have been cut. Requires a store with
    /// SupportsIncrementalSnapshots() (checked at construction).
    bool incremental = false;
  };

  /// `live_store` (and `live_model`, when not null) must outlive the
  /// manager; `live_model`'s dense parameters are captured into each
  /// snapshot at the same boundary as the store state. Pass a null model
  /// for store-only snapshots.
  SnapshotManager(EmbeddingStore* live_store, RecModel* live_model,
                  FreshStoreFactory factory, const Options& options);
  SnapshotManager(EmbeddingStore* live_store, RecModel* live_model,
                  FreshStoreFactory factory);

  /// Switches the live store's dirty tracking back off (incremental mode).
  /// The caller must have stopped training and joined every Cut() caller
  /// first — the same quiescence the rest of teardown already requires.
  ~SnapshotManager();

  /// Trainer thread: call once between TrainStep k and k+1 (and never
  /// concurrently with mutations). Near-free when no cut is pending (one
  /// relaxed atomic load); services a pending request by copying the
  /// store's state + the model's dense weights into the hand-off buffer.
  void AtStepBoundary(uint64_t step);

  /// Marks the trainer active: Cut() now blocks for a boundary copy
  /// instead of copying directly.
  void BeginTraining();

  /// Trainer thread, after the last step: wakes any cutter still waiting
  /// (it falls back to a direct copy — the store is quiescent again) and
  /// returns Cut() to direct-copy mode. `final_step` labels those cuts.
  void FinishTraining(uint64_t final_step);

  /// Rollout thread: returns a consistent snapshot of the live state.
  /// Active trainer: blocks until the next (interval-eligible) step
  /// boundary copy, then rebuilds off the trainer thread. Idle trainer:
  /// copies directly on this thread. Concurrent Cut() calls are safe and
  /// serialize on the hand-off, not on the rebuild.
  StatusOr<std::shared_ptr<const ServingSnapshot>> Cut();

  /// True while a Cut() is waiting for a step boundary to copy at. Lets
  /// tests (and cautious trainers) sequence deterministically against the
  /// rollout thread; the training loop itself only needs AtStepBoundary.
  bool cut_pending() const {
    return cut_requested_.load(std::memory_order_acquire);
  }

  struct Stats {
    uint64_t cuts = 0;
    /// Cuts serviced as deltas (incremental mode; the first cut is a base).
    uint64_t delta_cuts = 0;
    /// Trainer pause per cut (the state copy) — the cost training pays.
    double last_copy_us = 0.0;
    double max_copy_us = 0.0;
    /// Bytes of the last boundary copy (full SaveState or delta payload).
    uint64_t last_copy_bytes = 0;
    /// Off-trainer rebuild (LoadState + freeze) per cut.
    double last_rebuild_us = 0.0;
    double max_rebuild_us = 0.0;
  };
  Stats stats() const;

 private:
  /// Copies live state into the hand-off buffer — the full SaveState
  /// payload, or (incremental mode, after the base) a SaveDelta. Caller
  /// holds mu_ and guarantees the store is not being mutated (trainer
  /// thread at a boundary, or no trainer active).
  void CopyStateLocked(uint64_t step);

  /// Incremental-mode publish: applies `payload` (base or delta) to the
  /// resident staging store IN claim (generation) order, then serializes
  /// the staging store's full state for the fresh snapshot store. Returns
  /// the full-state payload.
  StatusOr<std::string> ApplyToStaging(std::string payload, bool is_delta,
                                       uint64_t generation);

  EmbeddingStore* live_store_;
  RecModel* live_model_;
  FreshStoreFactory factory_;
  Options options_;
  std::string live_name_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Fast-path flag the trainer polls; mu_ guards the slow path.
  std::atomic<bool> cut_requested_{false};
  bool copy_ready_ = false;
  bool training_active_ = false;
  uint64_t last_step_ = 0;
  uint64_t last_cut_step_ = 0;
  /// Incremental mode: true once the base copy + EnableDirtyTracking ran
  /// at a boundary (subsequent copies are deltas). Guarded by mu_.
  bool base_cut_done_ = false;
  // Hand-off buffer (the write buffer until claimed by Cut(), which moves
  // it out and leaves a fresh one behind — the double-buffer exchange).
  std::string pending_payload_;
  bool pending_is_delta_ = false;
  std::vector<std::vector<float>> pending_dense_;
  uint64_t pending_step_ = 0;
  Status pending_status_;
  /// Guarded by mu_; assigned at claim time so generation order == step
  /// order regardless of rebuild completion order.
  uint64_t next_generation_ = 0;

  /// Incremental-mode rollout-side state: the resident staging store the
  /// deltas replay into. Deltas MUST apply in claim order, so appliers
  /// sequence on applied_generation_ under staging_mu_ (concurrent Cut()
  /// callers' unlocked rebuilds can otherwise finish out of order). A
  /// failed apply poisons the staging store: every later incremental cut
  /// fails fast instead of publishing divergent state.
  std::mutex staging_mu_;
  std::condition_variable staging_cv_;
  std::unique_ptr<EmbeddingStore> staging_store_;
  uint64_t applied_generation_ = 0;
  Status staging_status_;

  Stats stats_;
};

}  // namespace cafe

#endif  // CAFE_SERVE_SNAPSHOT_MANAGER_H_
