#ifndef CAFE_SERVE_FROZEN_STORE_H_
#define CAFE_SERVE_FROZEN_STORE_H_

#include <memory>
#include <string>

#include "embed/embedding_store.h"

namespace cafe {

/// Read-only snapshot adapter over a trained EmbeddingStore — the serving
/// side of the train → checkpoint → serve pipeline.
///
/// A frozen store routes every lookup through the underlying store's
/// side-effect-free const path (LookupConst / LookupBatchConst): hot/cold
/// classification, sketch contents, and importance statistics are exactly
/// as they were at snapshot time and are never advanced, so lookups are
/// pure gathers with no bookkeeping. That is also the thread-safety
/// argument: the const paths touch no shared scratch, so ANY number of
/// serving threads may execute lookups concurrently.
///
/// FrozenStore derives EmbeddingStore so the whole existing execution stack
/// — EmbeddingLayerGroup, the models, the trainer's evaluation helpers —
/// runs over a snapshot unchanged. Mutating entry points (ApplyGradient*)
/// crash loudly: a frozen store in a training loop is a deployment bug, not
/// a recoverable condition.
///
/// Ownership: Adopt() freezes and owns a store (the usual serving setup:
/// load a checkpoint into a fresh store, hand it to the server); Wrap()
/// borrows one that must outlive the snapshot AND stay quiescent — any
/// concurrent training on the wrapped store is a data race. AdoptShared()
/// is the no-copy handoff for the double-buffered publish path: it freezes
/// a store the SnapshotManager keeps co-owning, so the same resident buffer
/// can be served now and handed back (through the snapshot's lease) for
/// delta replay once every reader — including outstanding PinScopes holding
/// the snapshot — is gone.
class FrozenStore : public EmbeddingStore {
 public:
  static std::unique_ptr<FrozenStore> Adopt(
      std::unique_ptr<EmbeddingStore> store);
  static std::unique_ptr<FrozenStore> AdoptShared(
      std::shared_ptr<EmbeddingStore> store);
  static std::unique_ptr<FrozenStore> Wrap(const EmbeddingStore* store);

  uint32_t dim() const override { return store_->dim(); }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;

  /// Frozen stores are read-only; calling these aborts.
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void Tick() override {}

  size_t MemoryBytes() const override { return store_->MemoryBytes(); }
  std::string Name() const override { return store_->Name() + "-frozen"; }

  const EmbeddingStore* underlying() const { return store_; }

 private:
  FrozenStore(const EmbeddingStore* store,
              std::unique_ptr<EmbeddingStore> owned,
              std::shared_ptr<EmbeddingStore> shared);

  const EmbeddingStore* store_;            // never null
  std::unique_ptr<EmbeddingStore> owned_;  // null unless Adopt()
  std::shared_ptr<EmbeddingStore> shared_;  // null unless AdoptShared()
};

}  // namespace cafe

#endif  // CAFE_SERVE_FROZEN_STORE_H_
