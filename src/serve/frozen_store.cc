#include "serve/frozen_store.h"

#include "common/logging.h"

namespace cafe {

FrozenStore::FrozenStore(const EmbeddingStore* store,
                         std::unique_ptr<EmbeddingStore> owned,
                         std::shared_ptr<EmbeddingStore> shared)
    : store_(store), owned_(std::move(owned)), shared_(std::move(shared)) {
  CAFE_CHECK(store_ != nullptr) << "frozen store needs an underlying store";
}

std::unique_ptr<FrozenStore> FrozenStore::Adopt(
    std::unique_ptr<EmbeddingStore> store) {
  const EmbeddingStore* raw = store.get();
  return std::unique_ptr<FrozenStore>(
      new FrozenStore(raw, std::move(store), nullptr));
}

std::unique_ptr<FrozenStore> FrozenStore::AdoptShared(
    std::shared_ptr<EmbeddingStore> store) {
  const EmbeddingStore* raw = store.get();
  return std::unique_ptr<FrozenStore>(
      new FrozenStore(raw, nullptr, std::move(store)));
}

std::unique_ptr<FrozenStore> FrozenStore::Wrap(const EmbeddingStore* store) {
  return std::unique_ptr<FrozenStore>(
      new FrozenStore(store, nullptr, nullptr));
}

void FrozenStore::Lookup(uint64_t id, float* out) {
  store_->LookupConst(id, out);
}

void FrozenStore::LookupConst(uint64_t id, float* out) const {
  store_->LookupConst(id, out);
}

void FrozenStore::LookupBatch(const uint64_t* ids, size_t n, float* out,
                              size_t out_stride) {
  store_->LookupBatchConst(ids, n, out, out_stride);
}

void FrozenStore::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                   size_t out_stride) const {
  store_->LookupBatchConst(ids, n, out, out_stride);
}

void FrozenStore::ApplyGradient(uint64_t id, const float* grad, float lr) {
  (void)id;
  (void)grad;
  (void)lr;
  CAFE_CHECK(false) << "ApplyGradient on a frozen store (" << Name()
                    << "): snapshots are read-only";
}

void FrozenStore::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                     const float* grads, size_t grad_stride,
                                     float lr, float clip) {
  (void)ids;
  (void)n;
  (void)grads;
  (void)grad_stride;
  (void)lr;
  (void)clip;
  CAFE_CHECK(false) << "ApplyGradientBatch on a frozen store (" << Name()
                    << "): snapshots are read-only";
}

}  // namespace cafe
