#include "serve/snapshot_checkpoint.h"

#include "io/checkpoint.h"
#include "io/serialize.h"
#include "serve/frozen_store.h"

namespace cafe {

Status WriteSnapshotCheckpoint(const ServingSnapshot& snapshot,
                               const std::string& path) {
  if (snapshot.store == nullptr) {
    return Status::InvalidArgument(
        "cannot checkpoint a snapshot with no store");
  }
  io::Writer store_state;
  CAFE_RETURN_IF_ERROR(snapshot.store->underlying()->SaveState(&store_state));

  if (snapshot.dense_params.empty() && snapshot.model_name.empty()) {
    return io::SaveCheckpointFromState(path,
                                       snapshot.store->underlying()->Name(),
                                       store_state.buffer(),
                                       /*model=*/nullptr);
  }
  io::CheckpointModelState model;
  model.model_name = snapshot.model_name;
  model.dense_blocks = &snapshot.dense_params;
  model.has_optimizer = snapshot.has_optimizer;
  model.optimizer_state = &snapshot.optimizer_state;
  return io::SaveCheckpointFromState(path,
                                     snapshot.store->underlying()->Name(),
                                     store_state.buffer(), &model);
}

}  // namespace cafe
