#include "serve/inference_server.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace cafe {
namespace {

/// Overwrites `model`'s dense parameter blocks with the snapshot's captured
/// weights. A snapshot cut without a model carries no blocks and leaves the
/// replica's weights alone (store-only rollout).
void LoadSnapshotDenseParams(RecModel* model, const ServingSnapshot& snap) {
  if (snap.dense_params.empty()) return;
  std::vector<Param> params;
  model->CollectDenseParams(&params);
  CAFE_CHECK(params.size() == snap.dense_params.size())
      << "snapshot dense-parameter block count does not match the replica";
  for (size_t b = 0; b < params.size(); ++b) {
    CAFE_CHECK(params[b].size == snap.dense_params[b].size())
        << "snapshot dense-parameter block " << b
        << " shape does not match the replica";
    std::memcpy(params[b].value, snap.dense_params[b].data(),
                params[b].size * sizeof(float));
  }
}

}  // namespace

InferenceServer::InferenceServer(const InferenceServerOptions& options)
    : options_(options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs_requests_ = registry.GetCounter("serve.requests_total");
  obs_samples_ = registry.GetCounter("serve.samples_total");
  obs_batches_ = registry.GetCounter("serve.batches_total");
  obs_rejected_ = registry.GetCounter("serve.rejected_total");
  obs_swaps_ = registry.GetCounter("serve.swaps_total");
  obs_queue_depth_ = registry.GetGauge("serve.queue_depth");
  obs_generation_ = registry.GetGauge("serve.generation");
  obs_snapshot_age_us_ = registry.GetGauge("serve.snapshot_age_us");
  obs_shed_rate_ = registry.GetGauge("serve.shed_rate");
  obs_request_us_ = registry.GetHistogram("serve.request_us",
                                          obs::DefaultTimeBucketsUs());
}

StatusOr<std::unique_ptr<InferenceServer>> InferenceServer::Start(
    const InferenceServerOptions& options, const ModelFactory& factory,
    SwappableStore* swap_store) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("inference server needs >= 1 worker");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("inference server needs max_batch >= 1");
  }
  if (options.num_fields == 0) {
    return Status::InvalidArgument("inference server needs num_fields");
  }
  std::unique_ptr<InferenceServer> server(new InferenceServer(options));
  server->swap_store_ = swap_store;
  server->models_.reserve(options.num_workers);
  for (size_t i = 0; i < options.num_workers; ++i) {
    auto model = factory(i);
    if (!model.ok()) return model.status();
    if (*model == nullptr) {
      return Status::InvalidArgument("model factory returned null");
    }
    server->models_.push_back(std::move(model).value());
  }
  // Sentinel: every worker loads the pinned snapshot's dense weights on its
  // first micro-batch (generations are 1-based).
  server->worker_generations_.assign(options.num_workers, 0);
  server->worker_latency_.reserve(options.num_workers);
  for (size_t i = 0; i < options.num_workers; ++i) {
    server->worker_latency_.push_back(std::make_unique<LatencyRecorder>());
  }
  server->workers_.reserve(options.num_workers);
  for (size_t i = 0; i < options.num_workers; ++i) {
    server->workers_.emplace_back(
        [raw = server.get(), i]() { raw->WorkerLoop(i); });
  }
  return server;
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // The gauge mirrors update on a sampled cadence while serving; sync them
  // exactly now that the queue is drained so a post-run registry dump
  // reflects the final state.
  if (obs_queue_depth_ != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    obs_queue_depth_->Set(static_cast<double>(queued_samples_));
    const uint64_t rejected = rejected_.load(std::memory_order_relaxed);
    const uint64_t accepted = requests_.load(std::memory_order_relaxed);
    if (rejected + accepted > 0) {
      obs_shed_rate_->Set(static_cast<double>(rejected) /
                          static_cast<double>(rejected + accepted));
    }
    const uint64_t installed =
        snapshot_install_us_.load(std::memory_order_relaxed);
    if (installed != 0) {
      obs_snapshot_age_us_->Set(
          static_cast<double>(obs::NowMicros() - installed));
    }
  }
}

StatusOr<std::future<std::vector<float>>> InferenceServer::Submit(
    const Batch& batch) {
  CAFE_CHECK(batch.num_fields == options_.num_fields)
      << "request field count does not match the serving config";
  CAFE_CHECK(batch.num_numerical == options_.num_numerical)
      << "request numerical count does not match the serving config";
  CAFE_CHECK(batch.batch_size > 0) << "empty prediction request";

  Pending pending;
  pending.batch_size = batch.batch_size;
  pending.categorical.assign(
      batch.categorical, batch.categorical + batch.batch_size * batch.num_fields);
  if (batch.num_numerical > 0) {
    pending.numerical.assign(
        batch.numerical, batch.numerical + batch.batch_size * batch.num_numerical);
  }
  pending.enqueue = Clock::now();
  std::future<std::vector<float>> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return Status::FailedPrecondition(
          "Submit on a stopped inference server");
    }
    // Admission control: fast-fail instead of queueing past the cap. An
    // oversized request against an EMPTY queue is admitted — it can never
    // fit under the cap and would otherwise starve forever.
    if (options_.max_queue_samples > 0 && !queue_.empty() &&
        queued_samples_ + pending.batch_size > options_.max_queue_samples) {
      const uint64_t rejected =
          rejected_.fetch_add(1, std::memory_order_relaxed) + 1;
      obs_rejected_->Add(1);
      const uint64_t accepted = requests_.load(std::memory_order_relaxed);
      obs_shed_rate_->Set(static_cast<double>(rejected) /
                          static_cast<double>(rejected + accepted));
      return Status::ResourceExhausted(
          "inference queue full (" + std::to_string(queued_samples_) + " of " +
          std::to_string(options_.max_queue_samples) +
          " samples queued): backpressure");
    }
    queued_samples_ += pending.batch_size;
    peak_queued_samples_ = std::max(peak_queued_samples_, queued_samples_);
    // Sampled mirror: the gauge is only read at scrape time, so a
    // few-requests-stale depth is fine — an unconditional Set here is a
    // contended cache-line write on every submit from every client thread.
    if ((++queue_depth_updates_ & 0xF) == 0) {
      obs_queue_depth_->Set(static_cast<double>(queued_samples_));
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

uint64_t InferenceServer::InstallSnapshot(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  CAFE_CHECK(swap_store_ != nullptr)
      << "InstallSnapshot on a server started without a swap store";
  const uint64_t generation = swap_store_->Install(std::move(snapshot));
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  snapshot_install_us_.store(obs::NowMicros(), std::memory_order_relaxed);
  obs_swaps_->Add(1);
  obs_generation_->Set(static_cast<double>(generation));
  obs_snapshot_age_us_->Set(0.0);
  return generation;
}

void InferenceServer::WorkerLoop(size_t worker_index) {
  RecModel* model = models_[worker_index].get();
  std::vector<Pending> claimed;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and fully drained

      // Micro-batch window: hold until the batch fills or the oldest
      // request times out. Shutdown flushes immediately.
      const Clock::time_point deadline =
          queue_.front().enqueue +
          std::chrono::microseconds(options_.max_wait_us);
      cv_.wait_until(lock, deadline, [this] {
        return stop_ || queued_samples_ >= options_.max_batch ||
               queue_.empty();
      });
      if (queue_.empty()) continue;  // another worker claimed everything

      claimed.clear();
      size_t total = 0;
      while (!queue_.empty()) {
        Pending& front = queue_.front();
        if (!claimed.empty() && total + front.batch_size > options_.max_batch) {
          break;
        }
        total += front.batch_size;
        queued_samples_ -= front.batch_size;
        claimed.push_back(std::move(front));
        queue_.pop_front();
      }
      if ((++queue_depth_updates_ & 0xF) == 0) {
        obs_queue_depth_->Set(static_cast<double>(queued_samples_));
      }
    }
    // Wake a peer: there may be leftover requests past the claimed window.
    cv_.notify_one();
    Execute(worker_index, model, &claimed);
  }
}

void InferenceServer::Execute(size_t worker_index, RecModel* model,
                              std::vector<Pending>* claimed) {
  size_t total = 0;
  for (const Pending& p : *claimed) total += p.batch_size;

  // Assemble one contiguous micro-batch from the claimed requests. These
  // are worker-local buffers; the shared frozen store is only read.
  std::vector<uint32_t> categorical(total * options_.num_fields);
  std::vector<float> numerical(total * options_.num_numerical);
  size_t offset = 0;
  for (const Pending& p : *claimed) {
    std::memcpy(categorical.data() + offset * options_.num_fields,
                p.categorical.data(),
                p.categorical.size() * sizeof(uint32_t));
    if (options_.num_numerical > 0) {
      std::memcpy(numerical.data() + offset * options_.num_numerical,
                  p.numerical.data(), p.numerical.size() * sizeof(float));
    }
    offset += p.batch_size;
  }

  Batch batch;
  batch.batch_size = total;
  batch.num_fields = options_.num_fields;
  batch.num_numerical = options_.num_numerical;
  batch.categorical = categorical.data();
  batch.numerical = options_.num_numerical > 0 ? numerical.data() : nullptr;
  batch.labels = nullptr;  // prediction only

  std::vector<float> logits;
  uint64_t pinned_generation = 0;
  if (swap_store_ != nullptr) {
    // Hot reload pick-up point: pin the current snapshot for the WHOLE
    // micro-batch (no torn generations within a response), and refresh the
    // replica's dense weights if the generation moved since this worker's
    // last batch. Only this worker touches its replica and its slot.
    SwappableStore::PinScope pin(swap_store_);
    if (pin.generation() != worker_generations_[worker_index]) {
      LoadSnapshotDenseParams(model, pin.snapshot());
      worker_generations_[worker_index] = pin.generation();
    }
    pinned_generation = pin.generation();
    model->Predict(batch, &logits);
  } else {
    model->Predict(batch, &logits);
  }
  CAFE_CHECK(logits.size() == total) << "model returned a short logit vector";

  // Publish stats BEFORE completing any future: a client that returns from
  // future.get() must observe every counter of its own request.
  const Clock::time_point done = Clock::now();
  LatencyRecorder* recorder = worker_latency_[worker_index].get();
  for (const Pending& p : *claimed) {
    const double micros =
        std::chrono::duration<double, std::micro>(done - p.enqueue).count();
    recorder->Record(micros);
    obs_request_us_->Record(micros);
    samples_.fetch_add(p.batch_size, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t batch_seq =
      executed_batches_.fetch_add(1, std::memory_order_relaxed);
  // Counters are per-thread-sharded (cheap); the gauges below are single
  // shared atomics, so their mirrors are refreshed on a sampled cadence —
  // they are only read at scrape time and Shutdown() syncs them exactly.
  const bool refresh_gauges = (batch_seq & 0x7) == 0;
  obs_requests_->Add(claimed->size());
  obs_samples_->Add(total);
  obs_batches_->Add(1);
  if (swap_store_ != nullptr) {
    // Per-generation request counts, name-labeled. The handle is cached per
    // worker thread and refreshed only when the pinned generation moves, so
    // the steady-state cost is one pointer compare, not a registry lookup.
    struct GenerationHandle {
      uint64_t generation = ~0ULL;
      obs::Counter* counter = nullptr;
    };
    static thread_local GenerationHandle cached;
    if (cached.generation != pinned_generation) {
      cached.generation = pinned_generation;
      cached.counter = obs::MetricsRegistry::Global().GetCounter(
          "serve.generation_requests_total{generation=\"" +
          std::to_string(pinned_generation) + "\"}");
    }
    cached.counter->Add(claimed->size());
    const uint64_t installed =
        snapshot_install_us_.load(std::memory_order_relaxed);
    if (installed != 0 && refresh_gauges) {
      obs_snapshot_age_us_->Set(
          static_cast<double>(obs::NowMicros() - installed));
    }
  }
  if (refresh_gauges) {
    const uint64_t rejected = rejected_.load(std::memory_order_relaxed);
    const uint64_t accepted = requests_.load(std::memory_order_relaxed);
    if (rejected + accepted > 0) {
      obs_shed_rate_->Set(static_cast<double>(rejected) /
                          static_cast<double>(rejected + accepted));
    }
  }

  offset = 0;
  for (Pending& p : *claimed) {
    std::vector<float> result(logits.begin() + offset,
                              logits.begin() + offset + p.batch_size);
    offset += p.batch_size;
    p.promise.set_value(std::move(result));
  }
}

LatencySummary InferenceServer::latency_summary() const {
  LatencyRecorder merged;
  for (const auto& recorder : worker_latency_) merged.Merge(*recorder);
  return merged.Summary();
}

size_t InferenceServer::latency_count() const {
  size_t count = 0;
  for (const auto& recorder : worker_latency_) count += recorder->count();
  return count;
}

InferenceServer::Stats InferenceServer::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.samples = samples_.load(std::memory_order_relaxed);
  stats.executed_batches = executed_batches_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queued_samples_;
    stats.peak_queue_depth = peak_queued_samples_;
  }
  if (swap_store_ != nullptr) {
    stats.snapshot_generation = swap_store_->generation();
    stats.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace cafe
