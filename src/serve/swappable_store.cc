#include "serve/swappable_store.h"

#include <utility>

#include "common/logging.h"

namespace cafe {

thread_local SwappableStore::PinEntry SwappableStore::tls_pin_{nullptr,
                                                               nullptr};

SwappableStore::SwappableStore(std::shared_ptr<const ServingSnapshot> initial) {
  CAFE_CHECK(initial != nullptr && initial->store != nullptr)
      << "swappable store needs an initial snapshot";
  CAFE_CHECK(initial->generation >= 1)
      << "serving snapshots are 1-based (0 means 'none')";
  dim_ = initial->store->dim();
  generation_.store(initial->generation, std::memory_order_release);
  current_ = std::move(initial);
}

uint64_t SwappableStore::Install(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  CAFE_CHECK(snapshot != nullptr && snapshot->store != nullptr)
      << "cannot install a null snapshot";
  CAFE_CHECK(snapshot->store->dim() == dim_)
      << "snapshot dim " << snapshot->store->dim()
      << " does not match the serving dim " << dim_;
  const uint64_t generation = snapshot->generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snapshot);
    // Publish the generation after the pointer so generation() never runs
    // ahead of what Acquire() can observe.
    generation_.store(generation, std::memory_order_release);
  }
  return generation;
}

std::shared_ptr<const ServingSnapshot> SwappableStore::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

SwappableStore::PinScope::PinScope(const SwappableStore* store)
    : store_(store), snapshot_(store->Acquire()), previous_(nullptr) {
  PinEntry& entry = tls_pin_;
  CAFE_CHECK(entry.owner == nullptr || entry.owner == store_)
      << "nested pins across different swappable stores are not supported";
  previous_ = entry.snapshot;
  entry.owner = store_;
  entry.snapshot = snapshot_.get();
}

SwappableStore::PinScope::~PinScope() {
  PinEntry& entry = tls_pin_;
  entry.snapshot = previous_;
  if (previous_ == nullptr) entry.owner = nullptr;
}

const ServingSnapshot* SwappableStore::Resolve(
    std::shared_ptr<const ServingSnapshot>* hold) const {
  const PinEntry& entry = tls_pin_;
  if (entry.owner == this && entry.snapshot != nullptr) return entry.snapshot;
  *hold = Acquire();
  return hold->get();
}

void SwappableStore::Lookup(uint64_t id, float* out) {
  LookupConst(id, out);
}

void SwappableStore::LookupConst(uint64_t id, float* out) const {
  std::shared_ptr<const ServingSnapshot> hold;
  Resolve(&hold)->store->LookupConst(id, out);
}

void SwappableStore::LookupBatch(const uint64_t* ids, size_t n, float* out,
                                 size_t out_stride) {
  LookupBatchConst(ids, n, out, out_stride);
}

void SwappableStore::LookupBatchConst(const uint64_t* ids, size_t n,
                                      float* out, size_t out_stride) const {
  std::shared_ptr<const ServingSnapshot> hold;
  Resolve(&hold)->store->LookupBatchConst(ids, n, out, out_stride);
}

void SwappableStore::ApplyGradient(uint64_t id, const float* grad, float lr) {
  (void)id;
  (void)grad;
  (void)lr;
  CAFE_CHECK(false) << "ApplyGradient on a swappable serving store ("
                    << Name() << "): snapshots are read-only";
}

void SwappableStore::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                        const float* grads,
                                        size_t grad_stride, float lr,
                                        float clip) {
  (void)ids;
  (void)n;
  (void)grads;
  (void)grad_stride;
  (void)lr;
  (void)clip;
  CAFE_CHECK(false) << "ApplyGradientBatch on a swappable serving store ("
                    << Name() << "): snapshots are read-only";
}

size_t SwappableStore::MemoryBytes() const {
  std::shared_ptr<const ServingSnapshot> hold;
  return Resolve(&hold)->store->MemoryBytes();
}

std::string SwappableStore::Name() const {
  std::shared_ptr<const ServingSnapshot> hold;
  return Resolve(&hold)->store->Name() + "-hot";
}

}  // namespace cafe
