#include "serve/latency_recorder.h"

#include <algorithm>

namespace cafe {
namespace {

/// Nearest-rank percentile over a sorted population.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  // Copy under other's lock, append under ours; holding one mutex at a
  // time keeps Merge deadlock-free even for a (pointless) self-cycle of
  // concurrent A.Merge(B) / B.Merge(A).
  std::vector<double> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    theirs = other.samples_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  samples_.insert(samples_.end(), theirs.begin(), theirs.end());
}

LatencySummary LatencyRecorder::Summary() const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  LatencySummary summary;
  summary.count = sorted.size();
  if (sorted.empty()) return summary;
  summary.p50_us = Percentile(sorted, 0.50);
  summary.p95_us = Percentile(sorted, 0.95);
  summary.p99_us = Percentile(sorted, 0.99);
  double sum = 0.0;
  for (double v : sorted) sum += v;
  summary.mean_us = sum / static_cast<double>(sorted.size());
  summary.max_us = sorted.back();
  return summary;
}

}  // namespace cafe
