#ifndef CAFE_SERVE_INFERENCE_SERVER_H_
#define CAFE_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/batch.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "serve/latency_recorder.h"
#include "serve/swappable_store.h"

namespace cafe {

struct InferenceServerOptions {
  /// Worker threads; each owns a private RecModel replica (models cache
  /// step-scoped tensors, so replicas — not locks — give parallelism). All
  /// replicas share one frozen store through their embedding layers.
  size_t num_workers = 1;
  /// Micro-batching: a worker coalesces queued requests until their sample
  /// total reaches max_batch or the OLDEST queued request has waited
  /// max_wait_us, then executes them as one forward pass. A single request
  /// larger than max_batch executes alone (never split).
  size_t max_batch = 256;
  uint64_t max_wait_us = 200;
  /// Admission control: total queued samples the server will hold before
  /// Submit fast-fails with ResourceExhausted (backpressure) instead of
  /// letting latency grow without bound. 0 = unbounded (no admission
  /// control). A single request larger than the cap is still admitted when
  /// the queue is empty — it could never be served otherwise (requests are
  /// never split).
  size_t max_queue_samples = 0;
  /// Shape every request must match (one serving config per server).
  size_t num_fields = 0;
  uint32_t num_numerical = 0;
};

/// A concurrent micro-batching inference server over frozen recommendation
/// models, with optional hot reload.
///
/// Clients Submit() small prediction requests; workers coalesce them into
/// large forward passes through the existing batched execution path
/// (EmbeddingLayerGroup -> LookupBatch on a frozen snapshot), which is where
/// CAFE's in-batch dedup and prefetch win, then complete each request's
/// future and record its end-to-end latency (enqueue -> logits ready).
///
/// Hot reload: when started over a SwappableStore, each worker picks up the
/// CURRENT ServingSnapshot once per micro-batch (a pin — an atomic
/// shared_ptr acquisition), loads the snapshot's dense weights into its
/// replica if the generation changed, and executes the whole batch against
/// that one generation. InstallSnapshot() therefore rolls a fresh snapshot
/// out without draining workers or rejecting traffic, and no response can
/// ever mix two generations.
///
/// Determinism: every per-sample forward in this library is independent of
/// the other samples in its tensor batch, so a request's logits are
/// bit-identical however the batcher groups it — N-thread serving equals
/// single-thread evaluation exactly (asserted by tests/serving_test.cc),
/// per generation (asserted by tests/hot_swap_test.cc).
class InferenceServer {
 public:
  /// Builds the worker `index`'s model replica. Called num_workers times
  /// from Start (on the calling thread). Replicas must share the same
  /// weights (e.g. each restored from one checkpoint) for deterministic
  /// serving — unless a swap store is used, in which case each snapshot's
  /// dense weights overwrite the replica at first pick-up.
  using ModelFactory =
      std::function<StatusOr<std::unique_ptr<RecModel>>(size_t index)>;

  /// `swap_store` (optional) enables hot reload; it must outlive the
  /// server, and the factory's replicas must be built OVER it (their
  /// lookups route through the store the server pins per micro-batch).
  static StatusOr<std::unique_ptr<InferenceServer>> Start(
      const InferenceServerOptions& options, const ModelFactory& factory,
      SwappableStore* swap_store = nullptr);

  /// Drains outstanding requests, then joins the workers.
  ~InferenceServer();

  /// Enqueues `batch.batch_size` samples for prediction; the future yields
  /// one logit per sample. Inputs are copied, so the caller's batch memory
  /// may be reused immediately.
  /// Fast-fail Statuses (the request is NOT enqueued):
  ///  - ResourceExhausted: admission control — the queue holds
  ///    max_queue_samples already (shed load or retry later);
  ///  - FailedPrecondition: the server is shut down.
  StatusOr<std::future<std::vector<float>>> Submit(const Batch& batch);

  /// Atomically rolls `snapshot` out to all workers (picked up per
  /// micro-batch; see class comment). Returns the installed generation.
  /// Requires a swap store. Any thread may call this.
  uint64_t InstallSnapshot(std::shared_ptr<const ServingSnapshot> snapshot);

  /// Stops accepting work, completes everything already queued, joins the
  /// workers. Idempotent; the destructor calls it.
  void Shutdown();

  struct Stats {
    uint64_t requests = 0;
    uint64_t samples = 0;
    /// Executed forward passes; requests / executed_batches is the achieved
    /// coalescing factor.
    uint64_t executed_batches = 0;
    /// Submissions fast-failed by admission control.
    uint64_t rejected = 0;
    /// Samples queued right now / the high-water mark (bounded by
    /// max_queue_samples when admission control is on).
    size_t queue_depth = 0;
    size_t peak_queue_depth = 0;
    /// Hot-reload generation counters (0 when no swap store is attached).
    uint64_t snapshot_generation = 0;
    uint64_t snapshot_swaps = 0;
  };
  Stats stats() const;

  /// Merged percentile summary over ALL workers' recorders. Each worker
  /// records into a private LatencyRecorder (no shared-mutex contention on
  /// the completion path); this merges their populations at read time —
  /// identical numbers to the shared-instance design, minus the hot-path
  /// lock. Safe to call while workers are serving.
  LatencySummary latency_summary() const;
  /// Completed-request sample count across all workers.
  size_t latency_count() const;
  /// Drops every worker's recorded latencies (benches measure phases on
  /// one server); count and p50/p95/p99/mean/max all read as zero until
  /// new requests complete.
  void ClearLatency() {
    for (auto& recorder : worker_latency_) recorder->Clear();
  }
  const InferenceServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<uint32_t> categorical;
    std::vector<float> numerical;
    size_t batch_size = 0;
    Clock::time_point enqueue;
    std::promise<std::vector<float>> promise;
  };

  explicit InferenceServer(const InferenceServerOptions& options);

  void WorkerLoop(size_t worker_index);
  void Execute(size_t worker_index, RecModel* model,
               std::vector<Pending>* claimed);

  InferenceServerOptions options_;
  SwappableStore* swap_store_ = nullptr;  // not owned; null = no hot reload
  std::vector<std::unique_ptr<RecModel>> models_;
  /// Snapshot generation each worker's replica last loaded dense weights
  /// from (worker-indexed; only that worker touches its slot).
  std::vector<uint64_t> worker_generations_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  size_t queued_samples_ = 0;
  size_t peak_queued_samples_ = 0;
  /// Guarded by mu_. Counts queue mutations so the serve.queue_depth gauge
  /// mirror refreshes every 16th change instead of on every submit/claim —
  /// the gauge is a single shared atomic and per-request writes to it are
  /// measurable against microsecond-scale service times.
  uint64_t queue_depth_updates_ = 0;
  bool stop_ = false;

  /// One recorder per worker (worker-indexed, like the model replicas);
  /// latency_summary() merges them. unique_ptr keeps addresses stable
  /// (LatencyRecorder owns a mutex and cannot move).
  std::vector<std::unique_ptr<LatencyRecorder>> worker_latency_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> executed_batches_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};
  /// NowMicros() stamp of the last InstallSnapshot (0 = none yet); Execute
  /// derives the serve.snapshot_age_us gauge from it on the sampled
  /// gauge-refresh cadence (every 8th micro-batch).
  std::atomic<uint64_t> snapshot_install_us_{0};

  // Registry mirrors (serve.*), bound in the constructor. The member
  // atomics above stay authoritative for stats() — tests assert exact
  // per-instance values; the registry aggregates across every server in
  // the process and survives server teardown.
  obs::Counter* obs_requests_ = nullptr;
  obs::Counter* obs_samples_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  obs::Counter* obs_swaps_ = nullptr;
  obs::Gauge* obs_queue_depth_ = nullptr;
  obs::Gauge* obs_generation_ = nullptr;
  obs::Gauge* obs_snapshot_age_us_ = nullptr;
  obs::Gauge* obs_shed_rate_ = nullptr;
  obs::Histogram* obs_request_us_ = nullptr;
};

}  // namespace cafe

#endif  // CAFE_SERVE_INFERENCE_SERVER_H_
