#ifndef CAFE_SERVE_INFERENCE_SERVER_H_
#define CAFE_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/batch.h"
#include "models/model.h"
#include "serve/latency_recorder.h"

namespace cafe {

struct InferenceServerOptions {
  /// Worker threads; each owns a private RecModel replica (models cache
  /// step-scoped tensors, so replicas — not locks — give parallelism). All
  /// replicas share one frozen store through their embedding layers.
  size_t num_workers = 1;
  /// Micro-batching: a worker coalesces queued requests until their sample
  /// total reaches max_batch or the OLDEST queued request has waited
  /// max_wait_us, then executes them as one forward pass. A single request
  /// larger than max_batch executes alone (never split).
  size_t max_batch = 256;
  uint64_t max_wait_us = 200;
  /// Shape every request must match (one serving config per server).
  size_t num_fields = 0;
  uint32_t num_numerical = 0;
};

/// A concurrent micro-batching inference server over frozen recommendation
/// models.
///
/// Clients Submit() small prediction requests; workers coalesce them into
/// large forward passes through the existing batched execution path
/// (EmbeddingLayerGroup -> LookupBatch on a FrozenStore), which is where
/// CAFE's in-batch dedup and prefetch win, then complete each request's
/// future and record its end-to-end latency (enqueue -> logits ready).
///
/// Determinism: every per-sample forward in this library is independent of
/// the other samples in its tensor batch, so a request's logits are
/// bit-identical however the batcher groups it — N-thread serving equals
/// single-thread evaluation exactly (asserted by tests/serving_test.cc).
class InferenceServer {
 public:
  /// Builds the worker `index`'s model replica. Called num_workers times
  /// from Start (on the calling thread). Replicas must share the same
  /// weights (e.g. each restored from one checkpoint) for deterministic
  /// serving.
  using ModelFactory =
      std::function<StatusOr<std::unique_ptr<RecModel>>(size_t index)>;

  static StatusOr<std::unique_ptr<InferenceServer>> Start(
      const InferenceServerOptions& options, const ModelFactory& factory);

  /// Drains outstanding requests, then joins the workers.
  ~InferenceServer();

  /// Enqueues `batch.batch_size` samples for prediction; the future yields
  /// one logit per sample. Inputs are copied, so the caller's batch memory
  /// may be reused immediately. Must not be called after Shutdown.
  std::future<std::vector<float>> Submit(const Batch& batch);

  /// Stops accepting work, completes everything already queued, joins the
  /// workers. Idempotent; the destructor calls it.
  void Shutdown();

  struct Stats {
    uint64_t requests = 0;
    uint64_t samples = 0;
    /// Executed forward passes; requests / executed_batches is the achieved
    /// coalescing factor.
    uint64_t executed_batches = 0;
  };
  Stats stats() const;

  const LatencyRecorder& latency() const { return latency_; }
  const InferenceServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<uint32_t> categorical;
    std::vector<float> numerical;
    size_t batch_size = 0;
    Clock::time_point enqueue;
    std::promise<std::vector<float>> promise;
  };

  explicit InferenceServer(const InferenceServerOptions& options);

  void WorkerLoop(size_t worker_index);
  void Execute(RecModel* model, std::vector<Pending>* claimed);

  InferenceServerOptions options_;
  std::vector<std::unique_ptr<RecModel>> models_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  size_t queued_samples_ = 0;
  bool stop_ = false;

  LatencyRecorder latency_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> executed_batches_{0};
};

}  // namespace cafe

#endif  // CAFE_SERVE_INFERENCE_SERVER_H_
