#ifndef CAFE_SERVE_SNAPSHOT_CHECKPOINT_H_
#define CAFE_SERVE_SNAPSHOT_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "serve/swappable_store.h"

namespace cafe {

/// Writes `snapshot` as a standard v2 checkpoint container (io/checkpoint),
/// byte-compatible with io::SaveCheckpoint — the unification of the online
/// and offline checkpoint paths: a ServingSnapshot cut mid-training with
/// SnapshotManager::Options::capture_optimizer carries store state, dense
/// weights AND optimizer adaptive state from ONE step boundary, so
/// io::LoadCheckpoint restores it into a fresh store + model and training
/// resumes bit-identically from the snapshot's step (asserted by
/// tests/hot_swap_test.cc).
///
/// Snapshots without dense weights write a store-only container; snapshots
/// cut without capture_optimizer write a model section whose optimizer flag
/// is off (restore keeps the optimizer fresh — the documented v1
/// semantics). The snapshot's frozen store is only read (SaveState is
/// const), so this may run while the snapshot is actively serving.
Status WriteSnapshotCheckpoint(const ServingSnapshot& snapshot,
                               const std::string& path);

}  // namespace cafe

#endif  // CAFE_SERVE_SNAPSHOT_CHECKPOINT_H_
