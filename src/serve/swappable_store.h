#ifndef CAFE_SERVE_SWAPPABLE_STORE_H_
#define CAFE_SERVE_SWAPPABLE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "embed/embedding_store.h"
#include "serve/frozen_store.h"

namespace cafe {

/// One consistent, immutable serving generation: a frozen embedding store
/// plus (optionally) the dense model weights captured at the same training
/// step. SnapshotManager produces these mid-training; SwappableStore /
/// InferenceServer consume them. The struct is shared as
/// `shared_ptr<const ServingSnapshot>` so an install can never invalidate a
/// generation a worker is still executing against.
struct ServingSnapshot {
  /// Buffer lease, set only by the incremental (double-buffered) publish
  /// path: its deleter hands the resident buffer behind `store` back to the
  /// SnapshotManager for delta replay. Declared FIRST so it is destroyed
  /// LAST — the manager must not see the buffer as reclaimable while the
  /// FrozenStore borrowing it still exists. Null for self-contained
  /// snapshots (full cuts own their store outright).
  std::shared_ptr<void> buffer_lease;
  /// Frozen at `train_step`; FrozenStore is inherently read-only, so the
  /// pointer is usable (e.g. to build a model replica over the snapshot)
  /// even through a const ServingSnapshot.
  std::unique_ptr<FrozenStore> store;
  /// Dense parameter blocks in CollectDenseParams order, captured at the
  /// same step boundary as the store. Empty when the snapshot was cut
  /// without a model (store-only rollout: replicas keep their weights).
  std::vector<std::vector<float>> dense_params;
  /// Optimizer adaptive state (Optimizer::SaveState bytes) captured at the
  /// same boundary when SnapshotManager::Options::capture_optimizer is set
  /// — together with `store` + `dense_params` this makes the snapshot a
  /// full training-resume checkpoint (serve/snapshot_checkpoint.h writes it
  /// as a v2 container). `has_optimizer` is true only when state was
  /// actually captured (capture_optimizer on AND the model has an
  /// optimizer); a capture from an optimizer-less model looks the same as
  /// no capture — restore then keeps a fresh optimizer either way.
  std::string optimizer_state;
  bool has_optimizer = false;
  /// Name of the model the dense weights (and optimizer state) came from;
  /// empty for store-only snapshots. Guards checkpoint restore.
  std::string model_name;
  /// Monotonic snapshot id (1-based; 0 means "no snapshot").
  uint64_t generation = 0;
  /// Trainer step boundary the state was copied at.
  uint64_t train_step = 0;
};

/// The hot-reload seam between a rollout thread and serving workers: an
/// EmbeddingStore whose lookups route to the CURRENT ServingSnapshot, where
/// "current" is flipped atomically by Install(). Worker models are built
/// over the SwappableStore once; fresh snapshots then roll out under them
/// without rebuilding models or draining the server.
///
/// Torn-read protection is the PinScope: a worker opens one pin per
/// micro-batch, and every lookup that worker thread performs inside the pin
/// resolves against the pinned snapshot — a swap mid-batch cannot mix
/// generations within one forward pass. The pin holds a shared_ptr, so the
/// snapshot outlives the batch even if Install() drops the hub's reference.
/// Lookups outside any pin take the current snapshot per call (each call
/// briefly holds its own reference).
///
/// Thread safety: Install() may race freely with any number of concurrent
/// readers; current_ is guarded by a mutex taken once per micro-batch (pin)
/// or once per un-pinned lookup call, never per id.
class SwappableStore : public EmbeddingStore {
 public:
  /// Starts serving `initial` (generation >= 1 required).
  explicit SwappableStore(std::shared_ptr<const ServingSnapshot> initial);

  /// Atomically publishes `snapshot` as the current generation and returns
  /// its generation id. In-flight pinned batches keep the old snapshot; new
  /// pins pick this one up. The embedding dim must match the initial
  /// snapshot (models are built against it).
  ///
  /// Install is also the RETIRE step of the double-buffered rollout: the
  /// hub's reference to the outgoing generation drops here, so once the
  /// last in-flight PinScope on it closes, its buffer_lease releases and
  /// the SnapshotManager reclaims that buffer for the next delta replay.
  uint64_t Install(std::shared_ptr<const ServingSnapshot> snapshot);

  /// The currently installed snapshot.
  std::shared_ptr<const ServingSnapshot> Acquire() const;

  /// Generation of the currently installed snapshot.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// RAII per-micro-batch pin: every lookup this THREAD performs on the
  /// store between construction and destruction resolves against one
  /// snapshot. Nests safely (the inner pin wins until it closes).
  class PinScope {
   public:
    explicit PinScope(const SwappableStore* store);
    ~PinScope();

    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

    const ServingSnapshot& snapshot() const { return *snapshot_; }
    uint64_t generation() const { return snapshot_->generation; }

   private:
    const SwappableStore* store_;
    std::shared_ptr<const ServingSnapshot> snapshot_;
    const ServingSnapshot* previous_;  // restored on close (nesting)
  };

  // EmbeddingStore interface: reads route to the pinned (or current)
  // snapshot's frozen store; mutations abort like FrozenStore.
  uint32_t dim() const override { return dim_; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void Tick() override {}
  size_t MemoryBytes() const override;
  std::string Name() const override;

 private:
  struct PinEntry {
    const SwappableStore* owner = nullptr;
    const ServingSnapshot* snapshot = nullptr;
  };
  static thread_local PinEntry tls_pin_;

  /// The snapshot lookups should use right now: the thread's pin when it
  /// targets this store, else the current snapshot (kept alive via *hold).
  const ServingSnapshot* Resolve(
      std::shared_ptr<const ServingSnapshot>* hold) const;

  uint32_t dim_ = 0;
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace cafe

#endif  // CAFE_SERVE_SWAPPABLE_STORE_H_
