#ifndef CAFE_SERVE_LATENCY_RECORDER_H_
#define CAFE_SERVE_LATENCY_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cafe {

/// Percentile summary of a latency population, in microseconds.
struct LatencySummary {
  size_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Thread-safe collector of per-request latencies. Workers record one
/// sample per completed request; Summary() computes exact percentiles over
/// a snapshot (serving benches are bounded, so keeping every sample is
/// cheaper and more honest than a streaming quantile sketch — revisit if a
/// server ever runs unbounded).
///
/// Concurrency: every method takes the internal mutex, so Summary(),
/// count(), Merge(), and Clear() are all safe concurrent with Record() —
/// each sees a consistent point-in-time population. That said, a SHARED
/// recorder serializes every Record() on one mutex; latency-sensitive
/// multi-worker callers should give each worker a private recorder and
/// Merge() them into a scratch instance at read time (what
/// InferenceServer does), turning the hot path into an uncontended lock.
class LatencyRecorder {
 public:
  void Record(double micros) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(micros);
  }

  /// Clears the population; the next Summary() reports zero count and zero
  /// p50/p95/p99/mean/max (percentiles reset together with the count —
  /// there is no residual state to leak across bench phases).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  /// Appends a snapshot of `other`'s samples to this recorder. Safe while
  /// writers are still recording into either side (both mutexes are taken,
  /// never simultaneously — no lock-order cycle). Combining per-worker
  /// recorders through a scratch instance yields the same population a
  /// single shared recorder would have collected, without its contention.
  void Merge(const LatencyRecorder& other);

  /// Exact percentiles (nearest-rank) over all recorded samples.
  LatencySummary Summary() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace cafe

#endif  // CAFE_SERVE_LATENCY_RECORDER_H_
