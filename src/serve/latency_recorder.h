#ifndef CAFE_SERVE_LATENCY_RECORDER_H_
#define CAFE_SERVE_LATENCY_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cafe {

/// Percentile summary of a latency population, in microseconds.
struct LatencySummary {
  size_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Thread-safe collector of per-request latencies. Workers record one
/// sample per completed request; Summary() computes exact percentiles over
/// a snapshot (serving benches are bounded, so keeping every sample is
/// cheaper and more honest than a streaming quantile sketch — revisit if a
/// server ever runs unbounded).
class LatencyRecorder {
 public:
  void Record(double micros) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(micros);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  /// Exact percentiles (nearest-rank) over all recorded samples.
  LatencySummary Summary() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace cafe

#endif  // CAFE_SERVE_LATENCY_RECORDER_H_
