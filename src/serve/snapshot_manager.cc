#include "serve/snapshot_manager.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/frozen_store.h"

namespace cafe {
namespace {

/// Registry handles (snapshot.*), shared by every manager in the process;
/// the per-instance Stats struct stays authoritative for stats() — these
/// are additive mirrors for scrapes and the JSONL timeline.
struct SnapshotMetrics {
  obs::Counter* cuts;
  obs::Counter* delta_cuts;
  obs::Counter* retired_buffers;
  obs::Counter* copy_bytes;
  obs::Counter* apply_bytes;
  obs::Histogram* copy_us;
  obs::Histogram* apply_us;
  obs::Histogram* publish_us;
  obs::Gauge* generation;
};

SnapshotMetrics& Metrics() {
  static SnapshotMetrics* const metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    return new SnapshotMetrics{
        r.GetCounter("snapshot.cuts_total"),
        r.GetCounter("snapshot.delta_cuts_total"),
        r.GetCounter("snapshot.retired_buffers_total"),
        r.GetCounter("snapshot.copy_bytes_total"),
        r.GetCounter("snapshot.apply_bytes_total"),
        r.GetHistogram("snapshot.copy_us", obs::DefaultTimeBucketsUs()),
        r.GetHistogram("snapshot.apply_us", obs::DefaultTimeBucketsUs()),
        r.GetHistogram("snapshot.publish_us", obs::DefaultTimeBucketsUs()),
        r.GetGauge("snapshot.generation"),
    };
  }();
  return *metrics;
}

}  // namespace

SnapshotManager::SnapshotManager(EmbeddingStore* live_store,
                                 RecModel* live_model,
                                 FreshStoreFactory factory,
                                 const Options& options)
    : live_store_(live_store),
      live_model_(live_model),
      factory_(std::move(factory)),
      options_(options),
      live_name_(live_store != nullptr ? live_store->Name() : ""),
      leases_(std::make_shared<LeaseState>()) {
  CAFE_CHECK(live_store_ != nullptr) << "snapshot manager needs a live store";
  CAFE_CHECK(factory_ != nullptr) << "snapshot manager needs a store factory";
  CAFE_CHECK(!options_.incremental ||
             live_store_->SupportsIncrementalSnapshots())
      << "incremental cuts requested but store '" << live_name_
      << "' does not support SaveDelta/LoadDelta";
  CAFE_CHECK(!options_.capture_optimizer || live_model_ != nullptr)
      << "capture_optimizer requested without a live model";
}

SnapshotManager::SnapshotManager(EmbeddingStore* live_store,
                                 RecModel* live_model,
                                 FreshStoreFactory factory)
    : SnapshotManager(live_store, live_model, std::move(factory), Options()) {}

SnapshotManager::~SnapshotManager() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.incremental && base_cut_done_) {
    // Full reset (epochs + full-section flags), not just a stop: a fresh
    // manager created over the same live store must rebase from a clean
    // slate even when THIS manager died with a poisoned publish chain.
    (void)live_store_->EnableDirtyTracking(false);
  }
}

void SnapshotManager::CopyStateLocked(uint64_t step) {
  obs::TraceSpan span("snapshot.copy");
  WallTimer timer;
  io::Writer writer;
  if (options_.incremental && base_cut_done_) {
    pending_status_ = live_store_->SaveDelta(&writer);
    pending_is_delta_ = true;
  } else {
    pending_status_ = live_store_->SaveState(&writer);
    pending_is_delta_ = false;
    if (options_.incremental && pending_status_.ok()) {
      // Tracking switches on at the SAME boundary the base captures:
      // everything after this instant lands in the first delta.
      pending_status_ = live_store_->EnableDirtyTracking();
      base_cut_done_ = pending_status_.ok();
    }
  }
  pending_payload_ = writer.Release();
  pending_dense_.clear();
  pending_optimizer_.clear();
  pending_has_optimizer_ = false;
  pending_model_name_.clear();
  if (pending_status_.ok() && live_model_ != nullptr) {
    pending_model_name_ = live_model_->Name();
    std::vector<Param> params;
    live_model_->CollectDenseParams(&params);
    pending_dense_.reserve(params.size());
    for (const Param& p : params) {
      pending_dense_.emplace_back(p.value, p.value + p.size);
    }
    if (options_.capture_optimizer) {
      Optimizer* optimizer = live_model_->optimizer();
      if (optimizer != nullptr) {
        io::Writer optimizer_writer;
        pending_status_ = optimizer->SaveState(&optimizer_writer);
        pending_optimizer_ = optimizer_writer.Release();
        pending_has_optimizer_ = pending_status_.ok();
      }
    }
  }
  if (!pending_status_.ok() && options_.incremental && base_cut_done_) {
    // A capture step failed and the payload is about to be discarded with
    // the error — but it may have been the only record of flushed state: a
    // SaveDelta has already emptied the dirty sets, and a just-taken base
    // has already rebased tracking. Either way, staying "based" would make
    // the NEXT successful cut emit a delta missing this interval's rows
    // (or a delta with no base under it) — a silently divergent
    // generation. Roll the whole chain back to unbased; the next cut
    // retakes a full base at its own boundary.
    (void)live_store_->EnableDirtyTracking(false);
    base_cut_done_ = false;
  }
  pending_step_ = step;
  last_cut_step_ = step;
  copy_ready_ = true;
  const double copy_us = timer.ElapsedMicros();
  stats_.last_copy_us = copy_us;
  stats_.last_copy_bytes = pending_payload_.size();
  if (copy_us > stats_.max_copy_us) stats_.max_copy_us = copy_us;
  Metrics().copy_us->Record(copy_us);
  Metrics().copy_bytes->Add(pending_payload_.size());
}

void SnapshotManager::AtStepBoundary(uint64_t step) {
  // Fast path: one relaxed load per training step when nobody is cutting.
  if (!cut_requested_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  last_step_ = step;
  if (!cut_requested_.load(std::memory_order_relaxed) || copy_ready_) return;
  if (options_.min_steps_between_cuts > 0 &&
      step < last_cut_step_ + options_.min_steps_between_cuts) {
    return;  // keep the request pending until the interval is met
  }
  CopyStateLocked(step);
  cut_requested_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void SnapshotManager::BeginTraining() {
  std::lock_guard<std::mutex> lock(mu_);
  training_active_ = true;
}

void SnapshotManager::FinishTraining(uint64_t final_step) {
  std::lock_guard<std::mutex> lock(mu_);
  training_active_ = false;
  last_step_ = final_step;
  cv_.notify_all();
}

StatusOr<std::unique_ptr<EmbeddingStore>>
SnapshotManager::MakeValidatedFreshStore() {
  auto fresh = factory_();
  if (!fresh.ok()) return fresh.status();
  if (*fresh == nullptr) {
    return Status::InvalidArgument("snapshot store factory returned null");
  }
  if ((*fresh)->Name() != live_name_) {
    return Status::FailedPrecondition(
        "snapshot store factory built '" + (*fresh)->Name() +
        "' but the live store is '" + live_name_ + "'");
  }
  return fresh;
}

Status SnapshotManager::ReclaimOrRetire(size_t slot, uint64_t generation,
                                        bool* retired) {
  *retired = false;
  {
    std::unique_lock<std::mutex> lock(leases_->mu);
    if (leases_->leased[slot]) {
      const auto wait = std::chrono::microseconds(options_.reclaim_wait_us);
      if (!leases_->cv.wait_for(
              lock, wait, [&] { return !leases_->leased[slot]; })) {
        // The previous-but-one generation is still held: retire this buffer
        // to its holder (shared ownership keeps it alive) and bump the
        // lease epoch so the stale lease's eventual release cannot clear a
        // lease the REPLACEMENT buffer hands out later.
        leases_->leased[slot] = false;
        ++leases_->epoch[slot];
        *retired = true;
      }
    }
  }
  if (!*retired) return Status::OK();

  BufferSlot& target = buffers_[slot];
  BufferSlot& other = buffers_[slot ^ 1];
  if (other.store == nullptr || other.state_gen + 1 != generation) {
    return Status::Internal(
        "double-buffer retire: serving buffer is not at the preceding "
        "generation");
  }
  target.store.reset();  // the holder's FrozenStore keeps the old buffer
  auto fresh = MakeValidatedFreshStore();
  if (!fresh.ok()) return fresh.status();
  // Clone the serving buffer's state: SaveState is const and the buffer is
  // frozen, so this runs safely alongside concurrent serving lookups. This
  // is the O(store) fallback the lease machinery exists to avoid.
  io::Writer writer;
  CAFE_RETURN_IF_ERROR(other.store->SaveState(&writer));
  std::string full = writer.Release();
  io::Reader reader(std::move(full));
  CAFE_RETURN_IF_ERROR((*fresh)->LoadState(&reader));
  if (reader.remaining() != 0) {
    return Status::Internal(
        "snapshot state not fully consumed rebuilding a retired buffer");
  }
  target.store = std::move(fresh).value();
  target.state_gen = other.state_gen;
  // Payloads the rebuild already folded in are no longer needed.
  while (!target.pending.empty() &&
         target.pending.front().generation <= target.state_gen) {
    target.pending.pop_front();
  }
  return Status::OK();
}

Status SnapshotManager::PublishIncremental(
    std::shared_ptr<const std::string> payload, bool is_delta,
    uint64_t generation, ServingSnapshot* out) {
  WallTimer publish_timer;
  Status status;
  {
    // Wait for the publish turn: deltas are relative to the buffers'
    // current state, so publishes replay in claim order even when
    // concurrent Cut() callers reach this point out of order. Holding the
    // turn (published_generation_ + 1 == generation) gives exclusive access
    // to the buffers without holding the lock through the heavy work.
    std::unique_lock<std::mutex> lock(publish_mu_);
    publish_cv_.wait(
        lock, [&] { return published_generation_ + 1 == generation; });
    status = publish_status_;
  }

  const size_t slot = static_cast<size_t>(generation & 1);
  uint64_t apply_bytes = 0;
  double apply_us = 0.0;
  bool retired = false;
  if (status.ok()) {
    // Every payload goes to BOTH buffers: the target folds it in now, the
    // serving buffer keeps it queued (the lagging queue) until it rotates
    // back to the off position next cut.
    buffers_[0].pending.push_back({generation, is_delta, payload});
    buffers_[1].pending.push_back({generation, is_delta, payload});
    status = ReclaimOrRetire(slot, generation, &retired);
  }
  if (status.ok()) {
    BufferSlot& target = buffers_[slot];
    obs::TraceSpan apply_span("snapshot.apply");
    WallTimer apply_timer;
    while (status.ok() && !target.pending.empty()) {
      PendingPayload entry = std::move(target.pending.front());
      target.pending.pop_front();
      if (entry.generation <= target.state_gen) continue;  // folded in
      if (target.store == nullptr) {
        auto fresh = MakeValidatedFreshStore();
        if (!fresh.ok()) {
          status = fresh.status();
          break;
        }
        target.store = std::move(fresh).value();
      }
      io::Reader reader(entry.payload.get());
      status = entry.is_delta ? target.store->LoadDelta(&reader)
                              : target.store->LoadState(&reader);
      if (status.ok() && reader.remaining() != 0) {
        status = Status::Internal(
            "snapshot payload not fully consumed by the buffer store");
      }
      if (status.ok()) {
        apply_bytes += entry.payload->size();
        target.state_gen = entry.generation;
      }
    }
    apply_us = apply_timer.ElapsedMicros();
    if (status.ok() && target.state_gen != generation) {
      status = Status::Internal(
          "double-buffer publish drained to the wrong generation");
    }
  }
  if (status.ok()) {
    // Freeze + no-copy handoff. The lease is marked before the snapshot
    // escapes; its deleter (run by whoever drops the last reference — the
    // hub at Install, or the last in-flight PinScope) hands the buffer
    // back. The deleter holds LeaseState strongly, so a snapshot outliving
    // the manager still releases against valid memory.
    uint64_t token = 0;
    {
      std::lock_guard<std::mutex> lock(leases_->mu);
      leases_->leased[slot] = true;
      token = ++leases_->epoch[slot];
    }
    std::shared_ptr<LeaseState> lease_state = leases_;
    out->buffer_lease = std::shared_ptr<void>(
        static_cast<void*>(nullptr),
        [lease_state, slot, token](void*) {
          std::lock_guard<std::mutex> lock(lease_state->mu);
          if (lease_state->epoch[slot] == token) {
            lease_state->leased[slot] = false;
            lease_state->cv.notify_all();
          }
        });
    out->store = FrozenStore::AdoptShared(buffers_[slot].store);
  }

  const double publish_us = publish_timer.ElapsedMicros();
  {
    // Advance the turn even on failure (later publishers fail fast on the
    // poisoned status instead of deadlocking on a generation gap).
    std::lock_guard<std::mutex> lock(publish_mu_);
    if (!status.ok() && publish_status_.ok()) publish_status_ = status;
    published_generation_ = generation;
    publish_cv_.notify_all();
  }
  if (status.ok()) {
    // Only successful publishes report: a fail-fast on a poisoned chain
    // must not clobber the last real measurement with zeros, and a retire
    // whose replacement rebuild then failed produced no publish to count.
    RecordPublishStats(apply_us, apply_bytes, publish_us, retired);
  }
  return status;
}

void SnapshotManager::RecordPublishStats(double apply_us, uint64_t apply_bytes,
                                         double publish_us, bool retired) {
  Metrics().apply_us->Record(apply_us);
  Metrics().apply_bytes->Add(apply_bytes);
  Metrics().publish_us->Record(publish_us);
  if (retired) Metrics().retired_buffers->Add(1);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.last_apply_us = apply_us;
  stats_.last_apply_bytes = apply_bytes;
  stats_.last_publish_us = publish_us;
  if (publish_us > stats_.max_publish_us) stats_.max_publish_us = publish_us;
  stats_.last_rebuild_us = publish_us;
  if (publish_us > stats_.max_rebuild_us) stats_.max_rebuild_us = publish_us;
  if (retired) ++stats_.retired_buffers;
}

StatusOr<std::shared_ptr<const ServingSnapshot>> SnapshotManager::Cut() {
  std::string payload;
  bool is_delta = false;
  auto snapshot = std::make_shared<ServingSnapshot>();
  uint64_t generation = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // One hand-off at a time: wait until no other cutter's request or
    // unclaimed copy is in flight (the publish below runs unlocked, so a
    // second cutter can already be copying while we publish).
    cv_.wait(lock, [this] {
      return !cut_requested_.load(std::memory_order_relaxed) && !copy_ready_;
    });
    if (training_active_) {
      cut_requested_.store(true, std::memory_order_release);
      cv_.wait(lock, [this] { return copy_ready_ || !training_active_; });
      if (!copy_ready_) {
        // The trainer finished before servicing us: the store is quiescent
        // again, copy directly at its final step.
        cut_requested_.store(false, std::memory_order_release);
        CopyStateLocked(last_step_);
      }
    } else {
      // No trainer pumping boundaries: the caller guarantees quiescence
      // (initial snapshot before training, or tail snapshot after it).
      CopyStateLocked(last_step_);
    }
    payload = std::move(pending_payload_);
    pending_payload_.clear();
    is_delta = pending_is_delta_;
    snapshot->dense_params = std::move(pending_dense_);
    pending_dense_.clear();
    snapshot->optimizer_state = std::move(pending_optimizer_);
    pending_optimizer_.clear();
    snapshot->has_optimizer = pending_has_optimizer_;
    snapshot->model_name = pending_model_name_;
    snapshot->train_step = pending_step_;
    copy_ready_ = false;
    const Status copy_status = pending_status_;
    cv_.notify_all();
    if (!copy_status.ok()) return copy_status;
    // Assign the generation at CLAIM time, under the lock: hand-offs are
    // serialized and copies are monotone in step, so generation order
    // always matches step order even when Cut() callers' unlocked
    // publishes finish out of order — a higher generation can never carry
    // an older state.
    generation = ++next_generation_;
    snapshot->generation = generation;
  }

  // The replication tap sees every claimed generation before the local
  // publish: replicas replay the same shared payload bytes the buffers do,
  // and never wait on the local swap. Fired outside mu_ (the observer may
  // do real work); out-of-order delivery across concurrent cutters is the
  // consumer's contract (it reorders by generation).
  auto shared_payload = std::make_shared<const std::string>(std::move(payload));
  if (options_.payload_observer) {
    BoundaryPayload boundary;
    boundary.generation = generation;
    boundary.train_step = snapshot->train_step;
    boundary.is_delta = is_delta;
    boundary.payload = shared_payload;
    boundary.dense_params = &snapshot->dense_params;
    boundary.optimizer_state = &snapshot->optimizer_state;
    boundary.has_optimizer = snapshot->has_optimizer;
    boundary.model_name = &snapshot->model_name;
    options_.payload_observer(boundary);
  }

  // Publish OFF the trainer's critical path.
  obs::TraceSpan publish_span("snapshot.publish");
  if (options_.incremental) {
    // Double-buffered O(dirty) publish: replay the lagging queue into the
    // non-serving buffer and freeze it in place (see the class comment).
    CAFE_RETURN_IF_ERROR(
        PublishIncremental(shared_payload, is_delta, generation,
                           snapshot.get()));
  } else {
    // Full publish: a factory-fresh store takes the copied state, then
    // freezes — each snapshot is self-contained.
    WallTimer timer;
    auto fresh = MakeValidatedFreshStore();
    if (!fresh.ok()) return fresh.status();
    io::Reader reader(shared_payload.get());
    const size_t payload_bytes = reader.remaining();
    CAFE_RETURN_IF_ERROR((*fresh)->LoadState(&reader));
    if (reader.remaining() != 0) {
      return Status::Internal(
          "snapshot state not fully consumed by LoadState");
    }
    snapshot->store = FrozenStore::Adopt(std::move(fresh).value());
    const double rebuild_us = timer.ElapsedMicros();
    RecordPublishStats(rebuild_us, payload_bytes, rebuild_us,
                       /*retired=*/false);
  }

  publish_span.Finish();
  Metrics().cuts->Add(1);
  if (is_delta) Metrics().delta_cuts->Add(1);
  Metrics().generation->Set(static_cast<double>(generation));

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cuts;
    if (is_delta) ++stats_.delta_cuts;
  }
  return std::shared_ptr<const ServingSnapshot>(std::move(snapshot));
}

SnapshotManager::Stats SnapshotManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cafe
