#include "serve/snapshot_manager.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "io/serialize.h"

namespace cafe {

SnapshotManager::SnapshotManager(EmbeddingStore* live_store,
                                 RecModel* live_model,
                                 FreshStoreFactory factory,
                                 const Options& options)
    : live_store_(live_store),
      live_model_(live_model),
      factory_(std::move(factory)),
      options_(options),
      live_name_(live_store != nullptr ? live_store->Name() : "") {
  CAFE_CHECK(live_store_ != nullptr) << "snapshot manager needs a live store";
  CAFE_CHECK(factory_ != nullptr) << "snapshot manager needs a store factory";
  CAFE_CHECK(!options_.incremental ||
             live_store_->SupportsIncrementalSnapshots())
      << "incremental cuts requested but store '" << live_name_
      << "' does not support SaveDelta/LoadDelta";
}

SnapshotManager::SnapshotManager(EmbeddingStore* live_store,
                                 RecModel* live_model,
                                 FreshStoreFactory factory)
    : SnapshotManager(live_store, live_model, std::move(factory), Options()) {}

SnapshotManager::~SnapshotManager() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.incremental && base_cut_done_) {
    live_store_->DisableDirtyTracking();
  }
}

void SnapshotManager::CopyStateLocked(uint64_t step) {
  WallTimer timer;
  io::Writer writer;
  if (options_.incremental && base_cut_done_) {
    pending_status_ = live_store_->SaveDelta(&writer);
    pending_is_delta_ = true;
  } else {
    pending_status_ = live_store_->SaveState(&writer);
    pending_is_delta_ = false;
    if (options_.incremental && pending_status_.ok()) {
      // Tracking switches on at the SAME boundary the base captures:
      // everything after this instant lands in the first delta.
      pending_status_ = live_store_->EnableDirtyTracking();
      base_cut_done_ = pending_status_.ok();
    }
  }
  pending_payload_ = writer.Release();
  pending_dense_.clear();
  if (pending_status_.ok() && live_model_ != nullptr) {
    std::vector<Param> params;
    live_model_->CollectDenseParams(&params);
    pending_dense_.reserve(params.size());
    for (const Param& p : params) {
      pending_dense_.emplace_back(p.value, p.value + p.size);
    }
  }
  pending_step_ = step;
  last_cut_step_ = step;
  copy_ready_ = true;
  const double copy_us = timer.ElapsedMicros();
  stats_.last_copy_us = copy_us;
  stats_.last_copy_bytes = pending_payload_.size();
  if (copy_us > stats_.max_copy_us) stats_.max_copy_us = copy_us;
}

void SnapshotManager::AtStepBoundary(uint64_t step) {
  // Fast path: one relaxed load per training step when nobody is cutting.
  if (!cut_requested_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  last_step_ = step;
  if (!cut_requested_.load(std::memory_order_relaxed) || copy_ready_) return;
  if (options_.min_steps_between_cuts > 0 &&
      step < last_cut_step_ + options_.min_steps_between_cuts) {
    return;  // keep the request pending until the interval is met
  }
  CopyStateLocked(step);
  cut_requested_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void SnapshotManager::BeginTraining() {
  std::lock_guard<std::mutex> lock(mu_);
  training_active_ = true;
}

void SnapshotManager::FinishTraining(uint64_t final_step) {
  std::lock_guard<std::mutex> lock(mu_);
  training_active_ = false;
  last_step_ = final_step;
  cv_.notify_all();
}

StatusOr<std::string> SnapshotManager::ApplyToStaging(std::string payload,
                                                      bool is_delta,
                                                      uint64_t generation) {
  std::unique_lock<std::mutex> lock(staging_mu_);
  // Deltas are relative to the staging store's CURRENT state, so they must
  // replay in claim order even when concurrent Cut() callers reach this
  // point out of order.
  staging_cv_.wait(lock,
                   [&] { return applied_generation_ + 1 == generation; });
  Status status = staging_status_;
  std::string result;
  if (status.ok() && staging_store_ == nullptr) {
    auto fresh = factory_();
    if (!fresh.ok()) {
      status = fresh.status();
    } else if (*fresh == nullptr) {
      status = Status::InvalidArgument("snapshot store factory returned null");
    } else if ((*fresh)->Name() != live_name_) {
      status = Status::FailedPrecondition(
          "snapshot store factory built '" + (*fresh)->Name() +
          "' but the live store is '" + live_name_ + "'");
    } else {
      staging_store_ = std::move(fresh).value();
    }
  }
  if (status.ok()) {
    io::Reader reader(std::move(payload));
    status = is_delta ? staging_store_->LoadDelta(&reader)
                      : staging_store_->LoadState(&reader);
    if (status.ok() && reader.remaining() != 0) {
      status = Status::Internal(
          "snapshot payload not fully consumed by the staging store");
    }
  }
  if (status.ok()) {
    io::Writer writer;
    status = staging_store_->SaveState(&writer);
    if (status.ok()) result = writer.Release();
  }
  // Failure poisons the staging chain: a later delta would apply on top of
  // unknown state, so every subsequent incremental cut fails fast instead.
  if (!status.ok() && staging_status_.ok()) staging_status_ = status;
  applied_generation_ = generation;
  staging_cv_.notify_all();
  lock.unlock();
  if (!status.ok()) return status;
  return StatusOr<std::string>(std::move(result));
}

StatusOr<std::shared_ptr<const ServingSnapshot>> SnapshotManager::Cut() {
  std::string payload;
  bool is_delta = false;
  std::vector<std::vector<float>> dense;
  uint64_t step = 0;
  uint64_t generation = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // One hand-off at a time: wait until no other cutter's request or
    // unclaimed copy is in flight (the rebuild below runs unlocked, so a
    // second cutter can already be copying while we rebuild).
    cv_.wait(lock, [this] {
      return !cut_requested_.load(std::memory_order_relaxed) && !copy_ready_;
    });
    if (training_active_) {
      cut_requested_.store(true, std::memory_order_release);
      cv_.wait(lock, [this] { return copy_ready_ || !training_active_; });
      if (!copy_ready_) {
        // The trainer finished before servicing us: the store is quiescent
        // again, copy directly at its final step.
        cut_requested_.store(false, std::memory_order_release);
        CopyStateLocked(last_step_);
      }
    } else {
      // No trainer pumping boundaries: the caller guarantees quiescence
      // (initial snapshot before training, or tail snapshot after it).
      CopyStateLocked(last_step_);
    }
    payload = std::move(pending_payload_);
    pending_payload_.clear();
    is_delta = pending_is_delta_;
    dense = std::move(pending_dense_);
    pending_dense_.clear();
    step = pending_step_;
    copy_ready_ = false;
    const Status copy_status = pending_status_;
    cv_.notify_all();
    if (!copy_status.ok()) return copy_status;
    // Assign the generation at CLAIM time, under the lock: hand-offs are
    // serialized and copies are monotone in step, so generation order
    // always matches step order even when Cut() callers' unlocked rebuilds
    // finish out of order — a higher generation can never carry an older
    // state.
    generation = ++next_generation_;
  }

  // Rebuild OFF the trainer's critical path: a factory-fresh store takes
  // the copied state, then freezes. Incremental mode first replays the
  // payload into the resident staging store (in claim order) and publishes
  // the staging store's full state — base + k deltas behaves exactly like
  // the full copy would have.
  WallTimer timer;
  if (options_.incremental) {
    auto staged = ApplyToStaging(std::move(payload), is_delta, generation);
    if (!staged.ok()) return staged.status();
    payload = std::move(staged).value();
  }
  auto fresh = factory_();
  if (!fresh.ok()) return fresh.status();
  if (*fresh == nullptr) {
    return Status::InvalidArgument("snapshot store factory returned null");
  }
  if ((*fresh)->Name() != live_name_) {
    return Status::FailedPrecondition(
        "snapshot store factory built '" + (*fresh)->Name() +
        "' but the live store is '" + live_name_ + "'");
  }
  io::Reader reader(std::move(payload));
  CAFE_RETURN_IF_ERROR((*fresh)->LoadState(&reader));
  if (reader.remaining() != 0) {
    return Status::Internal("snapshot state not fully consumed by LoadState");
  }

  auto snapshot = std::make_shared<ServingSnapshot>();
  snapshot->store = FrozenStore::Adopt(std::move(fresh).value());
  snapshot->dense_params = std::move(dense);
  snapshot->train_step = step;
  snapshot->generation = generation;

  const double rebuild_us = timer.ElapsedMicros();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cuts;
    if (is_delta) ++stats_.delta_cuts;
    stats_.last_rebuild_us = rebuild_us;
    if (rebuild_us > stats_.max_rebuild_us) {
      stats_.max_rebuild_us = rebuild_us;
    }
  }
  return std::shared_ptr<const ServingSnapshot>(std::move(snapshot));
}

SnapshotManager::Stats SnapshotManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cafe
