#ifndef CAFE_EMBED_ROW_POOL_H_
#define CAFE_EMBED_ROW_POOL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "io/serialize.h"

namespace cafe {

/// Block-pooled backing storage for embedding row tables (the OpenEmbedding
/// block-pool idiom): rows live in fixed-size slabs held by a deque, so
///
///   * growth appends a slab — existing rows NEVER move (no rehash copies,
///     pointers handed out stay valid for the pool's lifetime),
///   * a slab is one contiguous ~256KB allocation, so consecutive row
///     indices share pages and the batched gather/scatter prefetches land
///     on dense lines instead of allocator-scattered chunks,
///   * rows-per-slab is a power of two, so Row() is shift + mask + one
///     directory load — cheap enough for the per-id hot paths.
///
/// The pool hands out PHYSICAL row indices in [0, num_rows()): fixed-size
/// stores Reset() to their final shape once and index directly (their
/// RowOf/RowIndexOf seams are unchanged); dynamic stores Acquire()/
/// Release() rows through the embedded free list and keep their own
/// id -> row maps. Single-writer like the tables it replaces: no locking.
class RowPool {
 public:
  RowPool() = default;

  /// Sizes a pool of `num_rows` rows of `row_floats` floats, zero-filled,
  /// dropping any previous contents. Slabs target kSlabBytes but always
  /// hold a power-of-two number of rows (>= 1).
  void Reset(uint64_t num_rows, uint32_t row_floats) {
    CAFE_DCHECK(row_floats > 0);
    row_floats_ = row_floats;
    shift_ = 0;
    const uint64_t target_rows = kSlabBytes / (sizeof(float) * row_floats);
    while ((uint64_t{2} << shift_) <= target_rows) ++shift_;
    mask_ = (uint64_t{1} << shift_) - 1;
    slabs_.clear();
    slab_rows_.clear();
    num_rows_ = 0;
    free_rows_.clear();
    Grow(num_rows);
  }

  /// Appends `added_rows` zero-filled rows (new slabs as needed; existing
  /// slabs and the rows inside them stay put).
  void Grow(uint64_t added_rows) {
    const uint64_t rows_per_slab = mask_ + 1;
    uint64_t target = num_rows_ + added_rows;
    while (num_rows_ < target) {
      const uint64_t slab = num_rows_ >> shift_;
      if (slab == slabs_.size()) {
        slabs_.emplace_back(rows_per_slab * row_floats_, 0.0f);
        slab_rows_.push_back(slabs_.back().data());
      }
      const uint64_t in_slab = rows_per_slab - (num_rows_ & mask_);
      num_rows_ += std::min(in_slab, target - num_rows_);
    }
  }

  float* Row(uint64_t row) {
    CAFE_DCHECK(row < num_rows_);
    return slab_rows_[static_cast<size_t>(row >> shift_)] +
           (row & mask_) * row_floats_;
  }
  const float* Row(uint64_t row) const {
    CAFE_DCHECK(row < num_rows_);
    return slab_rows_[static_cast<size_t>(row >> shift_)] +
           (row & mask_) * row_floats_;
  }

  /// Pops a free-listed row if one exists, else grows by one row. The
  /// returned index is stable until Release()d back.
  uint64_t Acquire() {
    if (!free_rows_.empty()) {
      const uint64_t row = free_rows_.back();
      free_rows_.pop_back();
      return row;
    }
    const uint64_t row = num_rows_;
    Grow(1);
    return row;
  }

  /// Returns `row` to the free list (contents left as-is; the next
  /// Acquire() owner overwrites them).
  void Release(uint64_t row) { free_rows_.push_back(row); }

  uint64_t num_rows() const { return num_rows_; }
  uint32_t row_floats() const { return row_floats_; }

  /// Parameter payload only — what the stores charge against the embedding
  /// budget, identical to the flat vector they used to hold.
  size_t MemoryBytes() const {
    return static_cast<size_t>(num_rows_) * row_floats_ * sizeof(float);
  }

  /// Serializes the pool byte-identically to io::Writer::WriteVec over the
  /// equivalent contiguous num_rows x row_floats vector: U64 element count,
  /// then the raw floats in row order. Checkpoints taken before the pool
  /// conversion load fine after it and vice versa.
  void Save(io::Writer* writer) const {
    writer->WriteU64(num_rows_ * row_floats_);
    const uint64_t rows_per_slab = mask_ + 1;
    uint64_t row = 0;
    for (size_t s = 0; s < slabs_.size() && row < num_rows_; ++s) {
      const uint64_t rows = std::min(rows_per_slab, num_rows_ - row);
      writer->WriteBytes(slab_rows_[s], rows * row_floats_ * sizeof(float));
      row += rows;
    }
  }

  /// Inverse of Save(): fails unless the stored element count matches the
  /// pool's current shape (stores size the pool before loading).
  Status Load(io::Reader* reader, const char* what) {
    uint64_t count = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&count));
    if (count != num_rows_ * row_floats_) {
      return Status::FailedPrecondition(
          std::string("row pool size mismatch for ") + what);
    }
    const uint64_t rows_per_slab = mask_ + 1;
    uint64_t row = 0;
    for (size_t s = 0; s < slabs_.size() && row < num_rows_; ++s) {
      const uint64_t rows = std::min(rows_per_slab, num_rows_ - row);
      CAFE_RETURN_IF_ERROR(reader->ReadBytes(
          slab_rows_[s], rows * row_floats_ * sizeof(float)));
      row += rows;
    }
    return Status::OK();
  }

 private:
  static constexpr uint64_t kSlabBytes = 256 * 1024;

  uint32_t row_floats_ = 0;
  uint32_t shift_ = 0;      // log2(rows per slab)
  uint64_t mask_ = 0;       // rows-per-slab - 1
  uint64_t num_rows_ = 0;
  std::deque<std::vector<float>> slabs_;  // deque: slabs never move
  std::vector<float*> slab_rows_;  // flat directory: one load in Row()
  std::vector<uint64_t> free_rows_;
};

}  // namespace cafe

#endif  // CAFE_EMBED_ROW_POOL_H_
