#ifndef CAFE_EMBED_STORE_OBS_H_
#define CAFE_EMBED_STORE_OBS_H_

// Per-scheme handles into the process-global metrics registry, held by
// every EmbeddingStore (see EmbeddingStore::Obs()). Bound lazily on first
// use because Name() is virtual and unavailable in the base constructor.
//
// Naming: store.<scheme>.<metric>. Metrics aggregate across instances of
// the same scheme — by design only the TRAINING entry points (mutable
// LookupBatch, ApplyGradientBatch*, SaveDelta) are instrumented, and only
// the live trainer store exercises those; snapshot ping-pong buffers and
// frozen serving replicas run the const/LoadDelta paths and contribute
// nothing. The dedup hit rate of a scheme is derivable as
// 1 - backward_unique_total / backward_ids_total.
//
// Cost: one pointer-sized branch (bound check) at the call site plus a
// relaxed shard-local counter add per batch — nanoseconds against a
// multi-microsecond batch. Under CAFE_OBS_DISABLED every method body
// compiles to nothing.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace cafe {

class StoreObs {
 public:
  bool bound() const { return bound_; }

  void Bind(const std::string& scheme) {
#ifndef CAFE_OBS_DISABLED
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    const std::string prefix = "store." + scheme + ".";
    backward_batches_ = registry.GetCounter(prefix + "backward_batches_total");
    backward_ids_ = registry.GetCounter(prefix + "backward_ids_total");
    backward_unique_ = registry.GetCounter(prefix + "backward_unique_total");
    lookup_ids_ = registry.GetCounter(prefix + "lookup_ids_total");
    delta_rows_ = registry.GetCounter(prefix + "delta_rows_total");
    delta_bytes_ = registry.GetCounter(prefix + "delta_bytes_total");
#else
    (void)scheme;
#endif
    bound_ = true;
  }

  /// Training-path forward batch.
  void RecordLookup(size_t ids) {
#ifndef CAFE_OBS_DISABLED
    lookup_ids_->Add(ids);
#else
    (void)ids;
#endif
  }

  /// Backward batch: `ids` occurrences collapsed onto `unique` rows
  /// (unique == ids for stores that apply per-occurrence updates).
  void RecordBackward(size_t ids, size_t unique) {
#ifndef CAFE_OBS_DISABLED
    backward_batches_->Add(1);
    backward_ids_->Add(ids);
    backward_unique_->Add(unique);
#else
    (void)ids;
    (void)unique;
#endif
  }

  /// One SaveDelta cut: rows serialized and bytes appended.
  void RecordDelta(uint64_t rows, uint64_t bytes) {
#ifndef CAFE_OBS_DISABLED
    delta_rows_->Add(rows);
    delta_bytes_->Add(bytes);
#else
    (void)rows;
    (void)bytes;
#endif
  }

 private:
#ifndef CAFE_OBS_DISABLED
  obs::Counter* backward_batches_ = nullptr;
  obs::Counter* backward_ids_ = nullptr;
  obs::Counter* backward_unique_ = nullptr;
  obs::Counter* lookup_ids_ = nullptr;
  obs::Counter* delta_rows_ = nullptr;
  obs::Counter* delta_bytes_ = nullptr;
#endif
  bool bound_ = false;
};

}  // namespace cafe

#endif  // CAFE_EMBED_STORE_OBS_H_
