#ifndef CAFE_EMBED_QR_EMBEDDING_H_
#define CAFE_EMBED_QR_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "embed/dirty_rows.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Quotient-Remainder compositional embedding (Shi et al., KDD 2020): two
/// complementary tables; feature id combines row (id mod m) of the
/// remainder table with row (id div m) of the quotient table, so any two
/// distinct ids differ in at least one of the two rows.
///
/// Combine operations: element-wise add (default here; robust to train in a
/// small SGD stack) or element-wise multiply (the original paper's best).
///
/// Compression limit: the two tables need at least m + ceil(n/m) rows, which
/// is minimized at 2*sqrt(n) — this is why Q-R "can only compress to around
/// 500x" in the paper (§5.2.1). Create() returns ResourceExhausted beyond
/// the feasible ratio, and benches report the method as absent, matching
/// the paper's truncated Q-R curves.
class QrEmbedding : public EmbeddingStore {
 public:
  enum class Combine { kAdd, kMultiply };

  static StatusOr<std::unique_ptr<QrEmbedding>> Create(
      const EmbeddingConfig& config, Combine combine = Combine::kAdd);

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;
  size_t MemoryBytes() const override {
    return (remainder_table_.size() + quotient_table_.size()) * sizeof(float);
  }
  std::string Name() const override { return "qr"; }

  uint64_t remainder_rows() const { return m_; }
  uint64_t quotient_rows() const { return q_rows_; }

 private:
  QrEmbedding(const EmbeddingConfig& config, Combine combine, uint64_t m,
              uint64_t q_rows);

  EmbeddingConfig config_;
  Combine combine_;
  uint64_t m_;       // remainder table rows
  uint64_t q_rows_;  // quotient table rows = ceil(n / m)
  std::vector<float> remainder_table_;
  std::vector<float> quotient_table_;
  // Each component table is its own physical row space: an id's update
  // dirties one row in EACH.
  DirtyRowSet dirty_remainder_;
  DirtyRowSet dirty_quotient_;
};

}  // namespace cafe

#endif  // CAFE_EMBED_QR_EMBEDDING_H_
