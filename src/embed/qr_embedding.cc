#include "embed/qr_embedding.h"

#include <cmath>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {

StatusOr<std::unique_ptr<QrEmbedding>> QrEmbedding::Create(
    const EmbeddingConfig& config, Combine combine) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  const uint64_t n = config.total_features;
  const uint64_t budget_rows =
      config.BudgetBytes() / (config.dim * sizeof(float));
  // Feasibility: need m + ceil(n/m) <= budget_rows for some m >= 1.
  // The minimum of the left side is ~2*sqrt(n).
  const double min_rows = 2.0 * std::sqrt(static_cast<double>(n));
  if (static_cast<double>(budget_rows) < min_rows) {
    return Status::ResourceExhausted(
        "qr embedding: compression ratio beyond the Q-R feasibility limit "
        "(needs >= 2*sqrt(n) rows)");
  }
  // Pick the larger root of m + n/m = budget_rows so the (collision-free
  // within a quotient group) remainder table gets most of the budget,
  // mirroring the reference implementation's small-collision setting.
  const double b = static_cast<double>(budget_rows);
  double m_real = (b + std::sqrt(b * b - 4.0 * static_cast<double>(n))) / 2.0;
  uint64_t m = static_cast<uint64_t>(m_real);
  if (m >= n) m = n - 1;  // keep the quotient table meaningful
  if (m == 0) m = 1;
  uint64_t q_rows = (n + m - 1) / m;
  // Rounding can overshoot the budget by a row; shrink m until it fits.
  while (m + q_rows > budget_rows && m > 1) {
    --m;
    q_rows = (n + m - 1) / m;
  }
  if (m + q_rows > budget_rows) {
    return Status::ResourceExhausted("qr embedding: budget too small");
  }
  return std::unique_ptr<QrEmbedding>(
      new QrEmbedding(config, combine, m, q_rows));
}

QrEmbedding::QrEmbedding(const EmbeddingConfig& config, Combine combine,
                         uint64_t m, uint64_t q_rows)
    : config_(config),
      combine_(combine),
      m_(m),
      q_rows_(q_rows),
      remainder_table_(m * config.dim),
      quotient_table_(q_rows * config.dim) {
  Rng rng(config.seed ^ 0x4243ULL);
  const float bound = embed_internal::InitBound(config.dim);
  if (combine_ == Combine::kAdd) {
    // Each final embedding is a sum of two rows; halve the scale so sums
    // match the other stores' init distribution width.
    for (float& w : remainder_table_) {
      w = rng.UniformFloat(-bound / 2, bound / 2);
    }
    for (float& w : quotient_table_) {
      w = rng.UniformFloat(-bound / 2, bound / 2);
    }
  } else {
    // Multiplicative combine: center quotient rows at 1 so products start
    // near the remainder init (the original paper's recommendation).
    for (float& w : remainder_table_) w = rng.UniformFloat(-bound, bound);
    for (float& w : quotient_table_) {
      w = 1.0f + rng.UniformFloat(-0.05f, 0.05f);
    }
  }
}

void QrEmbedding::Lookup(uint64_t id, float* out) { LookupConst(id, out); }

void QrEmbedding::LookupConst(uint64_t id, float* out) const {
  CAFE_DCHECK(id < config_.total_features);
  const float* r = remainder_table_.data() + (id % m_) * config_.dim;
  const float* q = quotient_table_.data() + (id / m_) * config_.dim;
  if (combine_ == Combine::kAdd) {
    for (uint32_t i = 0; i < config_.dim; ++i) out[i] = r[i] + q[i];
  } else {
    for (uint32_t i = 0; i < config_.dim; ++i) out[i] = r[i] * q[i];
  }
}

void QrEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  CAFE_DCHECK(id < config_.total_features);
  if (dirty_remainder_.enabled()) {
    dirty_remainder_.Mark(id % m_);
    dirty_quotient_.Mark(id / m_);
  }
  float* r = remainder_table_.data() + (id % m_) * config_.dim;
  float* q = quotient_table_.data() + (id / m_) * config_.dim;
  if (combine_ == Combine::kAdd) {
    for (uint32_t i = 0; i < config_.dim; ++i) {
      r[i] -= lr * grad[i];
      q[i] -= lr * grad[i];
    }
  } else {
    for (uint32_t i = 0; i < config_.dim; ++i) {
      const float r_old = r[i];
      r[i] -= lr * grad[i] * q[i];
      q[i] -= lr * grad[i] * r_old;
    }
  }
}

void QrEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                              size_t out_stride) {
  Obs().RecordLookup(n);
  LookupBatchConst(ids, n, out, out_stride);
}

void QrEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                   size_t out_stride) const {
  const uint32_t d = config_.dim;
  const float* rem = remainder_table_.data();
  const float* quo = quotient_table_.data();
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      const uint64_t ahead = ids[i + pf];
      PrefetchRead(rem + (ahead % m_) * d);
      PrefetchRead(quo + (ahead / m_) * d);
    }
    CAFE_DCHECK(ids[i] < config_.total_features);
    const float* r = rem + (ids[i] % m_) * d;
    const float* q = quo + (ids[i] / m_) * d;
    float* o = out + i * out_stride;
    if (combine_ == Combine::kAdd) {
      simd::AddRows(o, r, q, d);
    } else {
      simd::MulRows(o, r, q, d);
    }
  }
}

Status QrEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(m_);
  writer->WriteU64(q_rows_);
  writer->WriteU32(config_.dim);
  writer->WriteU8(combine_ == Combine::kAdd ? 0 : 1);
  writer->WriteVec(remainder_table_);
  writer->WriteVec(quotient_table_);
  return Status::OK();
}

Status QrEmbedding::LoadState(io::Reader* reader) {
  uint64_t m = 0, q_rows = 0;
  uint32_t d = 0;
  uint8_t combine = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&m));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&q_rows));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  CAFE_RETURN_IF_ERROR(reader->ReadU8(&combine));
  if (m != m_ || q_rows != q_rows_ || d != config_.dim ||
      combine != (combine_ == Combine::kAdd ? 0 : 1)) {
    return Status::FailedPrecondition(
        "qr embedding: checkpoint sizing does not match this store");
  }
  CAFE_RETURN_IF_ERROR(reader->ReadVecExpected(
      &remainder_table_, remainder_table_.size(), "qr remainder table"));
  return reader->ReadVecExpected(&quotient_table_, quotient_table_.size(),
                                 "qr quotient table");
}

void QrEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                     const float* grads, size_t grad_stride,
                                     float lr, float clip) {
  // Stream order: ids sharing either component row update it in the same
  // sequence as the scalar loop; gradient elements clamp on read.
  Obs().RecordBackward(n, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_remainder_.enabled();
  float* rem = remainder_table_.data();
  float* quo = quotient_table_.data();
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      const uint64_t ahead = ids[i + pf];
      PrefetchWrite(rem + (ahead % m_) * d);
      PrefetchWrite(quo + (ahead / m_) * d);
    }
    CAFE_DCHECK(ids[i] < config_.total_features);
    if (track) {
      dirty_remainder_.Mark(ids[i] % m_);
      dirty_quotient_.Mark(ids[i] / m_);
    }
    float* r = rem + (ids[i] % m_) * d;
    float* q = quo + (ids[i] / m_) * d;
    const float* g = grads + i * grad_stride;
    if (combine_ == Combine::kAdd) {
      // The two component rows read only their own gradient element, so the
      // interleaved scalar update splits into two element-wise axpy passes
      // with identical per-element rounding.
      simd::AxpyClipNeg(r, g, d, lr, bound);
      simd::AxpyClipNeg(q, g, d, lr, bound);
    } else {
      for (uint32_t k = 0; k < d; ++k) {
        const float gk = embed_internal::ClipVal(g[k], bound);
        const float r_old = r[k];
        r[k] -= lr * gk * q[k];
        q[k] -= lr * gk * r_old;
      }
    }
  }
}

void QrEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                            const float* grads,
                                            size_t grad_stride, float lr,
                                            float clip, ThreadPool* pool,
                                            uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1 || combine_ != Combine::kAdd) {
    // Multiplicative combine couples the two component rows through r_old,
    // so an id's update is one atom that can live in only one shard while
    // BOTH its rows can be shared with other ids in other shards — no row
    // partition exists. kMultiply stays serial (unreachable through the
    // factory, which always builds kAdd).
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Additive combine updates the remainder and quotient rows independently
  // (each only reads its own gradient element), so the two component tables
  // form ONE physical row space: remainder rows at [0, m_), quotient rows
  // at [m_, m_ + q_rows_). A worker scans the stream and applies whichever
  // HALF of each id's update it owns — per-row stream order is preserved
  // and every row still has a single writer.
  Obs().RecordBackward(n, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_remainder_.enabled();
  if (track) {
    dirty_remainder_.EnableShards(num_shards);
    dirty_quotient_.EnableShards(num_shards);
  }
  float* rem = remainder_table_.data();
  float* quo = quotient_table_.data();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t i = 0; i < n; ++i) {
      CAFE_DCHECK(ids[i] < config_.total_features);
      const uint64_t r_row = ids[i] % m_;
      const uint64_t q_row = ids[i] / m_;
      const bool own_r = ShardOfRow(r_row, num_shards) == shard;
      const bool own_q = ShardOfRow(m_ + q_row, num_shards) == shard;
      if (!own_r && !own_q) continue;
      const float* g = grads + i * grad_stride;
      if (own_r) {
        if (track) dirty_remainder_.Mark(r_row, shard);
        simd::AxpyClipNeg(rem + r_row * d, g, d, lr, bound);
      }
      if (own_q) {
        if (track) dirty_quotient_.Mark(q_row, shard);
        simd::AxpyClipNeg(quo + q_row * d, g, d, lr, bound);
      }
    }
  });
  if (track) {
    dirty_remainder_.MergeShards();
    dirty_quotient_.MergeShards();
  }
}

Status QrEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_remainder_.Enable(m_);
    dirty_quotient_.Enable(q_rows_);
  } else {
    dirty_remainder_.Disable();
    dirty_quotient_.Disable();
  }
  return Status::OK();
}

Status QrEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_remainder_.enabled()) {
    return Status::FailedPrecondition(
        "qr embedding: dirty tracking is not enabled");
  }
  writer->WriteU32(config_.dim);
  const size_t delta_start = writer->size();
  const uint64_t delta_rows =
      dirty_remainder_.rows().size() + dirty_quotient_.rows().size();
  delta_internal::WriteDirtyRows(writer, dirty_remainder_,
                                 remainder_table_.data(), config_.dim);
  delta_internal::WriteDirtyRows(writer, dirty_quotient_,
                                 quotient_table_.data(), config_.dim);
  dirty_remainder_.Flush();
  dirty_quotient_.Flush();
  Obs().RecordDelta(delta_rows, writer->size() - delta_start);
  return Status::OK();
}

Status QrEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (d != config_.dim) {
    return Status::FailedPrecondition(
        "qr embedding: delta sizing does not match this store");
  }
  CAFE_RETURN_IF_ERROR(delta_internal::ReadDirtyRows(
      reader, remainder_table_.data(), m_, config_.dim,
      "qr remainder table"));
  return delta_internal::ReadDirtyRows(reader, quotient_table_.data(),
                                       q_rows_, config_.dim,
                                       "qr quotient table");
}

}  // namespace cafe
