#ifndef CAFE_EMBED_MDE_EMBEDDING_H_
#define CAFE_EMBED_MDE_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "embed/batch_dedup.h"
#include "embed/dirty_rows.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Mixed-Dimension Embedding (Ginart et al., ISIT 2021) — the column
/// compression baseline of §5.2.4. Each field f gets a reduced per-feature
/// dimension d_f proportional to its popularity^alpha (popularity proxied by
/// 1/cardinality, as the CAFE paper notes MDE does), plus a learned d_f x d
/// projection lifting rows to the common dimension d.
///
/// Since every feature keeps >= 1 column, the compression ratio is bounded
/// by roughly the embedding dimension d — Create() returns ResourceExhausted
/// past that, matching the truncated MDE curves in Figure 12.
class MdeEmbedding : public EmbeddingStore {
 public:
  struct Options {
    /// Popularity exponent alpha in d_f ∝ p_f^alpha (MDE's temperature).
    double alpha = 0.3;
  };

  static StatusOr<std::unique_ptr<MdeEmbedding>> Create(
      const EmbeddingConfig& config, const FieldLayout& layout,
      const Options& options);
  static StatusOr<std::unique_ptr<MdeEmbedding>> Create(
      const EmbeddingConfig& config, const FieldLayout& layout) {
    return Create(config, layout, Options{});
  }

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "mde"; }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

  uint32_t field_dim(size_t field) const { return field_dims_[field]; }

 private:
  MdeEmbedding(const EmbeddingConfig& config, const FieldLayout& layout,
               std::vector<uint32_t> field_dims);

  /// Forward projection row -> d-dim embedding for one feature (the scalar
  /// Lookup body; the batched path runs it once per unique id).
  void LookupOne(uint64_t id, float* out) const;
  /// Row + projection backward for one feature.
  void ApplyOne(uint64_t id, const float* grad, float lr);

  EmbeddingConfig config_;
  FieldLayout layout_;
  std::vector<uint32_t> field_dims_;        // d_f per field
  std::vector<size_t> table_offset_;        // float offset of field table
  std::vector<size_t> proj_offset_;         // float offset of field proj
  std::vector<float> tables_;               // concat of n_f x d_f tables
  std::vector<float> projections_;          // concat of d_f x d matrices

  // Batch scratch, reused across calls. The d_f x d projection matmul is
  // MDE's per-id cost; dedup runs it once per unique id.
  BatchDeduper dedup_;
  std::vector<float> grad_accum_;  // num_unique x dim

  // Incremental-snapshot tracking: a feature's update dirties its d_f-wide
  // table row (keyed by global feature id) AND its field's whole d_f x d
  // projection matrix (the backward writes every projection element), so
  // projections are tracked per FIELD — a few small matrices per delta.
  DirtyRowSet dirty_features_;
  DirtyRowSet dirty_projections_;
};

}  // namespace cafe

#endif  // CAFE_EMBED_MDE_EMBEDDING_H_
