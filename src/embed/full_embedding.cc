#include "embed/full_embedding.h"

#include <cstring>

#include "common/logging.h"

namespace cafe {

StatusOr<std::unique_ptr<FullEmbedding>> FullEmbedding::Create(
    const EmbeddingConfig& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<FullEmbedding>(new FullEmbedding(config));
}

FullEmbedding::FullEmbedding(const EmbeddingConfig& config)
    : config_(config), table_(config.total_features * config.dim) {
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  for (float& w : table_) w = rng.UniformFloat(-bound, bound);
}

void FullEmbedding::Lookup(uint64_t id, float* out) {
  CAFE_DCHECK(id < config_.total_features);
  std::memcpy(out, table_.data() + id * config_.dim,
              config_.dim * sizeof(float));
}

void FullEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  CAFE_DCHECK(id < config_.total_features);
  float* row = table_.data() + id * config_.dim;
  for (uint32_t i = 0; i < config_.dim; ++i) row[i] -= lr * grad[i];
}

}  // namespace cafe
