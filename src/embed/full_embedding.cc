#include "embed/full_embedding.h"

#include <cstring>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {

StatusOr<std::unique_ptr<FullEmbedding>> FullEmbedding::Create(
    const EmbeddingConfig& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<FullEmbedding>(new FullEmbedding(config));
}

FullEmbedding::FullEmbedding(const EmbeddingConfig& config)
    : config_(config), table_(config.total_features * config.dim) {
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  for (float& w : table_) w = rng.UniformFloat(-bound, bound);
}

void FullEmbedding::Lookup(uint64_t id, float* out) {
  LookupConst(id, out);
}

void FullEmbedding::LookupConst(uint64_t id, float* out) const {
  CAFE_DCHECK(id < config_.total_features);
  std::memcpy(out, table_.data() + id * config_.dim,
              config_.dim * sizeof(float));
}

void FullEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  CAFE_DCHECK(id < config_.total_features);
  if (dirty_.enabled()) dirty_.Mark(id);
  float* row = table_.data() + id * config_.dim;
  for (uint32_t i = 0; i < config_.dim; ++i) row[i] -= lr * grad[i];
}

void FullEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                                size_t out_stride) {
  Obs().RecordLookup(n);
  LookupBatchConst(ids, n, out, out_stride);
}

void FullEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                     size_t out_stride) const {
  const uint32_t d = config_.dim;
  const float* table = table_.data();
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      PrefetchRead(table + ids[i + pf] * d);
    }
    CAFE_DCHECK(ids[i] < config_.total_features);
    simd::CopyRow(out + i * out_stride, table + ids[i] * d, d);
  }
}

Status FullEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(config_.total_features);
  writer->WriteU32(config_.dim);
  writer->WriteVec(table_);
  return Status::OK();
}

Status FullEmbedding::LoadState(io::Reader* reader) {
  uint64_t features = 0;
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&features));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (features != config_.total_features || d != config_.dim) {
    return Status::FailedPrecondition(
        "full embedding: checkpoint sizing does not match this store");
  }
  return reader->ReadVecExpected(&table_, table_.size(), "full table");
}

void FullEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                       const float* grads, size_t grad_stride,
                                       float lr, float clip) {
  // Per-occurrence updates in stream order, gradient elements clamped as
  // they are read straight from the model's strided gradient tensor:
  // bit-identical to the scalar loop over pre-clipped gradients even when
  // the batch repeats ids.
  Obs().RecordBackward(n, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_.enabled();
  float* table = table_.data();
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      PrefetchWrite(table + ids[i + pf] * d);
    }
    CAFE_DCHECK(ids[i] < config_.total_features);
    if (track) dirty_.Mark(ids[i]);
    simd::AxpyClipNeg(table + ids[i] * d, grads + i * grad_stride, d, lr,
                      bound);
  }
}

void FullEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                              const float* grads,
                                              size_t grad_stride, float lr,
                                              float clip, ThreadPool* pool,
                                              uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Row == feature id here, so sharding the row space by ShardOfRow gives
  // every id one owning worker; each worker scans the whole occurrence
  // stream and applies only its rows, preserving per-row stream order —
  // bit-identical to the serial per-occurrence loop.
  Obs().RecordBackward(n, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_.enabled();
  if (track) dirty_.EnableShards(num_shards);
  float* table = table_.data();
  const size_t pf = PrefetchDistance();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t i = 0; i < n; ++i) {
      if (i + pf < n && ShardOfRow(ids[i + pf], num_shards) == shard) {
        PrefetchWrite(table + ids[i + pf] * d);
      }
      if (ShardOfRow(ids[i], num_shards) != shard) continue;
      CAFE_DCHECK(ids[i] < config_.total_features);
      if (track) dirty_.Mark(ids[i], shard);
      simd::AxpyClipNeg(table + ids[i] * d, grads + i * grad_stride, d, lr,
                        bound);
    }
  });
  if (track) dirty_.MergeShards();
}

Status FullEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_.Enable(config_.total_features);
  } else {
    dirty_.Disable();
  }
  return Status::OK();
}

Status FullEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_.enabled()) {
    return Status::FailedPrecondition(
        "full embedding: dirty tracking is not enabled");
  }
  writer->WriteU32(config_.dim);
  const size_t delta_start = writer->size();
  const uint64_t delta_rows = dirty_.rows().size();
  delta_internal::WriteDirtyRows(writer, dirty_, table_.data(), config_.dim);
  dirty_.Flush();
  Obs().RecordDelta(delta_rows, writer->size() - delta_start);
  return Status::OK();
}

Status FullEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (d != config_.dim) {
    return Status::FailedPrecondition(
        "full embedding: delta sizing does not match this store");
  }
  return delta_internal::ReadDirtyRows(reader, table_.data(),
                                       config_.total_features, config_.dim,
                                       "full table");
}

}  // namespace cafe
