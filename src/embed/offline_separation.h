#ifndef CAFE_EMBED_OFFLINE_SEPARATION_H_
#define CAFE_EMBED_OFFLINE_SEPARATION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "embed/batch_dedup.h"
#include "embed/dirty_rows.h"
#include "embed/row_pool.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Offline feature separation (paper §5.2.6): an oracle variant of CAFE
/// that, given full-dataset frequency statistics collected in advance,
/// assigns the top-k most frequent features exclusive rows and hashes the
/// rest into a shared table. No sketch, no migration — it cannot adapt, and
/// it needs an extra offline pass, but it separates features with zero
/// error, making it the natural control for HotSketch's accuracy.
///
/// `hot_rows`/`shared_rows` are passed in so benches can give it exactly the
/// same embedding memory split CAFE uses at the same compression ratio
/// (the paper's comparison protocol). Frequency statistics are charged to
/// MemoryBytes() as 4 bytes per feature ("memory storage ... required for
/// statistics, causing much overhead").
class OfflineSeparationEmbedding : public EmbeddingStore {
 public:
  /// `hot_ids` are the features to give exclusive rows, strongest first;
  /// only the first `hot_rows` are used.
  static StatusOr<std::unique_ptr<OfflineSeparationEmbedding>> Create(
      const EmbeddingConfig& config, uint64_t hot_rows, uint64_t shared_rows,
      const std::vector<uint64_t>& hot_ids);

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "offline"; }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

  uint64_t hot_rows() const { return hot_rows_; }

 private:
  OfflineSeparationEmbedding(const EmbeddingConfig& config, uint64_t hot_rows,
                             uint64_t shared_rows,
                             const std::vector<uint64_t>& hot_ids);

  /// Hot-or-shared row of `id` (one hash-map probe; the batched paths
  /// resolve it once per unique id).
  float* RowOf(uint64_t id);
  const float* RowOf(uint64_t id) const;

  /// Physical row of `id` in the combined space [0, hot_rows) hot,
  /// [hot_rows, hot_rows + shared_rows) shared — what the dirty sets and
  /// the update paths key on (the pointer falls out of the index).
  uint64_t RowIndexOf(uint64_t id) const {
    auto it = hot_index_.find(id);
    return it != hot_index_.end() ? it->second
                                  : hot_rows_ + hash_.Bounded(id, shared_rows_);
  }
  float* RowAt(uint64_t index) {
    return index < hot_rows_ ? hot_pool_.Row(index)
                             : shared_pool_.Row(index - hot_rows_);
  }
  void MarkRow(uint64_t index) {
    if (index < hot_rows_) {
      dirty_hot_.Mark(index);
    } else {
      dirty_shared_.Mark(index - hot_rows_);
    }
  }
  /// Shard-local MarkRow for the parallel scatter (the worker owning the
  /// combined-space row stages into its own list).
  void MarkRow(uint64_t index, uint32_t shard) {
    if (index < hot_rows_) {
      dirty_hot_.Mark(index, shard);
    } else {
      dirty_shared_.Mark(index - hot_rows_, shard);
    }
  }

  EmbeddingConfig config_;
  uint64_t hot_rows_;
  uint64_t shared_rows_;
  SeededHash hash_;
  std::unordered_map<uint64_t, uint32_t> hot_index_;  // feature -> hot row
  RowPool hot_pool_;     // hot_rows x dim, slab-pooled
  RowPool shared_pool_;  // shared_rows x dim, slab-pooled

  // Batch scratch, reused across calls.
  BatchDeduper dedup_;
  std::vector<float> grad_accum_;      // num_unique x dim
  std::vector<float*> row_scratch_;    // num_unique resolved rows
  std::vector<uint64_t> index_scratch_;  // num_unique combined-space rows

  // Incremental-snapshot tracking, one set per physical table.
  DirtyRowSet dirty_hot_;
  DirtyRowSet dirty_shared_;
};

}  // namespace cafe

#endif  // CAFE_EMBED_OFFLINE_SEPARATION_H_
