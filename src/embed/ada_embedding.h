#ifndef CAFE_EMBED_ADA_EMBEDDING_H_
#define CAFE_EMBED_ADA_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "embed/batch_dedup.h"
#include "embed/dirty_rows.h"
#include "embed/row_pool.h"
#include "embed/embedding_store.h"

namespace cafe {

/// AdaEmbed (Lai et al., OSDI 2023) reimplementation: the adaptive baseline.
///
/// Keeps a per-feature importance score (gradient-norm accumulator with
/// periodic decay) for ALL n features, plus a pool of embedding rows that is
/// periodically reallocated to the currently most-important features.
/// Features without a row embed to the zero vector (their former embeddings
/// are discarded, per the paper's description).
///
/// Memory accounting (paper §1.2/§5.2.1): the score (4B) and row index (4B)
/// arrays scale with n and count against the budget, which is why AdaEmbed
/// cannot reach large compression ratios — at dim 16 and CR > ~8 the
/// overhead alone exceeds the budget and Create() returns ResourceExhausted,
/// reproducing the truncated AdaEmbed curves.
///
/// Latency (paper §5.2.5): each reallocation scans all n scores (the
/// "sampling and checking" cost), which makes AdaEmbed the slowest method in
/// the Figure 13 bench, as in the paper.
class AdaEmbedding : public EmbeddingStore {
 public:
  struct Options {
    /// Iterations between reallocation scans.
    uint64_t realloc_interval = 1000;
    /// Multiplicative score decay applied at each reallocation.
    double score_decay = 0.9;
    /// Fraction of rows allowed to migrate per reallocation (the AdaEmbed
    /// paper bounds migration churn; 1.0 = unbounded).
    double max_migration_fraction = 0.1;
  };

  static StatusOr<std::unique_ptr<AdaEmbedding>> Create(
      const EmbeddingConfig& config, const Options& options);
  static StatusOr<std::unique_ptr<AdaEmbedding>> Create(
      const EmbeddingConfig& config) {
    return Create(config, Options{});
  }

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  void Tick() override;
  size_t MemoryBytes() const override;
  std::string Name() const override { return "ada"; }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

  uint64_t num_rows() const { return num_rows_; }
  uint64_t allocated_features() const { return allocated_count_; }

 private:
  AdaEmbedding(const EmbeddingConfig& config, const Options& options,
               uint64_t num_rows);

  /// Score update + cold-start row claim + SGD step for one feature; the
  /// scalar path calls it per occurrence (score_inc = the gradient's L2
  /// norm), the batched path once per unique id with the accumulated
  /// gradient and the summed per-occurrence norms.
  void ApplyOne(uint64_t id, const float* grad, float lr, double score_inc);

  /// Reassigns rows to the top-importance features (bounded churn).
  void Reallocate();

  EmbeddingConfig config_;
  Options options_;
  uint64_t num_rows_;
  uint64_t iteration_ = 0;
  uint64_t allocated_count_ = 0;
  Rng rng_;

  std::vector<float> scores_;      // n, importance per feature
  std::vector<int32_t> row_of_;    // n, -1 if feature has no row
  std::vector<uint64_t> owner_of_; // num_rows, feature owning each row
  std::vector<int32_t> free_rows_;
  RowPool pool_;                   // num_rows x dim, slab-pooled

  // Batch scratch, reused across calls.
  BatchDeduper dedup_;
  std::vector<float> grad_accum_;        // num_unique x dim
  std::vector<double> importance_accum_; // num_unique
  std::vector<int64_t> row_scratch_;

  // Incremental-snapshot tracking. AdaEmbed mutates TWO big spaces: the
  // per-feature score / row-index arrays (keyed by feature id) and the
  // row pool (keyed by physical row; a dirty row also carries its owner).
  // A reallocation decays EVERY score with one fixed coefficient, so the
  // delta ships the number of decay passes since the last cut and the
  // apply side replays the multiply deterministically — O(1) on the wire
  // instead of the whole score array.
  DirtyRowSet dirty_features_;
  DirtyRowSet dirty_rows_;
  uint64_t pending_score_decays_ = 0;

  // Registry handles (store.ada.*), bound in the constructor. Admissions =
  // cold-start claims + reallocation admits; evictions = reallocation
  // victims. Gauges track the pool occupancy after each maintenance tick.
  obs::Counter* obs_admissions_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
  obs::Counter* obs_realloc_ticks_ = nullptr;
  obs::Gauge* obs_allocated_rows_ = nullptr;
};

}  // namespace cafe

#endif  // CAFE_EMBED_ADA_EMBEDDING_H_
