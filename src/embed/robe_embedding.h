#ifndef CAFE_EMBED_ROBE_EMBEDDING_H_
#define CAFE_EMBED_ROBE_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "embed/dirty_rows.h"
#include "embed/embedding_store.h"

namespace cafe {

/// ROBE — Random Offset Block Embedding (Desai et al., arXiv 2108.02191):
/// ONE flat parameter array of m floats; feature id's embedding is the
/// contiguous window [h(id), h(id)+d) mod m, so windows overlap at
/// arbitrary offsets and colliding ids share individual PARAMETERS rather
/// than whole rows. Compression ratio is a free parameter (m = budget
/// floats, no row granularity), and every lookup is one or two contiguous
/// reads — cache-friendlier than the hashing trick's row gather, which is
/// why this store anchors the SIMD gather/scatter pass.
///
/// Physical-row bookkeeping (dirty tracking, shard ownership) works on
/// aligned d-float blocks of the flat array: m is rounded down to a
/// multiple of d, so any window touches at most two adjacent blocks (the
/// second possibly wrapping to block 0). Updates are per-occurrence in
/// stream order like full/hash/qr — bit-identical to the scalar loop —
/// and the sharded backward partitions blocks by ShardOfRow, splitting
/// each window at block boundaries so every parameter keeps exactly one
/// writing shard.
class RobeEmbedding : public EmbeddingStore {
 public:
  static StatusOr<std::unique_ptr<RobeEmbedding>> Create(
      const EmbeddingConfig& config);

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  size_t MemoryBytes() const override { return flat_.size() * sizeof(float); }
  std::string Name() const override { return "robe"; }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

  /// Flat-array size in floats (m, a multiple of dim).
  uint64_t num_slots() const { return slots_; }
  /// Aligned d-float blocks — the physical row space for dirty tracking
  /// and shard ownership.
  uint64_t num_rows() const { return num_rows_; }

 private:
  RobeEmbedding(const EmbeddingConfig& config, uint64_t slots);

  /// Window start for `id`, uniform over [0, slots_).
  uint64_t BaseOf(uint64_t id) const { return hash_.Bounded(id, slots_); }

  /// Invokes fn(row, slot, grad_offset, len) for each block-aligned piece
  /// of the window at `base`, in window order. A window of d floats over
  /// d-float blocks yields at most two pieces; only the second can wrap
  /// (to block 0), so `slot` pieces are always contiguous in memory.
  template <typename Fn>
  void ForEachRowPiece(uint64_t base, Fn&& fn) const {
    const uint32_t d = config_.dim;
    uint64_t off = base;
    uint32_t done = 0;
    while (done < d) {
      if (off >= slots_) off -= slots_;
      const uint64_t row = off / d;
      const uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>(d - done, (row + 1) * d - off));
      fn(row, off, done, len);
      off += len;
      done += len;
    }
  }

  /// Marks the (at most two) blocks the window at `base` touches.
  void MarkWindow(uint64_t base) {
    const uint64_t row = base / config_.dim;
    dirty_.Mark(row);
    if (base % config_.dim != 0) dirty_.Mark(row + 1 == num_rows_ ? 0
                                                                  : row + 1);
  }

  EmbeddingConfig config_;
  uint64_t slots_;     // m: flat floats, multiple of dim
  uint64_t num_rows_;  // slots_ / dim
  SeededHash hash_;
  std::vector<float> flat_;  // the single shared parameter array
  /// Window bases of the in-flight batch: hashed once up front so the
  /// gather/scatter loops can prefetch ahead. Reused across calls.
  std::vector<uint64_t> base_scratch_;
  DirtyRowSet dirty_;  // aligned blocks touched since the last delta cut
};

}  // namespace cafe

#endif  // CAFE_EMBED_ROBE_EMBEDDING_H_
