#ifndef CAFE_EMBED_BATCH_DEDUP_H_
#define CAFE_EMBED_BATCH_DEDUP_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "common/simd.h"
#include "embed/embedding_store.h"

namespace cafe {

/// In-batch unique-id deduplicator for the batched embedding paths.
///
/// Adaptive stores (AdaEmbed, CAFE, offline separation, MDE) pay a per-id
/// probe — sketch lookup, hash-map find, score bookkeeping — on every
/// Lookup/ApplyGradient. Recommendation batches are heavily skewed (Zipf
/// within every field), so a 4096-id batch typically contains far fewer
/// unique ids; deduplicating once per batch turns O(batch) probes into
/// O(unique) probes and lets gradients accumulate per unique id before a
/// single update, which is how per-batch sketch insertion works in the
/// paper's training loop.
///
/// Two index structures, chosen per batch by the id RANGE (max - min):
///  - dense: per-field batches span at most the field's cardinality, and
///    most CTR fields are small, so a direct-indexed, generation-stamped
///    array (entry = generation<<32 | unique index) covers them with one
///    L1/L2 access per id and no hashing;
///  - probe: open-addressing over hashed ids for wide-range (multi-field or
///    huge-field) batches.
///
/// All scratch is owned by the store and reused across calls (lazy reset
/// via generation stamps), so steady-state Build() does no allocation.
/// Unique ids keep first-appearance order in both modes: stores process
/// unique ids in exactly the order the scalar path would first touch them,
/// which keeps batched execution bit-identical to the scalar path whenever
/// each id occurs once in the batch.
class BatchDeduper {
 public:
  /// Deduplicates ids[0..n). After the call: num_unique() unique ids in
  /// first-appearance order, per-unique occurrence counts, and a per-
  /// occurrence map to unique indices.
  void Build(const uint64_t* ids, size_t n) { BuildInternal(ids, n, n); }

  /// Like Build, but gives up when deduplication is not paying: after a
  /// prefix of `sample` ids, if more than `abandon_fraction` of them were
  /// unique the rest of the batch would mostly miss the scratch table and
  /// the caller is better off on its direct per-occurrence loop. Returns
  /// true when the full dedup was built, false when abandoned (the
  /// deduper's accessors are then unspecified).
  bool BuildAdaptive(const uint64_t* ids, size_t n, size_t sample = 512,
                     double abandon_fraction = 0.45) {
    if (n <= sample) {
      BuildInternal(ids, n, n);
      return true;
    }
    BuildInternal(ids, n, sample);
    if (static_cast<double>(unique_.size()) >
        abandon_fraction * static_cast<double>(sample)) {
      return false;
    }
    ResumeInternal(ids, sample, n);
    return true;
  }

  size_t num_unique() const { return unique_.size(); }
  const std::vector<uint64_t>& unique_ids() const { return unique_; }
  uint64_t unique_id(size_t u) const { return unique_[u]; }
  /// Occurrences of unique id `u` in the batch.
  uint32_t count(size_t u) const { return counts_[u]; }
  /// Unique index of occurrence `i`.
  uint32_t unique_of(size_t i) const { return occ_to_unique_[i]; }
  /// Batch position where unique id `u` first appeared.
  uint32_t first_occurrence(size_t u) const { return first_occurrence_[u]; }

  /// Sums per-occurrence rows (dim floats at grads + i*stride, each element
  /// clamped to [-clip, clip] on read when clip > 0) into per-unique rows:
  /// (*accum)[u*dim ..] = sum over occurrences of unique id u, added in
  /// occurrence order so a single-occurrence id reproduces its (clipped)
  /// gradient bit-for-bit. The clip-on-read is bit-identical to clamping
  /// into a contiguous staging buffer first — which is exactly the copy the
  /// strided backward path deletes.
  void AccumulateRows(const float* grads, size_t n, uint32_t dim,
                      size_t stride, float clip,
                      std::vector<float>* accum) const {
    const float bound = embed_internal::ClipBound(clip);
    accum->assign(unique_.size() * dim, 0.0f);
    float* acc = accum->data();
    for (size_t i = 0; i < n; ++i) {
      simd::AccumClip(acc + static_cast<size_t>(occ_to_unique_[i]) * dim,
                      grads + i * stride, dim, bound);
    }
  }
  /// Packed, unclipped overload.
  void AccumulateRows(const float* grads, size_t n, uint32_t dim,
                      std::vector<float>* accum) const {
    AccumulateRows(grads, n, dim, dim, /*clip=*/0.0f, accum);
  }

  /// Sums per-occurrence (clipped) gradient L2 norms into per-unique
  /// importances. Summing norms — NOT taking the norm of the sum — is
  /// load-bearing for the importance-tracking stores: mixed-sign gradients
  /// across a batch must not cancel a hot feature's importance, and it
  /// keeps batched scores identical to the scalar stream's totals.
  void AccumulateNorms(const float* grads, size_t n, uint32_t dim,
                       size_t stride, float clip,
                       std::vector<double>* accum) const {
    const float bound = embed_internal::ClipBound(clip);
    accum->assign(unique_.size(), 0.0);
    double* acc = accum->data();
    for (size_t i = 0; i < n; ++i) {
      acc[occ_to_unique_[i]] +=
          embed_internal::ClippedGradNorm(grads + i * stride, dim, bound);
    }
  }
  /// Packed, unclipped overload.
  void AccumulateNorms(const float* grads, size_t n, uint32_t dim,
                       std::vector<double>* accum) const {
    AccumulateNorms(grads, n, dim, dim, /*clip=*/0.0f, accum);
  }

  /// Ownership-filtered AccumulateRows for the parallel backward: zeroes
  /// and accumulates ONLY the unique rows with owns(u) true, scanning the
  /// full occurrence stream in order. An owned row therefore receives its
  /// adds in exactly the serial order, so workers covering a partition of
  /// the unique indices reproduce the serial accumulation buffer bit for
  /// bit while writing disjoint `accum` slices (no synchronization).
  /// `accum` must already be sized num_unique() * dim by the caller.
  template <typename OwnsFn>
  void AccumulateRowsSharded(const float* grads, size_t n, uint32_t dim,
                             size_t stride, float clip, float* accum,
                             const OwnsFn& owns) const {
    const float bound = embed_internal::ClipBound(clip);
    for (size_t u = 0; u < unique_.size(); ++u) {
      if (owns(static_cast<uint32_t>(u))) {
        std::memset(accum + u * dim, 0, dim * sizeof(float));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t u = occ_to_unique_[i];
      if (!owns(u)) continue;
      simd::AccumClip(accum + static_cast<size_t>(u) * dim, grads + i * stride,
                      dim, bound);
    }
  }

  /// Ownership-filtered AccumulateNorms, same partition contract as
  /// AccumulateRowsSharded. `accum` must be sized num_unique().
  template <typename OwnsFn>
  void AccumulateNormsSharded(const float* grads, size_t n, uint32_t dim,
                              size_t stride, float clip, double* accum,
                              const OwnsFn& owns) const {
    const float bound = embed_internal::ClipBound(clip);
    for (size_t u = 0; u < unique_.size(); ++u) {
      if (owns(static_cast<uint32_t>(u))) accum[u] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t u = occ_to_unique_[i];
      if (!owns(u)) continue;
      accum[u] +=
          embed_internal::ClippedGradNorm(grads + i * stride, dim, bound);
    }
  }

  /// Replicates each unique id's finished row (already materialized at its
  /// first occurrence in `out`, dim floats per `stride`-float slot) to every
  /// duplicate occurrence. The shared tail of the dedup'd LookupBatch paths.
  void ReplicateRows(float* out, size_t n, uint32_t dim,
                     size_t stride) const {
    if (unique_.size() == n) return;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t first = first_occurrence_[occ_to_unique_[i]];
      if (first != i) {
        simd::CopyRow(out + i * stride,
                      out + static_cast<size_t>(first) * stride, dim);
      }
    }
  }
  void ReplicateRows(float* out, size_t n, uint32_t dim) const {
    ReplicateRows(out, n, dim, dim);
  }

 private:
  /// Ranges up to this span use the dense direct-indexed path; 64Ki entries
  /// of 8 bytes keep the scratch inside L2 even for the largest dense case,
  /// and inside L1 for the small fields that dominate CTR data.
  static constexpr uint64_t kDenseRangeLimit = 1ULL << 16;

  void BuildInternal(const uint64_t* ids, size_t n, size_t prefix) {
    unique_.clear();
    counts_.clear();
    first_occurrence_.clear();
    occ_to_unique_.resize(n);

    uint64_t min_id = ~0ULL, max_id = 0;
    for (size_t i = 0; i < n; ++i) {
      min_id = std::min(min_id, ids[i]);
      max_id = std::max(max_id, ids[i]);
    }
    base_ = min_id;
    dense_mode_ = n > 0 && (max_id - min_id) < kDenseRangeLimit;

    if (dense_mode_) {
      const size_t span = static_cast<size_t>(max_id - min_id) + 1;
      if (span > dense_.size()) {
        dense_.assign(span, 0);
        dense_generation_ = 0;
      }
      ++dense_generation_;
      if (dense_generation_ == 0) {  // u32 wrap: stamps are stale
        std::fill(dense_.begin(), dense_.end(), 0);
        dense_generation_ = 1;
      }
    } else {
      size_t want = 16;
      while (want < 2 * n) want <<= 1;
      if (want > slots_.size()) {
        slots_.assign(want, Slot{});
        probe_generation_ = 0;
      }
      ++probe_generation_;
      if (probe_generation_ == 0) {
        std::memset(slots_.data(), 0, slots_.size() * sizeof(Slot));
        probe_generation_ = 1;
      }
    }
    ResumeInternal(ids, 0, prefix);
  }

  void ResumeInternal(const uint64_t* ids, size_t begin, size_t end) {
    if (dense_mode_) {
      const uint64_t tag = static_cast<uint64_t>(dense_generation_) << 32;
      for (size_t i = begin; i < end; ++i) {
        uint64_t& entry = dense_[ids[i] - base_];
        if ((entry >> 32) != dense_generation_) {
          const uint32_t index = static_cast<uint32_t>(unique_.size());
          entry = tag | index;
          RecordNewUnique(ids[i], i);
          occ_to_unique_[i] = index;
        } else {
          const uint32_t index = static_cast<uint32_t>(entry);
          occ_to_unique_[i] = index;
          ++counts_[index];
        }
      }
      return;
    }
    const uint64_t mask = slots_.size() - 1;
    for (size_t i = begin; i < end; ++i) {
      const uint64_t id = ids[i];
      uint64_t h = HashMix(id, /*seed=*/0x6e0bULL) & mask;
      for (;;) {
        Slot& slot = slots_[h];
        if (slot.generation != probe_generation_) {
          slot.generation = probe_generation_;
          slot.id = id;
          slot.unique_index = static_cast<uint32_t>(unique_.size());
          occ_to_unique_[i] = slot.unique_index;
          RecordNewUnique(id, i);
          break;
        }
        if (slot.id == id) {
          occ_to_unique_[i] = slot.unique_index;
          ++counts_[slot.unique_index];
          break;
        }
        h = (h + 1) & mask;
      }
    }
  }

  void RecordNewUnique(uint64_t id, size_t occurrence) {
    unique_.push_back(id);
    counts_.push_back(1);
    first_occurrence_.push_back(static_cast<uint32_t>(occurrence));
  }

  struct Slot {
    uint64_t id = 0;
    uint32_t generation = 0;
    uint32_t unique_index = 0;
  };

  // Probe-mode scratch.
  std::vector<Slot> slots_;
  uint32_t probe_generation_ = 0;
  // Dense-mode scratch: entry = generation<<32 | unique index.
  std::vector<uint64_t> dense_;
  uint32_t dense_generation_ = 0;
  uint64_t base_ = 0;
  bool dense_mode_ = false;

  std::vector<uint64_t> unique_;
  std::vector<uint32_t> counts_;
  std::vector<uint32_t> first_occurrence_;
  std::vector<uint32_t> occ_to_unique_;
};

}  // namespace cafe

#endif  // CAFE_EMBED_BATCH_DEDUP_H_
