#ifndef CAFE_EMBED_HASH_EMBEDDING_H_
#define CAFE_EMBED_HASH_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "embed/dirty_rows.h"
#include "embed/row_pool.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Hash embedding (the "hashing trick", Weinberger et al. 2009): a table of
/// floor(n / CR) rows; feature id maps to row hash(id) % rows, so colliding
/// features share a row and each other's gradients. The simplest row
/// compressor, the lower-bound baseline of the paper, and the only baseline
/// besides CAFE that reaches 10000x compression.
class HashEmbedding : public EmbeddingStore {
 public:
  static StatusOr<std::unique_ptr<HashEmbedding>> Create(
      const EmbeddingConfig& config);

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  size_t MemoryBytes() const override { return pool_.MemoryBytes(); }
  std::string Name() const override { return "hash"; }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

  uint64_t num_rows() const { return num_rows_; }

 private:
  HashEmbedding(const EmbeddingConfig& config, uint64_t num_rows);

  uint64_t RowOf(uint64_t id) const { return hash_.Bounded(id, num_rows_); }

  /// Every kCollisionSampleInterval backward batches, measures the batch's
  /// observed bucket-sharing rate (1 - unique buckets / unique ids) into
  /// the store.hash.sampled_collision_rate gauge. Sampled because an exact
  /// count needs two dedup passes the hot path should not pay.
  void MaybeSampleCollisions(const uint64_t* ids, size_t n);

  EmbeddingConfig config_;
  uint64_t num_rows_;
  SeededHash hash_;
  RowPool pool_;  // num_rows x dim, slab-pooled
  /// Row indices of the in-flight batch: hashed once up front so the
  /// gather loop can prefetch rows ahead of the copy. Reused across calls.
  std::vector<uint64_t> row_scratch_;
  DirtyRowSet dirty_;  // hash buckets touched since the last delta cut
  size_t collision_sample_tick_ = 0;
};

}  // namespace cafe

#endif  // CAFE_EMBED_HASH_EMBEDDING_H_
