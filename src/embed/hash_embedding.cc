#include "embed/hash_embedding.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {

StatusOr<std::unique_ptr<HashEmbedding>> HashEmbedding::Create(
    const EmbeddingConfig& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  const uint64_t budget_rows =
      config.BudgetBytes() / (config.dim * sizeof(float));
  if (budget_rows == 0) {
    return Status::ResourceExhausted(
        "hash embedding: budget below one row; lower the compression ratio");
  }
  const uint64_t rows = std::min<uint64_t>(budget_rows, config.total_features);
  return std::unique_ptr<HashEmbedding>(new HashEmbedding(config, rows));
}

HashEmbedding::HashEmbedding(const EmbeddingConfig& config, uint64_t num_rows)
    : config_(config),
      num_rows_(num_rows),
      hash_(config.seed ^ 0x9a55a550ULL) {
  pool_.Reset(num_rows, config.dim);
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  for (uint64_t r = 0; r < num_rows; ++r) {
    float* row = pool_.Row(r);
    for (uint32_t k = 0; k < config.dim; ++k) {
      row[k] = rng.UniformFloat(-bound, bound);
    }
  }
}

void HashEmbedding::Lookup(uint64_t id, float* out) { LookupConst(id, out); }

void HashEmbedding::LookupConst(uint64_t id, float* out) const {
  std::memcpy(out, pool_.Row(RowOf(id)), config_.dim * sizeof(float));
}

void HashEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  const uint64_t bucket = RowOf(id);
  if (dirty_.enabled()) dirty_.Mark(bucket);
  float* row = pool_.Row(bucket);
  for (uint32_t i = 0; i < config_.dim; ++i) row[i] -= lr * grad[i];
}

void HashEmbedding::MaybeSampleCollisions(const uint64_t* ids, size_t n) {
#ifndef CAFE_OBS_DISABLED
  constexpr size_t kCollisionSampleInterval = 64;
  if (n == 0 || (collision_sample_tick_++ % kCollisionSampleInterval) != 0) {
    return;
  }
  std::unordered_set<uint64_t> unique_ids;
  std::unordered_set<uint64_t> unique_buckets;
  unique_ids.reserve(n);
  unique_buckets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    unique_ids.insert(ids[i]);
    unique_buckets.insert(RowOf(ids[i]));
  }
  const double rate =
      1.0 - static_cast<double>(unique_buckets.size()) /
                static_cast<double>(unique_ids.size());
  static obs::Gauge* const gauge = obs::MetricsRegistry::Global().GetGauge(
      "store.hash.sampled_collision_rate");
  gauge->Set(rate);
#else
  (void)ids;
  (void)n;
#endif
}

void HashEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                                size_t out_stride) {
  Obs().RecordLookup(n);
  const uint32_t d = config_.dim;
  const size_t pf = PrefetchDistance();
  row_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) row_scratch_[i] = RowOf(ids[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      PrefetchRead(pool_.Row(row_scratch_[i + pf]));
    }
    simd::CopyRow(out + i * out_stride, pool_.Row(row_scratch_[i]), d);
  }
}

void HashEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                     size_t out_stride) const {
  // Scratch-free (concurrent serving callers): the row of the id
  // PrefetchDistance() ahead is hashed twice — once to prefetch, once to
  // copy — which is still far cheaper than a DRAM stall per row.
  const uint32_t d = config_.dim;
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      PrefetchRead(pool_.Row(RowOf(ids[i + pf])));
    }
    simd::CopyRow(out + i * out_stride, pool_.Row(RowOf(ids[i])), d);
  }
}

Status HashEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(num_rows_);
  writer->WriteU32(config_.dim);
  pool_.Save(writer);
  return Status::OK();
}

Status HashEmbedding::LoadState(io::Reader* reader) {
  uint64_t rows = 0;
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (rows != num_rows_ || d != config_.dim) {
    return Status::FailedPrecondition(
        "hash embedding: checkpoint sizing does not match this store");
  }
  return pool_.Load(reader, "hash table");
}

void HashEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                       const float* grads, size_t grad_stride,
                                       float lr, float clip) {
  // Stream order is preserved so colliding ids scatter their updates in the
  // same sequence as the scalar loop (bit-identical results); gradient
  // elements clamp on read straight from the strided tensor.
  Obs().RecordBackward(n, n);
  MaybeSampleCollisions(ids, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_.enabled();
  const size_t pf = PrefetchDistance();
  row_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) row_scratch_[i] = RowOf(ids[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      PrefetchWrite(pool_.Row(row_scratch_[i + pf]));
    }
    if (track) dirty_.Mark(row_scratch_[i]);
    simd::AxpyClipNeg(pool_.Row(row_scratch_[i]), grads + i * grad_stride, d,
                      lr, bound);
  }
}

void HashEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                              const float* grads,
                                              size_t grad_stride, float lr,
                                              float clip, ThreadPool* pool,
                                              uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Shards partition BUCKETS (physical rows), so colliding ids land in the
  // same shard and their updates keep stream order — the serial collision
  // semantics, just spread over workers. The hash pass fills row_scratch_
  // first (disjoint index ranges), then every worker scans the stream and
  // scatters only the buckets it owns.
  Obs().RecordBackward(n, n);
  MaybeSampleCollisions(ids, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_.enabled();
  if (track) dirty_.EnableShards(num_shards);
  row_scratch_.resize(n);
  uint64_t* rows = row_scratch_.data();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    const size_t begin = n * shard / num_shards;
    const size_t end = n * (shard + 1) / num_shards;
    for (size_t i = begin; i < end; ++i) rows[i] = RowOf(ids[i]);
  });
  const size_t pf = PrefetchDistance();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t i = 0; i < n; ++i) {
      if (i + pf < n && ShardOfRow(rows[i + pf], num_shards) == shard) {
        PrefetchWrite(pool_.Row(rows[i + pf]));
      }
      if (ShardOfRow(rows[i], num_shards) != shard) continue;
      if (track) dirty_.Mark(rows[i], shard);
      simd::AxpyClipNeg(pool_.Row(rows[i]), grads + i * grad_stride, d, lr,
                        bound);
    }
  });
  if (track) dirty_.MergeShards();
}

Status HashEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_.Enable(num_rows_);
  } else {
    dirty_.Disable();
  }
  return Status::OK();
}

Status HashEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_.enabled()) {
    return Status::FailedPrecondition(
        "hash embedding: dirty tracking is not enabled");
  }
  writer->WriteU32(config_.dim);
  const size_t delta_start = writer->size();
  const uint64_t delta_rows = dirty_.rows().size();
  delta_internal::WriteDirtyRowsAt(
      writer, dirty_, [this](uint64_t row) { return pool_.Row(row); },
      config_.dim);
  dirty_.Flush();
  Obs().RecordDelta(delta_rows, writer->size() - delta_start);
  return Status::OK();
}

Status HashEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (d != config_.dim) {
    return Status::FailedPrecondition(
        "hash embedding: delta sizing does not match this store");
  }
  return delta_internal::ReadDirtyRowsAt(
      reader, [this](uint64_t row) { return pool_.Row(row); }, num_rows_,
      config_.dim, "hash table");
}

}  // namespace cafe
