#ifndef CAFE_EMBED_FULL_EMBEDDING_H_
#define CAFE_EMBED_FULL_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "embed/dirty_rows.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Uncompressed embedding table: one exclusive row per feature. The "ideal"
/// upper-bound baseline in every figure of the paper. Ignores the configured
/// compression ratio (always stores n rows).
class FullEmbedding : public EmbeddingStore {
 public:
  static StatusOr<std::unique_ptr<FullEmbedding>> Create(
      const EmbeddingConfig& config);

  uint32_t dim() const override { return config_.dim; }
  void Lookup(uint64_t id, float* out) override;
  void LookupConst(uint64_t id, float* out) const override;
  void ApplyGradient(uint64_t id, const float* grad, float lr) override;
  using EmbeddingStore::LookupBatch;
  void LookupBatch(const uint64_t* ids, size_t n, float* out,
                   size_t out_stride) override;
  void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                        size_t out_stride) const override;
  using EmbeddingStore::ApplyGradientBatch;
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          size_t grad_stride, float lr, float clip) override;
  void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                 const float* grads, size_t grad_stride,
                                 float lr, float clip, ThreadPool* pool,
                                 uint32_t num_shards) override;
  size_t MemoryBytes() const override {
    return table_.size() * sizeof(float);
  }
  std::string Name() const override { return "full"; }
  Status SaveState(io::Writer* writer) const override;
  Status LoadState(io::Reader* reader) override;
  bool SupportsIncrementalSnapshots() const override { return true; }
  using EmbeddingStore::EnableDirtyTracking;
  Status EnableDirtyTracking(bool enable) override;
  Status SaveDelta(io::Writer* writer) override;
  Status LoadDelta(io::Reader* reader) override;

 private:
  explicit FullEmbedding(const EmbeddingConfig& config);

  EmbeddingConfig config_;
  std::vector<float> table_;  // n x dim
  DirtyRowSet dirty_;         // table rows touched since the last delta cut
};

}  // namespace cafe

#endif  // CAFE_EMBED_FULL_EMBEDDING_H_
