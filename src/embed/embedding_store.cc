#include "embed/embedding_store.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cafe {

FieldLayout::FieldLayout(std::vector<uint64_t> cardinalities)
    : cardinalities_(std::move(cardinalities)) {
  offsets_.reserve(cardinalities_.size());
  for (uint64_t card : cardinalities_) {
    CAFE_CHECK(card > 0) << "field cardinality must be positive";
    offsets_.push_back(total_);
    total_ += card;
  }
}

size_t FieldLayout::FieldOf(uint64_t global_id) const {
  CAFE_DCHECK(global_id < total_) << "global id out of range";
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), global_id);
  return static_cast<size_t>(it - offsets_.begin()) - 1;
}

Status EmbeddingConfig::Validate() const {
  if (total_features == 0) {
    return Status::InvalidArgument("total_features must be positive");
  }
  if (dim == 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (compression_ratio < 1.0) {
    return Status::InvalidArgument("compression_ratio must be >= 1");
  }
  return Status::OK();
}

void EmbeddingStore::LookupBatch(const uint64_t* ids, size_t n, float* out,
                                 size_t out_stride) {
  for (size_t i = 0; i < n; ++i) Lookup(ids[i], out + i * out_stride);
}

void EmbeddingStore::LookupBatchConst(const uint64_t* ids, size_t n,
                                      float* out, size_t out_stride) const {
  for (size_t i = 0; i < n; ++i) LookupConst(ids[i], out + i * out_stride);
}

void EmbeddingStore::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                        const float* grads, size_t grad_stride,
                                        float lr, float clip) {
  // Scalar fallback: clamp one row into a local buffer and hand it to the
  // per-id reference path. Overriding stores fuse the clamp into their
  // scatter/accumulate loops instead.
  const uint32_t d = dim();
  const float bound = embed_internal::ClipBound(clip);
  std::vector<float> row(d);
  for (size_t i = 0; i < n; ++i) {
    const float* g = grads + i * grad_stride;
    for (uint32_t k = 0; k < d; ++k) {
      row[k] = embed_internal::ClipVal(g[k], bound);
    }
    ApplyGradient(ids[i], row.data(), lr);
  }
}

namespace embed_internal {

float InitBound(uint32_t dim) {
  return 1.0f / std::sqrt(static_cast<float>(dim));
}

}  // namespace embed_internal

}  // namespace cafe
