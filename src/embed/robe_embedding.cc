#include "embed/robe_embedding.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {

StatusOr<std::unique_ptr<RobeEmbedding>> RobeEmbedding::Create(
    const EmbeddingConfig& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  const uint64_t budget_floats = config.BudgetBytes() / sizeof(float);
  uint64_t slots = std::min<uint64_t>(
      budget_floats, config.total_features * static_cast<uint64_t>(config.dim));
  slots -= slots % config.dim;  // block-align so windows span <= 2 rows
  if (slots == 0) {
    return Status::ResourceExhausted(
        "robe embedding: budget below one block; lower the compression ratio");
  }
  return std::unique_ptr<RobeEmbedding>(new RobeEmbedding(config, slots));
}

RobeEmbedding::RobeEmbedding(const EmbeddingConfig& config, uint64_t slots)
    : config_(config),
      slots_(slots),
      num_rows_(slots / config.dim),
      hash_(config.seed ^ 0x0be0b10cULL),
      flat_(slots) {
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  for (float& w : flat_) w = rng.UniformFloat(-bound, bound);
}

void RobeEmbedding::Lookup(uint64_t id, float* out) { LookupConst(id, out); }

void RobeEmbedding::LookupConst(uint64_t id, float* out) const {
  const uint64_t base = BaseOf(id);
  const uint64_t tail = slots_ - base;
  const uint32_t d = config_.dim;
  if (tail >= d) {
    std::memcpy(out, flat_.data() + base, d * sizeof(float));
  } else {
    std::memcpy(out, flat_.data() + base, tail * sizeof(float));
    std::memcpy(out + tail, flat_.data(),
                (d - tail) * sizeof(float));
  }
}

void RobeEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  const uint64_t base = BaseOf(id);
  if (dirty_.enabled()) MarkWindow(base);
  const uint64_t tail = slots_ - base;
  const uint32_t d = config_.dim;
  float* flat = flat_.data();
  if (tail >= d) {
    float* w = flat + base;
    for (uint32_t k = 0; k < d; ++k) w[k] -= lr * grad[k];
  } else {
    for (uint64_t k = 0; k < tail; ++k) flat[base + k] -= lr * grad[k];
    for (uint64_t k = tail; k < d; ++k) flat[k - tail] -= lr * grad[k];
  }
}

void RobeEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                                size_t out_stride) {
  Obs().RecordLookup(n);
  const uint32_t d = config_.dim;
  const float* flat = flat_.data();
  const size_t pf = PrefetchDistance();
  base_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) base_scratch_[i] = BaseOf(ids[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) PrefetchRead(flat + base_scratch_[i + pf]);
    const uint64_t base = base_scratch_[i];
    const uint64_t tail = slots_ - base;
    float* dst = out + i * out_stride;
    if (tail >= d) {
      simd::CopyRow(dst, flat + base, d);
    } else {
      simd::CopyRow(dst, flat + base, static_cast<uint32_t>(tail));
      simd::CopyRow(dst + tail, flat, d - static_cast<uint32_t>(tail));
    }
  }
}

void RobeEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                     size_t out_stride) const {
  // Scratch-free (concurrent serving callers): the window PrefetchDistance()
  // ahead is hashed twice — once to prefetch, once to copy.
  const uint32_t d = config_.dim;
  const float* flat = flat_.data();
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) PrefetchRead(flat + BaseOf(ids[i + pf]));
    const uint64_t base = BaseOf(ids[i]);
    const uint64_t tail = slots_ - base;
    float* dst = out + i * out_stride;
    if (tail >= d) {
      simd::CopyRow(dst, flat + base, d);
    } else {
      simd::CopyRow(dst, flat + base, static_cast<uint32_t>(tail));
      simd::CopyRow(dst + tail, flat, d - static_cast<uint32_t>(tail));
    }
  }
}

void RobeEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                       const float* grads, size_t grad_stride,
                                       float lr, float clip) {
  // Per-occurrence updates in stream order: overlapping windows scatter
  // their updates in the same sequence as the scalar loop (bit-identical
  // results); gradient elements clamp on read straight from the strided
  // tensor.
  Obs().RecordBackward(n, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_.enabled();
  float* flat = flat_.data();
  const size_t pf = PrefetchDistance();
  base_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) base_scratch_[i] = BaseOf(ids[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) PrefetchWrite(flat + base_scratch_[i + pf]);
    const uint64_t base = base_scratch_[i];
    if (track) MarkWindow(base);
    const uint64_t tail = slots_ - base;
    const float* g = grads + i * grad_stride;
    if (tail >= d) {
      simd::AxpyClipNeg(flat + base, g, d, lr, bound);
    } else {
      simd::AxpyClipNeg(flat + base, g, static_cast<uint32_t>(tail), lr,
                        bound);
      simd::AxpyClipNeg(flat, g + tail, d - static_cast<uint32_t>(tail), lr,
                        bound);
    }
  }
}

void RobeEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                              const float* grads,
                                              size_t grad_stride, float lr,
                                              float clip, ThreadPool* pool,
                                              uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Shards partition the aligned d-float BLOCKS of the flat array; windows
  // split at block boundaries so every parameter has exactly one writing
  // shard and keeps the serial per-element update order. The hash pass
  // fills base_scratch_ first (disjoint index ranges), then every worker
  // scans the full stream applying only the pieces it owns.
  Obs().RecordBackward(n, n);
  const uint32_t d = config_.dim;
  const float bound = embed_internal::ClipBound(clip);
  const bool track = dirty_.enabled();
  if (track) dirty_.EnableShards(num_shards);
  float* flat = flat_.data();
  base_scratch_.resize(n);
  uint64_t* bases = base_scratch_.data();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    const size_t begin = n * shard / num_shards;
    const size_t end = n * (shard + 1) / num_shards;
    for (size_t i = begin; i < end; ++i) bases[i] = BaseOf(ids[i]);
  });
  const size_t pf = PrefetchDistance();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t i = 0; i < n; ++i) {
      if (i + pf < n &&
          ShardOfRow(bases[i + pf] / d, num_shards) == shard) {
        PrefetchWrite(flat + bases[i + pf]);
      }
      const float* g = grads + i * grad_stride;
      ForEachRowPiece(bases[i], [&](uint64_t row, uint64_t slot,
                                    uint32_t g_off, uint32_t len) {
        if (ShardOfRow(row, num_shards) != shard) return;
        if (track) dirty_.Mark(row, shard);
        simd::AxpyClipNeg(flat + slot, g + g_off, len, lr, bound);
      });
    }
  });
  if (track) dirty_.MergeShards();
}

Status RobeEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(slots_);
  writer->WriteU32(config_.dim);
  writer->WriteVec(flat_);
  return Status::OK();
}

Status RobeEmbedding::LoadState(io::Reader* reader) {
  uint64_t slots = 0;
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&slots));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (slots != slots_ || d != config_.dim) {
    return Status::FailedPrecondition(
        "robe embedding: checkpoint sizing does not match this store");
  }
  return reader->ReadVecExpected(&flat_, flat_.size(), "robe flat array");
}

Status RobeEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_.Enable(num_rows_);
  } else {
    dirty_.Disable();
  }
  return Status::OK();
}

Status RobeEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_.enabled()) {
    return Status::FailedPrecondition(
        "robe embedding: dirty tracking is not enabled");
  }
  writer->WriteU32(config_.dim);
  const size_t delta_start = writer->size();
  const uint64_t delta_rows = dirty_.rows().size();
  delta_internal::WriteDirtyRows(writer, dirty_, flat_.data(), config_.dim);
  dirty_.Flush();
  Obs().RecordDelta(delta_rows, writer->size() - delta_start);
  return Status::OK();
}

Status RobeEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (d != config_.dim) {
    return Status::FailedPrecondition(
        "robe embedding: delta sizing does not match this store");
  }
  return delta_internal::ReadDirtyRows(reader, flat_.data(), num_rows_,
                                       config_.dim, "robe flat array");
}

}  // namespace cafe
