#include "embed/offline_separation.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {

StatusOr<std::unique_ptr<OfflineSeparationEmbedding>>
OfflineSeparationEmbedding::Create(const EmbeddingConfig& config,
                                   uint64_t hot_rows, uint64_t shared_rows,
                                   const std::vector<uint64_t>& hot_ids) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  if (shared_rows == 0) {
    return Status::InvalidArgument(
        "offline separation needs at least one shared row");
  }
  return std::unique_ptr<OfflineSeparationEmbedding>(
      new OfflineSeparationEmbedding(config, hot_rows, shared_rows, hot_ids));
}

OfflineSeparationEmbedding::OfflineSeparationEmbedding(
    const EmbeddingConfig& config, uint64_t hot_rows, uint64_t shared_rows,
    const std::vector<uint64_t>& hot_ids)
    : config_(config),
      hot_rows_(hot_rows),
      shared_rows_(shared_rows),
      hash_(config.seed ^ 0x0f1dULL) {
  hot_pool_.Reset(hot_rows, config.dim);
  shared_pool_.Reset(shared_rows, config.dim);
  hot_index_.reserve(hot_rows * 2);
  for (uint64_t i = 0; i < hot_rows && i < hot_ids.size(); ++i) {
    hot_index_.emplace(hot_ids[i], static_cast<uint32_t>(i));
  }
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  auto fill = [&](RowPool& pool) {
    for (uint64_t r = 0; r < pool.num_rows(); ++r) {
      float* row = pool.Row(r);
      for (uint32_t k = 0; k < config.dim; ++k) {
        row[k] = rng.UniformFloat(-bound, bound);
      }
    }
  };
  fill(hot_pool_);
  fill(shared_pool_);
}

float* OfflineSeparationEmbedding::RowOf(uint64_t id) {
  auto it = hot_index_.find(id);
  return it != hot_index_.end()
             ? hot_pool_.Row(it->second)
             : shared_pool_.Row(hash_.Bounded(id, shared_rows_));
}

const float* OfflineSeparationEmbedding::RowOf(uint64_t id) const {
  auto it = hot_index_.find(id);
  return it != hot_index_.end()
             ? hot_pool_.Row(it->second)
             : shared_pool_.Row(hash_.Bounded(id, shared_rows_));
}

void OfflineSeparationEmbedding::Lookup(uint64_t id, float* out) {
  LookupConst(id, out);
}

void OfflineSeparationEmbedding::LookupConst(uint64_t id, float* out) const {
  std::memcpy(out, RowOf(id), config_.dim * sizeof(float));
}

void OfflineSeparationEmbedding::ApplyGradient(uint64_t id, const float* grad,
                                               float lr) {
  const uint64_t index = RowIndexOf(id);
  if (dirty_hot_.enabled()) MarkRow(index);
  float* row = RowAt(index);
  for (uint32_t i = 0; i < config_.dim; ++i) row[i] -= lr * grad[i];
}

void OfflineSeparationEmbedding::LookupBatch(const uint64_t* ids, size_t n,
                                             float* out, size_t out_stride) {
  // One hot-index probe per unique id when the batch dedups (skewed
  // per-field streams); mostly-unique batches abandon the scratch table and
  // run a direct resolve + prefetched copy instead. Either way the output
  // is byte-identical to n scalar Lookup calls.
  Obs().RecordLookup(n);
  const uint32_t d = config_.dim;
  if (!dedup_.BuildAdaptive(ids, n)) {
    row_scratch_.resize(n);
    const size_t pf = PrefetchDistance();
    for (size_t i = 0; i < n; ++i) row_scratch_[i] = RowOf(ids[i]);
    for (size_t i = 0; i < n; ++i) {
      if (i + pf < n) {
        PrefetchRead(row_scratch_[i + pf]);
      }
      simd::CopyRow(out + i * out_stride, row_scratch_[i], d);
    }
    return;
  }
  const size_t num_unique = dedup_.num_unique();
  const size_t pf = PrefetchDistance();
  row_scratch_.resize(num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    row_scratch_[u] = RowOf(dedup_.unique_id(u));
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      PrefetchRead(row_scratch_[dedup_.unique_of(i + pf)]);
    }
    simd::CopyRow(out + i * out_stride, row_scratch_[dedup_.unique_of(i)], d);
  }
}

void OfflineSeparationEmbedding::ApplyGradientBatch(const uint64_t* ids,
                                                    size_t n,
                                                    const float* grads,
                                                    size_t grad_stride,
                                                    float lr, float clip) {
  // Resolve each unique id once and apply its clip-on-read accumulated
  // gradient in one SGD step. The hot/shared split is static, so this is
  // the plain batch formulation of the scalar loop. Rows resolve up front
  // so the scatter can prefetch ahead of the SGD writes, mirroring the
  // gather side.
  const uint32_t d = config_.dim;
  const bool track = dirty_hot_.enabled();
  dedup_.Build(ids, n);
  dedup_.AccumulateRows(grads, n, d, grad_stride, clip, &grad_accum_);
  const size_t num_unique = dedup_.num_unique();
  Obs().RecordBackward(n, num_unique);
  index_scratch_.resize(num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    index_scratch_[u] = RowIndexOf(dedup_.unique_id(u));
  }
  const size_t pf = PrefetchDistance();
  for (size_t u = 0; u < num_unique; ++u) {
    if (u + pf < num_unique) {
      PrefetchWrite(RowAt(index_scratch_[u + pf]));
    }
    const uint64_t index = index_scratch_[u];
    if (track) MarkRow(index);
    simd::AxpyNeg(RowAt(index), grad_accum_.data() + u * d, d, lr);
  }
}

void OfflineSeparationEmbedding::ApplyGradientBatchSharded(
    const uint64_t* ids, size_t n, const float* grads, size_t grad_stride,
    float lr, float clip, ThreadPool* pool, uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // The hot/shared assignment is frozen, so everything parallelizes: phase
  // A accumulates gradients (workers partitioned by unique index) and
  // resolves each unique's combined-space row (read-only probes, chunked);
  // phase B scatters with workers partitioned by resolved row — each row
  // is updated by its one owner with the same accumulated gradient as the
  // serial path.
  const uint32_t d = config_.dim;
  const bool track = dirty_hot_.enabled();
  if (track) {
    dirty_hot_.EnableShards(num_shards);
    dirty_shared_.EnableShards(num_shards);
  }
  dedup_.Build(ids, n);
  const size_t num_unique = dedup_.num_unique();
  Obs().RecordBackward(n, num_unique);
  grad_accum_.resize(num_unique * d);
  index_scratch_.resize(num_unique);
  uint64_t* indices = index_scratch_.data();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    const size_t begin = num_unique * shard / num_shards;
    const size_t end = num_unique * (shard + 1) / num_shards;
    for (size_t u = begin; u < end; ++u) {
      indices[u] = RowIndexOf(dedup_.unique_id(u));
    }
    dedup_.AccumulateRowsSharded(
        grads, n, d, grad_stride, clip, grad_accum_.data(),
        [num_shards, shard](uint32_t u) {
          return ShardOfRow(u, num_shards) == shard;
        });
  });
  const size_t pf = PrefetchDistance();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t u = 0; u < num_unique; ++u) {
      if (u + pf < num_unique &&
          ShardOfRow(indices[u + pf], num_shards) == shard) {
        PrefetchWrite(RowAt(indices[u + pf]));
      }
      if (ShardOfRow(indices[u], num_shards) != shard) continue;
      if (track) MarkRow(indices[u], shard);
      simd::AxpyNeg(RowAt(indices[u]), grad_accum_.data() + u * d, d, lr);
    }
  });
  if (track) {
    dirty_hot_.MergeShards();
    dirty_shared_.MergeShards();
  }
}

Status OfflineSeparationEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_hot_.Enable(hot_rows_);
    dirty_shared_.Enable(shared_rows_);
  } else {
    dirty_hot_.Disable();
    dirty_shared_.Disable();
  }
  return Status::OK();
}

Status OfflineSeparationEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_hot_.enabled()) {
    return Status::FailedPrecondition(
        "offline separation: dirty tracking is not enabled");
  }
  writer->WriteU32(config_.dim);
  const size_t delta_start = writer->size();
  const uint64_t delta_rows =
      dirty_hot_.rows().size() + dirty_shared_.rows().size();
  delta_internal::WriteDirtyRowsAt(
      writer, dirty_hot_, [this](uint64_t row) { return hot_pool_.Row(row); },
      config_.dim);
  delta_internal::WriteDirtyRowsAt(
      writer, dirty_shared_,
      [this](uint64_t row) { return shared_pool_.Row(row); }, config_.dim);
  dirty_hot_.Flush();
  dirty_shared_.Flush();
  Obs().RecordDelta(delta_rows, writer->size() - delta_start);
  return Status::OK();
}

Status OfflineSeparationEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (d != config_.dim) {
    return Status::FailedPrecondition(
        "offline separation: delta sizing does not match this store");
  }
  CAFE_RETURN_IF_ERROR(delta_internal::ReadDirtyRowsAt(
      reader, [this](uint64_t row) { return hot_pool_.Row(row); }, hot_rows_,
      config_.dim, "offline hot table"));
  return delta_internal::ReadDirtyRowsAt(
      reader, [this](uint64_t row) { return shared_pool_.Row(row); },
      shared_rows_, config_.dim, "offline shared table");
}

Status OfflineSeparationEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(hot_rows_);
  writer->WriteU64(shared_rows_);
  writer->WriteU32(config_.dim);
  // The hot index is part of the frozen oracle assignment; serialize it
  // sorted by feature id so the file bytes are deterministic regardless of
  // hash-map iteration order.
  std::vector<std::pair<uint64_t, uint32_t>> index(hot_index_.begin(),
                                                   hot_index_.end());
  std::sort(index.begin(), index.end());
  writer->WriteU64(index.size());
  for (const auto& [id, row] : index) {
    writer->WriteU64(id);
    writer->WriteU32(row);
  }
  hot_pool_.Save(writer);
  shared_pool_.Save(writer);
  return Status::OK();
}

Status OfflineSeparationEmbedding::LoadState(io::Reader* reader) {
  uint64_t hot_rows = 0, shared_rows = 0;
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&hot_rows));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&shared_rows));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (hot_rows != hot_rows_ || shared_rows != shared_rows_ ||
      d != config_.dim) {
    return Status::FailedPrecondition(
        "offline separation: checkpoint sizing does not match this store");
  }
  uint64_t index_size = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&index_size));
  if (index_size > hot_rows_) {
    return Status::FailedPrecondition(
        "offline separation: corrupt hot index size");
  }
  std::unordered_map<uint64_t, uint32_t> index;
  index.reserve(index_size * 2);
  for (uint64_t i = 0; i < index_size; ++i) {
    uint64_t id = 0;
    uint32_t row = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&id));
    CAFE_RETURN_IF_ERROR(reader->ReadU32(&row));
    if (row >= hot_rows_) {
      return Status::FailedPrecondition(
          "offline separation: hot index row out of range");
    }
    index.emplace(id, row);
  }
  hot_index_ = std::move(index);
  CAFE_RETURN_IF_ERROR(hot_pool_.Load(reader, "offline hot table"));
  return shared_pool_.Load(reader, "offline shared table");
}

size_t OfflineSeparationEmbedding::MemoryBytes() const {
  // Embedding tables + the offline frequency statistics (4B per feature).
  return hot_pool_.MemoryBytes() + shared_pool_.MemoryBytes() +
         config_.total_features * sizeof(float);
}

}  // namespace cafe
