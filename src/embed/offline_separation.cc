#include "embed/offline_separation.h"

#include <cstring>

#include "common/logging.h"

namespace cafe {

StatusOr<std::unique_ptr<OfflineSeparationEmbedding>>
OfflineSeparationEmbedding::Create(const EmbeddingConfig& config,
                                   uint64_t hot_rows, uint64_t shared_rows,
                                   const std::vector<uint64_t>& hot_ids) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  if (shared_rows == 0) {
    return Status::InvalidArgument(
        "offline separation needs at least one shared row");
  }
  return std::unique_ptr<OfflineSeparationEmbedding>(
      new OfflineSeparationEmbedding(config, hot_rows, shared_rows, hot_ids));
}

OfflineSeparationEmbedding::OfflineSeparationEmbedding(
    const EmbeddingConfig& config, uint64_t hot_rows, uint64_t shared_rows,
    const std::vector<uint64_t>& hot_ids)
    : config_(config),
      hot_rows_(hot_rows),
      shared_rows_(shared_rows),
      hash_(config.seed ^ 0x0f1dULL),
      hot_table_(hot_rows * config.dim),
      shared_table_(shared_rows * config.dim) {
  hot_index_.reserve(hot_rows * 2);
  for (uint64_t i = 0; i < hot_rows && i < hot_ids.size(); ++i) {
    hot_index_.emplace(hot_ids[i], static_cast<uint32_t>(i));
  }
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  for (float& w : hot_table_) w = rng.UniformFloat(-bound, bound);
  for (float& w : shared_table_) w = rng.UniformFloat(-bound, bound);
}

void OfflineSeparationEmbedding::Lookup(uint64_t id, float* out) {
  auto it = hot_index_.find(id);
  const float* row =
      it != hot_index_.end()
          ? hot_table_.data() + static_cast<size_t>(it->second) * config_.dim
          : shared_table_.data() +
                hash_.Bounded(id, shared_rows_) * config_.dim;
  std::memcpy(out, row, config_.dim * sizeof(float));
}

void OfflineSeparationEmbedding::ApplyGradient(uint64_t id, const float* grad,
                                               float lr) {
  auto it = hot_index_.find(id);
  float* row =
      it != hot_index_.end()
          ? hot_table_.data() + static_cast<size_t>(it->second) * config_.dim
          : shared_table_.data() +
                hash_.Bounded(id, shared_rows_) * config_.dim;
  for (uint32_t i = 0; i < config_.dim; ++i) row[i] -= lr * grad[i];
}

size_t OfflineSeparationEmbedding::MemoryBytes() const {
  // Embedding tables + the offline frequency statistics (4B per feature).
  return (hot_table_.size() + shared_table_.size()) * sizeof(float) +
         config_.total_features * sizeof(float);
}

}  // namespace cafe
