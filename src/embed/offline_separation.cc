#include "embed/offline_separation.h"

#include <cstring>

#include "common/logging.h"
#include "common/prefetch.h"

namespace cafe {

StatusOr<std::unique_ptr<OfflineSeparationEmbedding>>
OfflineSeparationEmbedding::Create(const EmbeddingConfig& config,
                                   uint64_t hot_rows, uint64_t shared_rows,
                                   const std::vector<uint64_t>& hot_ids) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  if (shared_rows == 0) {
    return Status::InvalidArgument(
        "offline separation needs at least one shared row");
  }
  return std::unique_ptr<OfflineSeparationEmbedding>(
      new OfflineSeparationEmbedding(config, hot_rows, shared_rows, hot_ids));
}

OfflineSeparationEmbedding::OfflineSeparationEmbedding(
    const EmbeddingConfig& config, uint64_t hot_rows, uint64_t shared_rows,
    const std::vector<uint64_t>& hot_ids)
    : config_(config),
      hot_rows_(hot_rows),
      shared_rows_(shared_rows),
      hash_(config.seed ^ 0x0f1dULL),
      hot_table_(hot_rows * config.dim),
      shared_table_(shared_rows * config.dim) {
  hot_index_.reserve(hot_rows * 2);
  for (uint64_t i = 0; i < hot_rows && i < hot_ids.size(); ++i) {
    hot_index_.emplace(hot_ids[i], static_cast<uint32_t>(i));
  }
  Rng rng(config.seed);
  const float bound = embed_internal::InitBound(config.dim);
  for (float& w : hot_table_) w = rng.UniformFloat(-bound, bound);
  for (float& w : shared_table_) w = rng.UniformFloat(-bound, bound);
}

float* OfflineSeparationEmbedding::RowOf(uint64_t id) {
  auto it = hot_index_.find(id);
  return it != hot_index_.end()
             ? hot_table_.data() + static_cast<size_t>(it->second) * config_.dim
             : shared_table_.data() +
                   hash_.Bounded(id, shared_rows_) * config_.dim;
}

void OfflineSeparationEmbedding::Lookup(uint64_t id, float* out) {
  std::memcpy(out, RowOf(id), config_.dim * sizeof(float));
}

void OfflineSeparationEmbedding::ApplyGradient(uint64_t id, const float* grad,
                                               float lr) {
  float* row = RowOf(id);
  for (uint32_t i = 0; i < config_.dim; ++i) row[i] -= lr * grad[i];
}

void OfflineSeparationEmbedding::LookupBatch(const uint64_t* ids, size_t n,
                                             float* out) {
  // One hot-index probe per unique id when the batch dedups (skewed
  // per-field streams); mostly-unique batches abandon the scratch table and
  // run a direct resolve + prefetched copy instead. Either way the output
  // is byte-identical to n scalar Lookup calls.
  const uint32_t d = config_.dim;
  if (!dedup_.BuildAdaptive(ids, n)) {
    row_scratch_.resize(n);
    for (size_t i = 0; i < n; ++i) row_scratch_[i] = RowOf(ids[i]);
    for (size_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n) {
        PrefetchRead(row_scratch_[i + kPrefetchDistance]);
      }
      embed_internal::CopyRow(out + i * d, row_scratch_[i], d);
    }
    return;
  }
  const size_t num_unique = dedup_.num_unique();
  row_scratch_.resize(num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    row_scratch_[u] = RowOf(dedup_.unique_id(u));
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      PrefetchRead(row_scratch_[dedup_.unique_of(i + kPrefetchDistance)]);
    }
    embed_internal::CopyRow(out + i * d, row_scratch_[dedup_.unique_of(i)], d);
  }
}

void OfflineSeparationEmbedding::ApplyGradientBatch(const uint64_t* ids,
                                                    size_t n,
                                                    const float* grads,
                                                    float lr) {
  // Resolve each unique id once and apply its accumulated gradient in one
  // SGD step. The hot/shared split is static, so this is the plain batch
  // formulation of the scalar loop.
  const uint32_t d = config_.dim;
  dedup_.Build(ids, n);
  dedup_.AccumulateRows(grads, n, d, &grad_accum_);
  const size_t num_unique = dedup_.num_unique();
  for (size_t u = 0; u < num_unique; ++u) {
    float* row = RowOf(dedup_.unique_id(u));
    const float* g = grad_accum_.data() + u * d;
    for (uint32_t k = 0; k < d; ++k) row[k] -= lr * g[k];
  }
}

size_t OfflineSeparationEmbedding::MemoryBytes() const {
  // Embedding tables + the offline frequency statistics (4B per feature).
  return (hot_table_.size() + shared_table_.size()) * sizeof(float) +
         config_.total_features * sizeof(float);
}

}  // namespace cafe
