#ifndef CAFE_EMBED_EMBEDDING_STORE_H_
#define CAFE_EMBED_EMBEDDING_STORE_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/serialize.h"

namespace cafe {

/// Describes the categorical fields of a dataset: per-field cardinalities
/// and the global-id offsets that concatenate them into one id space
/// [0, total_features). CAFE keeps a single table across fields (§5.3
/// "design details"), so most stores only need total_features; field-aware
/// stores (MDE, per-field ablations) use the full layout.
class FieldLayout {
 public:
  FieldLayout() = default;
  explicit FieldLayout(std::vector<uint64_t> cardinalities);

  size_t num_fields() const { return cardinalities_.size(); }
  uint64_t total_features() const { return total_; }
  uint64_t cardinality(size_t field) const { return cardinalities_[field]; }
  uint64_t offset(size_t field) const { return offsets_[field]; }

  /// Global id of `local_id` within `field`.
  uint64_t GlobalId(size_t field, uint64_t local_id) const {
    return offsets_[field] + local_id;
  }

  /// Field that owns `global_id` (binary search over offsets).
  size_t FieldOf(uint64_t global_id) const;

  const std::vector<uint64_t>& cardinalities() const { return cardinalities_; }

 private:
  std::vector<uint64_t> cardinalities_;
  std::vector<uint64_t> offsets_;  // prefix sums, size num_fields
  uint64_t total_ = 0;
};

/// Shared configuration for all embedding compressors.
struct EmbeddingConfig {
  uint64_t total_features = 0;  ///< n: unique categorical features
  uint32_t dim = 16;            ///< d: embedding dimension
  /// Target compression ratio CR = uncompressed bytes / budget bytes.
  /// 1.0 means uncompressed.
  double compression_ratio = 1.0;
  uint64_t seed = 42;

  /// Uncompressed embedding-table size in bytes (n * d * 4).
  uint64_t UncompressedBytes() const {
    return total_features * static_cast<uint64_t>(dim) * sizeof(float);
  }
  /// Memory budget M in bytes implied by the compression ratio.
  uint64_t BudgetBytes() const {
    return static_cast<uint64_t>(
        static_cast<double>(UncompressedBytes()) / compression_ratio);
  }

  Status Validate() const;
};

/// Abstract interface every embedding compressor implements. Models and the
/// trainer are agnostic to the compression scheme behind it.
///
/// The training loop drives it at BATCH granularity:
///   LookupBatch(ids, n, out)              -- forward, per (field, batch)
///   ApplyGradientBatch(ids, n, grads, lr) -- backward + sparse SGD update
///   Tick()                                -- once per iteration (batch)
///
/// The per-id Lookup/ApplyGradient entry points remain for tools, tests and
/// as the reference semantics, but consumers should prefer the batch API: it
/// removes one virtual dispatch per (sample, field), lets dense stores
/// software-prefetch rows, and lets adaptive stores (AdaEmbed, CAFE, MDE,
/// offline separation) deduplicate the batch so sketch updates, frequency
/// counts, and hot/cold classification run once per unique id.
///
/// Contract:
///  - LookupBatch writes ids[i]'s embedding at out + i*out_stride (the
///    packed convenience overload passes out_stride == dim) and is byte-
///    identical to n scalar Lookup calls (lookups are read-only, so probe
///    deduplication cannot change results). The stride lets consumers gather
///    field columns straight into sample-major model inputs with no staging
///    copy; out_stride >= dim always.
///  - ApplyGradientBatch consumes grads + i*dim for ids[i]. Stores without
///    importance state (full, hash, qr) apply per-occurrence updates in
///    stream order — bit-identical to the scalar loop. Adaptive stores
///    deduplicate: each unique id is updated ONCE with its occurrence-order
///    accumulated gradient, and importance statistics advance once per
///    unique id (frequency metrics by the occurrence count) — the paper's
///    per-batch sketch insertion. When every id in the batch is distinct the
///    two formulations coincide bit-for-bit.
///
/// Implementations may use Lookup-time state (e.g. AdaEmbed frequency) and
/// Tick-time maintenance (CAFE score decay, AdaEmbed reallocation).
class EmbeddingStore {
 public:
  virtual ~EmbeddingStore() = default;

  EmbeddingStore() = default;
  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;

  /// Embedding dimension d; Lookup writes exactly this many floats.
  virtual uint32_t dim() const = 0;

  /// Writes feature `id`'s embedding into out[0..dim).
  virtual void Lookup(uint64_t id, float* out) = 0;

  /// Applies the loss gradient w.r.t. feature `id`'s embedding (dim floats)
  /// with a plain SGD step of rate `lr`, and updates any importance
  /// statistics the scheme keeps.
  virtual void ApplyGradient(uint64_t id, const float* grad, float lr) = 0;

  /// Batched forward: writes ids[i]'s embedding into out + i*out_stride for
  /// i in [0, n), out_stride >= dim in floats. Default is the scalar-
  /// fallback loop; stores override with gather loops (prefetch) and probe
  /// deduplication. Derived classes override the strided virtual and pull
  /// the packed overload back in with `using EmbeddingStore::LookupBatch`.
  virtual void LookupBatch(const uint64_t* ids, size_t n, float* out,
                           size_t out_stride);

  /// Packed convenience overload: rows at out + i*dim.
  void LookupBatch(const uint64_t* ids, size_t n, float* out) {
    LookupBatch(ids, n, out, dim());
  }

  /// Read-only scalar lookup with NO side effects — no statistics, no
  /// owner-managed scratch — byte-identical to Lookup. This is the serving
  /// path: any number of threads may call it concurrently on a store that
  /// is not being trained (see serve/frozen_store.h).
  virtual void LookupConst(uint64_t id, float* out) const = 0;

  /// Batched, strided variant of LookupConst with the same concurrency
  /// guarantee. Default is the scalar loop; stores with gather loops
  /// override to keep prefetching (scratch-free, so still thread-safe).
  virtual void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                size_t out_stride) const;

  /// Batched backward + sparse SGD: grads + i*dim is the gradient for
  /// ids[i]. Default is the scalar-fallback loop; see the class comment for
  /// the dedup semantics adaptive stores implement.
  virtual void ApplyGradientBatch(const uint64_t* ids, size_t n,
                                  const float* grads, float lr);

  /// Called once per training iteration; default no-op. Periodic work
  /// (score decay, reallocation) hangs off this.
  virtual void Tick() {}

  /// Total bytes of embedding parameters PLUS auxiliary structures
  /// (sketches, score arrays, index maps) — the paper's memory-fairness
  /// rule (§5.1.4 "we also consider the memory of additional structures").
  virtual size_t MemoryBytes() const = 0;

  /// Short scheme name for tables ("hash", "qr", "ada", "cafe", ...).
  virtual std::string Name() const = 0;

  /// Serializes the complete mutable state — embedding tables, sketches,
  /// score/frequency arrays, migration counters, RNG state — such that
  /// LoadState on a freshly constructed store with the SAME configuration
  /// reproduces this store bit-for-bit: identical lookups, MemoryBytes,
  /// counters, and identical behavior under continued training. Sizing
  /// derived from the config (row counts, sketch geometry) is written as a
  /// guard and re-checked by LoadState, not trusted from the file.
  virtual Status SaveState(io::Writer* writer) const {
    (void)writer;
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support checkpointing");
  }

  /// Restores state written by SaveState. On any mismatch (shape guard,
  /// truncation) the Status is non-OK and the store must be considered
  /// unusable (partially restored) — construct a fresh one to retry.
  virtual Status LoadState(io::Reader* reader) {
    (void)reader;
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support checkpointing");
  }

  /// Achieved compression ratio (uncompressed bytes / MemoryBytes).
  double AchievedCompressionRatio(const EmbeddingConfig& config) const {
    return static_cast<double>(config.UncompressedBytes()) /
           static_cast<double>(MemoryBytes());
  }
};

namespace embed_internal {

/// Uniform(-1/sqrt(dim), +1/sqrt(dim)) row init, shared by all stores so
/// that comparisons start from identically distributed parameters.
float InitBound(uint32_t dim);

/// L2 norm of a gradient row, accumulated in double in index order. Shared
/// by every importance-tracking store so scalar and batched paths (and the
/// stores between themselves) compute bit-identical scores.
inline double GradNorm(const float* grad, uint32_t dim) {
  double norm_sq = 0.0;
  for (uint32_t i = 0; i < dim; ++i) {
    norm_sq += static_cast<double>(grad[i]) * grad[i];
  }
  return std::sqrt(norm_sq);
}

/// Copies one embedding row. The batched gather loops run this per id, so
/// the common dims get compile-time-sized copies (inlined vector moves)
/// instead of a variable-size memcpy dispatch per row.
inline void CopyRow(float* dst, const float* src, uint32_t dim) {
  switch (dim) {
    case 16:
      std::memcpy(dst, src, 16 * sizeof(float));
      break;
    case 32:
      std::memcpy(dst, src, 32 * sizeof(float));
      break;
    case 8:
      std::memcpy(dst, src, 8 * sizeof(float));
      break;
    default:
      std::memcpy(dst, src, dim * sizeof(float));
      break;
  }
}

}  // namespace embed_internal

}  // namespace cafe

#endif  // CAFE_EMBED_EMBEDDING_STORE_H_
