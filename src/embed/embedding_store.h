#ifndef CAFE_EMBED_EMBEDDING_STORE_H_
#define CAFE_EMBED_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cafe {

/// Describes the categorical fields of a dataset: per-field cardinalities
/// and the global-id offsets that concatenate them into one id space
/// [0, total_features). CAFE keeps a single table across fields (§5.3
/// "design details"), so most stores only need total_features; field-aware
/// stores (MDE, per-field ablations) use the full layout.
class FieldLayout {
 public:
  FieldLayout() = default;
  explicit FieldLayout(std::vector<uint64_t> cardinalities);

  size_t num_fields() const { return cardinalities_.size(); }
  uint64_t total_features() const { return total_; }
  uint64_t cardinality(size_t field) const { return cardinalities_[field]; }
  uint64_t offset(size_t field) const { return offsets_[field]; }

  /// Global id of `local_id` within `field`.
  uint64_t GlobalId(size_t field, uint64_t local_id) const {
    return offsets_[field] + local_id;
  }

  /// Field that owns `global_id` (binary search over offsets).
  size_t FieldOf(uint64_t global_id) const;

  const std::vector<uint64_t>& cardinalities() const { return cardinalities_; }

 private:
  std::vector<uint64_t> cardinalities_;
  std::vector<uint64_t> offsets_;  // prefix sums, size num_fields
  uint64_t total_ = 0;
};

/// Shared configuration for all embedding compressors.
struct EmbeddingConfig {
  uint64_t total_features = 0;  ///< n: unique categorical features
  uint32_t dim = 16;            ///< d: embedding dimension
  /// Target compression ratio CR = uncompressed bytes / budget bytes.
  /// 1.0 means uncompressed.
  double compression_ratio = 1.0;
  uint64_t seed = 42;

  /// Uncompressed embedding-table size in bytes (n * d * 4).
  uint64_t UncompressedBytes() const {
    return total_features * static_cast<uint64_t>(dim) * sizeof(float);
  }
  /// Memory budget M in bytes implied by the compression ratio.
  uint64_t BudgetBytes() const {
    return static_cast<uint64_t>(
        static_cast<double>(UncompressedBytes()) / compression_ratio);
  }

  Status Validate() const;
};

/// Abstract interface every embedding compressor implements. Models and the
/// trainer are agnostic to the compression scheme behind it.
///
/// The trainer drives it as:
///   Lookup(id, out)                  -- forward, per (sample, field)
///   ApplyGradient(id, grad, lr)      -- backward + sparse SGD update
///   Tick()                           -- once per iteration (batch)
///
/// Implementations may use Lookup-time state (e.g. AdaEmbed frequency) and
/// Tick-time maintenance (CAFE score decay, AdaEmbed reallocation).
class EmbeddingStore {
 public:
  virtual ~EmbeddingStore() = default;

  EmbeddingStore() = default;
  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;

  /// Embedding dimension d; Lookup writes exactly this many floats.
  virtual uint32_t dim() const = 0;

  /// Writes feature `id`'s embedding into out[0..dim).
  virtual void Lookup(uint64_t id, float* out) = 0;

  /// Applies the loss gradient w.r.t. feature `id`'s embedding (dim floats)
  /// with a plain SGD step of rate `lr`, and updates any importance
  /// statistics the scheme keeps.
  virtual void ApplyGradient(uint64_t id, const float* grad, float lr) = 0;

  /// Called once per training iteration; default no-op. Periodic work
  /// (score decay, reallocation) hangs off this.
  virtual void Tick() {}

  /// Total bytes of embedding parameters PLUS auxiliary structures
  /// (sketches, score arrays, index maps) — the paper's memory-fairness
  /// rule (§5.1.4 "we also consider the memory of additional structures").
  virtual size_t MemoryBytes() const = 0;

  /// Short scheme name for tables ("hash", "qr", "ada", "cafe", ...).
  virtual std::string Name() const = 0;

  /// Achieved compression ratio (uncompressed bytes / MemoryBytes).
  double AchievedCompressionRatio(const EmbeddingConfig& config) const {
    return static_cast<double>(config.UncompressedBytes()) /
           static_cast<double>(MemoryBytes());
  }
};

namespace embed_internal {

/// Uniform(-1/sqrt(dim), +1/sqrt(dim)) row init, shared by all stores so
/// that comparisons start from identically distributed parameters.
float InitBound(uint32_t dim);

}  // namespace embed_internal

}  // namespace cafe

#endif  // CAFE_EMBED_EMBEDDING_STORE_H_
