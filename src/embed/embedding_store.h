#ifndef CAFE_EMBED_EMBEDDING_STORE_H_
#define CAFE_EMBED_EMBEDDING_STORE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "embed/store_obs.h"
#include "io/serialize.h"

namespace cafe {

class ThreadPool;

/// Describes the categorical fields of a dataset: per-field cardinalities
/// and the global-id offsets that concatenate them into one id space
/// [0, total_features). CAFE keeps a single table across fields (§5.3
/// "design details"), so most stores only need total_features; field-aware
/// stores (MDE, per-field ablations) use the full layout.
class FieldLayout {
 public:
  FieldLayout() = default;
  explicit FieldLayout(std::vector<uint64_t> cardinalities);

  size_t num_fields() const { return cardinalities_.size(); }
  uint64_t total_features() const { return total_; }
  uint64_t cardinality(size_t field) const { return cardinalities_[field]; }
  uint64_t offset(size_t field) const { return offsets_[field]; }

  /// Global id of `local_id` within `field`.
  uint64_t GlobalId(size_t field, uint64_t local_id) const {
    return offsets_[field] + local_id;
  }

  /// Field that owns `global_id` (binary search over offsets).
  size_t FieldOf(uint64_t global_id) const;

  const std::vector<uint64_t>& cardinalities() const { return cardinalities_; }

 private:
  std::vector<uint64_t> cardinalities_;
  std::vector<uint64_t> offsets_;  // prefix sums, size num_fields
  uint64_t total_ = 0;
};

/// Shared configuration for all embedding compressors.
struct EmbeddingConfig {
  uint64_t total_features = 0;  ///< n: unique categorical features
  uint32_t dim = 16;            ///< d: embedding dimension
  /// Target compression ratio CR = uncompressed bytes / budget bytes.
  /// 1.0 means uncompressed.
  double compression_ratio = 1.0;
  uint64_t seed = 42;

  /// Uncompressed embedding-table size in bytes (n * d * 4).
  uint64_t UncompressedBytes() const {
    return total_features * static_cast<uint64_t>(dim) * sizeof(float);
  }
  /// Memory budget M in bytes implied by the compression ratio.
  uint64_t BudgetBytes() const {
    return static_cast<uint64_t>(
        static_cast<double>(UncompressedBytes()) / compression_ratio);
  }

  Status Validate() const;
};

/// Abstract interface every embedding compressor implements. Models and the
/// trainer are agnostic to the compression scheme behind it.
///
/// The training loop drives it at BATCH granularity:
///   LookupBatch(ids, n, out)                             -- forward
///   ApplyGradientBatch(ids, n, grads, stride, lr, clip)  -- backward + SGD
///   Tick()                                 -- once per iteration (batch)
///
/// The per-id Lookup/ApplyGradient entry points remain for tools, tests and
/// as the reference semantics, but consumers should prefer the batch API: it
/// removes one virtual dispatch per (sample, field), lets dense stores
/// software-prefetch rows, and lets adaptive stores (AdaEmbed, CAFE, MDE,
/// offline separation) deduplicate the batch so sketch updates, frequency
/// counts, and hot/cold classification run once per unique id.
///
/// Contract:
///  - LookupBatch writes ids[i]'s embedding at out + i*out_stride (the
///    packed convenience overload passes out_stride == dim) and is byte-
///    identical to n scalar Lookup calls (lookups are read-only, so probe
///    deduplication cannot change results). The stride lets consumers gather
///    field columns straight into sample-major model inputs with no staging
///    copy; out_stride >= dim always.
///  - ApplyGradientBatch consumes grads + i*grad_stride for ids[i]
///    (grad_stride >= dim; the packed overload passes dim), clamping each
///    gradient element to [-clip, clip] as it is read when clip > 0 — the
///    fused form of the consumer-side "copy the field's column block into a
///    clipped staging buffer" pass, so the model's sample-major gradient
///    tensor feeds the scatter loop directly with no staging copy. Stores
///    without importance state (full, hash, qr) apply per-occurrence
///    updates in stream order — bit-identical to the scalar loop over
///    pre-clipped gradients. Adaptive stores deduplicate: each unique id is
///    updated ONCE with its occurrence-order accumulated (clipped) gradient,
///    and importance statistics advance once per unique id (frequency
///    metrics by the occurrence count, gradient-norm metrics by the summed
///    per-occurrence clipped norms) — the paper's per-batch sketch
///    insertion. When every id in the batch is distinct the two
///    formulations coincide bit-for-bit.
///
/// Implementations may use Lookup-time state (e.g. AdaEmbed frequency) and
/// Tick-time maintenance (CAFE score decay, AdaEmbed reallocation).
class EmbeddingStore {
 public:
  virtual ~EmbeddingStore() = default;

  EmbeddingStore() = default;
  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;

  /// Embedding dimension d; Lookup writes exactly this many floats.
  virtual uint32_t dim() const = 0;

  /// Writes feature `id`'s embedding into out[0..dim).
  virtual void Lookup(uint64_t id, float* out) = 0;

  /// Applies the loss gradient w.r.t. feature `id`'s embedding (dim floats)
  /// with a plain SGD step of rate `lr`, and updates any importance
  /// statistics the scheme keeps.
  virtual void ApplyGradient(uint64_t id, const float* grad, float lr) = 0;

  /// Batched forward: writes ids[i]'s embedding into out + i*out_stride for
  /// i in [0, n), out_stride >= dim in floats. Default is the scalar-
  /// fallback loop; stores override with gather loops (prefetch) and probe
  /// deduplication. Derived classes override the strided virtual and pull
  /// the packed overload back in with `using EmbeddingStore::LookupBatch`.
  virtual void LookupBatch(const uint64_t* ids, size_t n, float* out,
                           size_t out_stride);

  /// Packed convenience overload: rows at out + i*dim.
  void LookupBatch(const uint64_t* ids, size_t n, float* out) {
    LookupBatch(ids, n, out, dim());
  }

  /// Read-only scalar lookup with NO side effects — no statistics, no
  /// owner-managed scratch — byte-identical to Lookup. This is the serving
  /// path: any number of threads may call it concurrently on a store that
  /// is not being trained (see serve/frozen_store.h).
  virtual void LookupConst(uint64_t id, float* out) const = 0;

  /// Batched, strided variant of LookupConst with the same concurrency
  /// guarantee. Default is the scalar loop; stores with gather loops
  /// override to keep prefetching (scratch-free, so still thread-safe).
  virtual void LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                size_t out_stride) const;

  /// Batched backward + sparse SGD: grads + i*grad_stride holds ids[i]'s
  /// gradient (dim floats; grad_stride >= dim), each element clamped to
  /// [-clip, clip] on read when clip > 0 (clip <= 0 disables clipping).
  /// The stride + fused clip let EmbeddingLayerGroup::Backward scatter a
  /// field's column block straight out of the model's sample-major gradient
  /// tensor — no per-field staging buffer. Default is the scalar-fallback
  /// loop; see the class comment for the dedup semantics adaptive stores
  /// implement. Derived classes override this strided virtual and pull the
  /// packed overload back in with `using EmbeddingStore::ApplyGradientBatch`.
  virtual void ApplyGradientBatch(const uint64_t* ids, size_t n,
                                  const float* grads, size_t grad_stride,
                                  float lr, float clip);

  /// Packed, unclipped convenience overload (grad_stride == dim).
  void ApplyGradientBatch(const uint64_t* ids, size_t n, const float* grads,
                          float lr) {
    ApplyGradientBatch(ids, n, grads, dim(), lr, /*clip=*/0.0f);
  }

  /// Sharded backward: semantically IDENTICAL to ApplyGradientBatch — same
  /// updates, same importance statistics, same dirty marks, bit-for-bit —
  /// but the SGD scatter may run on `pool` with the physical row space
  /// partitioned into `num_shards` by ShardOfRow (common/thread_pool.h).
  /// Each row has exactly one writing shard, so workers share no state and
  /// the float-op sequence per row matches the serial path exactly; any
  /// stateful decision logic (sketch insertion, migration, allocation)
  /// stays serialized inside the store. num_shards <= 1 or pool == nullptr
  /// must take the serial path verbatim. The default forwards to the serial
  /// ApplyGradientBatch, so stores opt in per their own data layout.
  virtual void ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                         const float* grads,
                                         size_t grad_stride, float lr,
                                         float clip, ThreadPool* pool,
                                         uint32_t num_shards) {
    (void)pool;
    (void)num_shards;
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
  }

  /// Called once per training iteration; default no-op. Periodic work
  /// (score decay, reallocation) hangs off this.
  virtual void Tick() {}

  /// Total bytes of embedding parameters PLUS auxiliary structures
  /// (sketches, score arrays, index maps) — the paper's memory-fairness
  /// rule (§5.1.4 "we also consider the memory of additional structures").
  virtual size_t MemoryBytes() const = 0;

  /// Short scheme name for tables ("hash", "qr", "ada", "cafe", ...).
  virtual std::string Name() const = 0;

  /// Serializes the complete mutable state — embedding tables, sketches,
  /// score/frequency arrays, migration counters, RNG state — such that
  /// LoadState on a freshly constructed store with the SAME configuration
  /// reproduces this store bit-for-bit: identical lookups, MemoryBytes,
  /// counters, and identical behavior under continued training. Sizing
  /// derived from the config (row counts, sketch geometry) is written as a
  /// guard and re-checked by LoadState, not trusted from the file.
  virtual Status SaveState(io::Writer* writer) const {
    (void)writer;
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support checkpointing");
  }

  /// Restores state written by SaveState. On any mismatch (shape guard,
  /// truncation) the Status is non-OK and the store must be considered
  /// unusable (partially restored) — construct a fresh one to retry.
  virtual Status LoadState(io::Reader* reader) {
    (void)reader;
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support checkpointing");
  }

  /// True when the store implements the incremental-snapshot trio below
  /// (EnableDirtyTracking / SaveDelta / LoadDelta).
  virtual bool SupportsIncrementalSnapshots() const { return false; }

  /// Switches dirty-row tracking on (enable == true) or off.
  ///
  /// Enabling: from this call on, every mutation is recorded in per-store
  /// epoch-stamped dirty sets keyed on PHYSICAL rows (table rows, hash/qr
  /// buckets, cafe hot slots + hash backing, mde projections), so SaveDelta
  /// can serialize exactly what changed. The caller MUST capture a full
  /// SaveState base at the same quiescent point (same step boundary): a
  /// delta is only meaningful relative to that base plus every prior delta.
  /// Calling it again resets the sets (a rebase). Costs O(rows) stamp
  /// memory while enabled and one branch + one stamp check per row touched
  /// on the update path.
  ///
  /// Disabling releases the stamp arrays AND resets every tracking epoch
  /// and full-section flag (sketch/score "rewritten wholesale" markers), so
  /// the next enable — possibly issued by a DIFFERENT SnapshotManager after
  /// the previous one was torn down mid-chain or with a poisoned publish —
  /// starts from a clean slate instead of inheriting stale dirty state.
  /// Disable is a no-op (and always OK) when tracking was never enabled.
  virtual Status EnableDirtyTracking(bool enable) {
    if (!enable) return Status::OK();
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support incremental snapshots");
  }

  /// Convenience spelling: EnableDirtyTracking() == EnableDirtyTracking(true)
  /// (derived classes re-expose it with `using`, like the batch overloads).
  Status EnableDirtyTracking() { return EnableDirtyTracking(true); }

  /// Convenience alias for EnableDirtyTracking(false).
  void DisableDirtyTracking() { (void)EnableDirtyTracking(false); }

  /// Serializes every piece of mutable state that changed since the last
  /// SaveDelta (or since EnableDirtyTracking), then flushes the dirty sets
  /// — the O(changed rows) snapshot cut the online rollout path takes at a
  /// trainer step boundary, instead of SaveState's O(store bytes). Small
  /// O(1)/O(hot) state (counters, RNG, thresholds, free lists, sketch
  /// slots) is always included. FailedPrecondition when tracking is off.
  virtual Status SaveDelta(io::Writer* writer) {
    (void)writer;
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support incremental snapshots");
  }

  /// Applies a delta written by SaveDelta to a store previously restored
  /// from the matching base SaveState plus every preceding delta IN ORDER.
  /// After the k-th LoadDelta the store is bit-identical to the live store
  /// at the k-th cut (identical SaveState bytes). On any mismatch the store
  /// must be considered unusable, like LoadState.
  virtual Status LoadDelta(io::Reader* reader) {
    (void)reader;
    return Status::Unimplemented("store '" + Name() +
                                 "' does not support incremental snapshots");
  }

  /// Achieved compression ratio (uncompressed bytes / MemoryBytes).
  double AchievedCompressionRatio(const EmbeddingConfig& config) const {
    return static_cast<double>(config.UncompressedBytes()) /
           static_cast<double>(MemoryBytes());
  }

 protected:
  /// Lazily-bound per-scheme metrics handles (store.<Name()>.*; see
  /// store_obs.h for the naming contract and why only training entry
  /// points should call this).
  StoreObs& Obs() {
    if (!obs_.bound()) obs_.Bind(Name());
    return obs_;
  }

 private:
  StoreObs obs_;
};

namespace embed_internal {

/// Uniform(-1/sqrt(dim), +1/sqrt(dim)) row init, shared by all stores so
/// that comparisons start from identically distributed parameters.
float InitBound(uint32_t dim);

/// L2 norm of a gradient row, accumulated in double in index order. Shared
/// by every importance-tracking store so scalar and batched paths (and the
/// stores between themselves) compute bit-identical scores.
inline double GradNorm(const float* grad, uint32_t dim) {
  double norm_sq = 0.0;
  for (uint32_t i = 0; i < dim; ++i) {
    norm_sq += static_cast<double>(grad[i]) * grad[i];
  }
  return std::sqrt(norm_sq);
}

/// Normalizes an ApplyGradientBatch clip parameter to a clamp bound:
/// clip <= 0 means "no clipping", which std::clamp against +/-infinity
/// reproduces exactly (finite floats, including -0.0f, pass through with
/// their bit pattern intact), so the scatter loops keep ONE code path.
inline float ClipBound(float clip) {
  return clip > 0.0f ? clip : std::numeric_limits<float>::infinity();
}

/// One gradient element, clamped on read — the fused form of the staging
/// buffer's element clamp. Bit-identical to clamping into a staging array
/// and reading it back.
inline float ClipVal(float g, float bound) {
  return std::clamp(g, -bound, bound);
}

/// GradNorm over clip-on-read elements: what the staged path computed by
/// taking GradNorm of the already-clamped staging buffer.
inline double ClippedGradNorm(const float* grad, uint32_t dim, float bound) {
  double norm_sq = 0.0;
  for (uint32_t i = 0; i < dim; ++i) {
    const double g = ClipVal(grad[i], bound);
    norm_sq += g * g;
  }
  return std::sqrt(norm_sq);
}

/// Copies one embedding row. The batched gather loops run this per id, so
/// the common dims get compile-time-sized copies (inlined vector moves)
/// instead of a variable-size memcpy dispatch per row.
inline void CopyRow(float* dst, const float* src, uint32_t dim) {
  switch (dim) {
    case 16:
      std::memcpy(dst, src, 16 * sizeof(float));
      break;
    case 32:
      std::memcpy(dst, src, 32 * sizeof(float));
      break;
    case 8:
      std::memcpy(dst, src, 8 * sizeof(float));
      break;
    default:
      std::memcpy(dst, src, dim * sizeof(float));
      break;
  }
}

}  // namespace embed_internal

}  // namespace cafe

#endif  // CAFE_EMBED_EMBEDDING_STORE_H_
