#include "embed/ada_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {

StatusOr<std::unique_ptr<AdaEmbedding>> AdaEmbedding::Create(
    const EmbeddingConfig& config, const Options& options) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  // Per-feature score (4B) + row index (4B) arrays are mandatory overhead.
  const uint64_t aux_bytes = config.total_features * 8ULL;
  const uint64_t budget = config.BudgetBytes();
  if (budget <= aux_bytes) {
    return Status::ResourceExhausted(
        "ada embedding: importance-score storage alone exceeds the budget "
        "(AdaEmbed cannot reach this compression ratio)");
  }
  const uint64_t row_bytes = config.dim * sizeof(float);
  const uint64_t num_rows =
      std::min<uint64_t>((budget - aux_bytes) / row_bytes,
                         config.total_features);
  if (num_rows == 0) {
    return Status::ResourceExhausted("ada embedding: no row fits the budget");
  }
  return std::unique_ptr<AdaEmbedding>(
      new AdaEmbedding(config, options, num_rows));
}

AdaEmbedding::AdaEmbedding(const EmbeddingConfig& config,
                           const Options& options, uint64_t num_rows)
    : config_(config),
      options_(options),
      num_rows_(num_rows),
      rng_(config.seed ^ 0xadaULL),
      scores_(config.total_features, 0.0f),
      row_of_(config.total_features, -1),
      owner_of_(num_rows, 0) {
  pool_.Reset(num_rows, config.dim);
  free_rows_.reserve(num_rows);
  for (uint64_t r = num_rows; r-- > 0;) {
    free_rows_.push_back(static_cast<int32_t>(r));
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs_admissions_ = registry.GetCounter("store.ada.admissions_total");
  obs_evictions_ = registry.GetCounter("store.ada.evictions_total");
  obs_realloc_ticks_ = registry.GetCounter("store.ada.realloc_ticks_total");
  obs_allocated_rows_ = registry.GetGauge("store.ada.allocated_rows");
}

void AdaEmbedding::Lookup(uint64_t id, float* out) { LookupConst(id, out); }

void AdaEmbedding::LookupConst(uint64_t id, float* out) const {
  CAFE_DCHECK(id < config_.total_features);
  const int32_t row = row_of_[id];
  if (row < 0) {
    std::memset(out, 0, config_.dim * sizeof(float));
    return;
  }
  std::memcpy(out, pool_.Row(static_cast<uint64_t>(row)),
              config_.dim * sizeof(float));
}

void AdaEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                               size_t out_stride) {
  Obs().RecordLookup(n);
  const uint32_t d = config_.dim;
  row_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    CAFE_DCHECK(ids[i] < config_.total_features);
    row_scratch_[i] = row_of_[ids[i]];
  }
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      const int64_t ahead = row_scratch_[i + pf];
      if (ahead >= 0) PrefetchRead(pool_.Row(static_cast<uint64_t>(ahead)));
    }
    const int64_t row = row_scratch_[i];
    if (row < 0) {
      std::memset(out + i * out_stride, 0, d * sizeof(float));
    } else {
      simd::CopyRow(out + i * out_stride, pool_.Row(static_cast<uint64_t>(row)),
                    d);
    }
  }
}

void AdaEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                    size_t out_stride) const {
  // Scratch-free serving path: the row-index array is itself the prefetch
  // target one step ahead, then the row a second read resolves.
  const uint32_t d = config_.dim;
  const size_t pf = PrefetchDistance();
  for (size_t i = 0; i < n; ++i) {
    if (i + pf < n) {
      const int32_t ahead = row_of_[ids[i + pf]];
      if (ahead >= 0) PrefetchRead(pool_.Row(static_cast<uint64_t>(ahead)));
    }
    CAFE_DCHECK(ids[i] < config_.total_features);
    const int32_t row = row_of_[ids[i]];
    if (row < 0) {
      std::memset(out + i * out_stride, 0, d * sizeof(float));
    } else {
      simd::CopyRow(out + i * out_stride, pool_.Row(static_cast<uint64_t>(row)),
                    d);
    }
  }
}

using embed_internal::GradNorm;

void AdaEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                      const float* grads, size_t grad_stride,
                                      float lr, float clip) {
  // Dedup + accumulate straight from the model's strided gradient tensor,
  // clamping each element as it is read: the importance score advances once
  // per unique id by the summed per-occurrence clipped gradient norms
  // (identical to the scalar stream's total — mixed-sign gradients must not
  // cancel importance), and each allocated row takes one SGD step with the
  // accumulated clipped gradient.
  const uint32_t d = config_.dim;
  dedup_.Build(ids, n);
  Obs().RecordBackward(n, dedup_.num_unique());
  dedup_.AccumulateRows(grads, n, d, grad_stride, clip, &grad_accum_);
  dedup_.AccumulateNorms(grads, n, d, grad_stride, clip, &importance_accum_);
  const size_t num_unique = dedup_.num_unique();
  const size_t pf = PrefetchDistance();
  for (size_t u = 0; u < num_unique; ++u) {
    // Scatter-side prefetch: ApplyOne's SGD lands on row_of_[id], known up
    // front for already-allocated ids (a stale or -1 read ahead is just a
    // skipped hint — cold-start claims mid-stream cannot hurt correctness).
    if (u + pf < num_unique) {
      const int32_t ahead = row_of_[dedup_.unique_id(u + pf)];
      if (ahead >= 0) {
        PrefetchWrite(pool_.Row(static_cast<uint64_t>(ahead)));
      }
    }
    ApplyOne(dedup_.unique_id(u), grad_accum_.data() + u * d, lr,
             importance_accum_[u]);
  }
}

void AdaEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                             const float* grads,
                                             size_t grad_stride, float lr,
                                             float clip, ThreadPool* pool,
                                             uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Three phases, bit-identical to the serial dedup'd path because the SGD
  // targets of a batch are disjoint rows (row_of_ is a bijection over
  // allocated features and cold starts claim FREE rows), so hoisting the
  // scatter out of the per-unique loop reorders only independent writes:
  //   A (parallel)  accumulate gradients + importance per unique, workers
  //                 partitioned by unique index;
  //   B (serial)    score updates, cold-start claims (sequential rng_),
  //                 dirty marks — every stateful decision, in unique order;
  //   C (parallel)  the SGD scatter, workers partitioned by physical row.
  const uint32_t d = config_.dim;
  dedup_.Build(ids, n);
  const size_t num_unique = dedup_.num_unique();
  Obs().RecordBackward(n, num_unique);
  grad_accum_.resize(num_unique * d);
  importance_accum_.resize(num_unique);
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    const auto owns = [num_shards, shard](uint32_t u) {
      return ShardOfRow(u, num_shards) == shard;
    };
    dedup_.AccumulateRowsSharded(grads, n, d, grad_stride, clip,
                                 grad_accum_.data(), owns);
    dedup_.AccumulateNormsSharded(grads, n, d, grad_stride, clip,
                                  importance_accum_.data(), owns);
  });

  // Phase B marks dirty state on this thread in unique order — exactly the
  // serial path's first-touch order — so no per-shard staging is needed.
  const bool track = dirty_features_.enabled();
  row_scratch_.resize(num_unique);
  const float bound = embed_internal::InitBound(d);
  for (size_t u = 0; u < num_unique; ++u) {
    const uint64_t id = dedup_.unique_id(u);
    CAFE_DCHECK(id < config_.total_features);
    if (track) dirty_features_.Mark(id);
    scores_[id] += static_cast<float>(importance_accum_[u]);
    int32_t row = row_of_[id];
    if (row < 0) {
      if (free_rows_.empty()) {
        row_scratch_[u] = -1;
        continue;
      }
      row = free_rows_.back();
      free_rows_.pop_back();
      row_of_[id] = row;
      owner_of_[row] = id;
      ++allocated_count_;
      obs_admissions_->Add(1);
      float* fresh = pool_.Row(static_cast<uint64_t>(row));
      for (uint32_t k = 0; k < d; ++k) {
        fresh[k] = rng_.UniformFloat(-bound, bound);
      }
    }
    if (track) dirty_rows_.Mark(static_cast<uint64_t>(row));
    row_scratch_[u] = row;
  }

  const size_t pf = PrefetchDistance();
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    for (size_t u = 0; u < num_unique; ++u) {
      if (u + pf < num_unique) {
        const int64_t ahead = row_scratch_[u + pf];
        if (ahead >= 0 &&
            ShardOfRow(static_cast<uint64_t>(ahead), num_shards) == shard) {
          PrefetchWrite(pool_.Row(static_cast<uint64_t>(ahead)));
        }
      }
      const int64_t row = row_scratch_[u];
      if (row < 0 ||
          ShardOfRow(static_cast<uint64_t>(row), num_shards) != shard) {
        continue;
      }
      simd::AxpyNeg(pool_.Row(static_cast<uint64_t>(row)),
                    grad_accum_.data() + u * d, d, lr);
    }
  });
}

void AdaEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  ApplyOne(id, grad, lr, GradNorm(grad, config_.dim));
}

void AdaEmbedding::ApplyOne(uint64_t id, const float* grad, float lr,
                            double score_inc) {
  CAFE_DCHECK(id < config_.total_features);
  if (dirty_features_.enabled()) dirty_features_.Mark(id);
  scores_[id] += static_cast<float>(score_inc);

  int32_t row = row_of_[id];
  if (row < 0) {
    // Cold start: claim a free row on first update so early training is not
    // starved while waiting for the first reallocation scan.
    if (free_rows_.empty()) return;
    row = free_rows_.back();
    free_rows_.pop_back();
    row_of_[id] = row;
    owner_of_[row] = id;
    ++allocated_count_;
    obs_admissions_->Add(1);
    float* fresh = pool_.Row(static_cast<uint64_t>(row));
    const float bound = embed_internal::InitBound(config_.dim);
    for (uint32_t i = 0; i < config_.dim; ++i) {
      fresh[i] = rng_.UniformFloat(-bound, bound);
    }
  }
  if (dirty_rows_.enabled()) dirty_rows_.Mark(static_cast<uint64_t>(row));
  simd::AxpyNeg(pool_.Row(static_cast<uint64_t>(row)), grad, config_.dim, lr);
}

void AdaEmbedding::Tick() {
  ++iteration_;
  if (iteration_ % options_.realloc_interval == 0) Reallocate();
  obs_allocated_rows_->Set(static_cast<double>(allocated_count_));
}

void AdaEmbedding::Reallocate() {
  obs_realloc_ticks_->Add(1);
  // Decay first so stale importance fades (AdaEmbed's recency weighting).
  // Every score changes by the same multiply, so the next delta ships the
  // pass count and the apply side replays it instead of the array.
  if (dirty_features_.enabled()) ++pending_score_decays_;
  for (float& s : scores_) {
    s *= static_cast<float>(options_.score_decay);
  }

  // Threshold = num_rows-th largest score. This full scan over all n
  // features is AdaEmbed's intrinsic latency cost.
  std::vector<float> sorted(scores_);
  const size_t k = static_cast<size_t>(
      std::min<uint64_t>(num_rows_, sorted.size()));
  std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end(),
                   std::greater<float>());
  const float threshold = sorted[k - 1];
  if (threshold <= 0.0f) return;  // nothing informative yet

  std::vector<uint64_t> admit;   // unallocated features at/above threshold
  std::vector<uint64_t> evict;   // allocated features at/below threshold
  for (uint64_t f = 0; f < scores_.size(); ++f) {
    if (row_of_[f] < 0 && scores_[f] >= threshold) {
      admit.push_back(f);
    } else if (row_of_[f] >= 0 && scores_[f] <= threshold) {
      evict.push_back(f);
    }
  }
  // Strongest candidates first / weakest victims first.
  std::sort(admit.begin(), admit.end(), [&](uint64_t a, uint64_t b) {
    return scores_[a] > scores_[b];
  });
  std::sort(evict.begin(), evict.end(), [&](uint64_t a, uint64_t b) {
    return scores_[a] < scores_[b];
  });

  const size_t churn_cap = static_cast<size_t>(
      std::max(1.0, options_.max_migration_fraction *
                        static_cast<double>(num_rows_)));
  size_t moved = 0;
  size_t evict_idx = 0;
  const float bound = embed_internal::InitBound(config_.dim);
  for (uint64_t f : admit) {
    if (moved >= churn_cap) break;
    int32_t row;
    if (!free_rows_.empty()) {
      row = free_rows_.back();
      free_rows_.pop_back();
      ++allocated_count_;
      obs_admissions_->Add(1);
    } else if (evict_idx < evict.size() &&
               scores_[evict[evict_idx]] < scores_[f]) {
      // Swap only on strict improvement so equal-importance features do
      // not thrash rows back and forth.
      const uint64_t victim = evict[evict_idx++];
      row = row_of_[victim];
      row_of_[victim] = -1;  // victim's embedding is discarded
      obs_evictions_->Add(1);
      obs_admissions_->Add(1);
      if (dirty_features_.enabled()) dirty_features_.Mark(victim);
    } else {
      break;
    }
    row_of_[f] = row;
    owner_of_[row] = f;
    if (dirty_features_.enabled()) {
      dirty_features_.Mark(f);
      dirty_rows_.Mark(static_cast<uint64_t>(row));
    }
    float* values = pool_.Row(static_cast<uint64_t>(row));
    for (uint32_t i = 0; i < config_.dim; ++i) {
      values[i] = rng_.UniformFloat(-bound, bound);
    }
    ++moved;
  }
}

Status AdaEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(config_.total_features);
  writer->WriteU64(num_rows_);
  writer->WriteU32(config_.dim);
  writer->WriteU64(iteration_);
  writer->WriteU64(allocated_count_);
  uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) writer->WriteU64(word);
  writer->WriteVec(scores_);
  writer->WriteVec(row_of_);
  writer->WriteVec(owner_of_);
  writer->WriteVec(free_rows_);
  pool_.Save(writer);
  return Status::OK();
}

Status AdaEmbedding::LoadState(io::Reader* reader) {
  uint64_t features = 0, rows = 0;
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&features));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (features != config_.total_features || rows != num_rows_ ||
      d != config_.dim) {
    return Status::FailedPrecondition(
        "ada embedding: checkpoint sizing does not match this store");
  }
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&iteration_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&allocated_count_));
  uint64_t rng_state[4];
  for (uint64_t& word : rng_state) CAFE_RETURN_IF_ERROR(reader->ReadU64(&word));
  rng_.LoadState(rng_state);
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&scores_, scores_.size(), "ada scores"));
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&row_of_, row_of_.size(), "ada row index"));
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&owner_of_, owner_of_.size(), "ada row owners"));
  CAFE_RETURN_IF_ERROR(reader->ReadVec(&free_rows_));
  if (free_rows_.size() > num_rows_) {
    return Status::FailedPrecondition("ada embedding: corrupt free-row list");
  }
  return pool_.Load(reader, "ada table");
}

Status AdaEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_features_.Enable(config_.total_features);
    dirty_rows_.Enable(num_rows_);
  } else {
    dirty_features_.Disable();
    dirty_rows_.Disable();
  }
  pending_score_decays_ = 0;
  return Status::OK();
}

Status AdaEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_features_.enabled()) {
    return Status::FailedPrecondition(
        "ada embedding: dirty tracking is not enabled");
  }
  // Guards + the O(1) state a delta always carries: counters, RNG, and the
  // free-row list (near-empty in steady state, bounded by the row pool).
  writer->WriteU32(config_.dim);
  writer->WriteU64(config_.total_features);
  writer->WriteU64(num_rows_);
  writer->WriteU64(iteration_);
  writer->WriteU64(allocated_count_);
  uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) writer->WriteU64(word);
  writer->WriteVec(free_rows_);
  // Scores: realloc ticks decay every score by the same coefficient, so
  // the delta ships the pass COUNT (replayed deterministically on apply)
  // and only the dirty features' final scores — O(dirty) across a tick
  // instead of the whole array.
  writer->WriteU64(pending_score_decays_);
  // Per dirty feature: final score (overrides the replayed decay) + row
  // index (covers realloc victims, whose row index went to -1 without a
  // row write).
  writer->WriteU64(dirty_features_.rows().size());
  for (const uint64_t id : dirty_features_.rows()) {
    writer->WriteU64(id);
    writer->WriteF32(scores_[id]);
    writer->WriteI32(row_of_[id]);
  }
  // Per dirty row: owner + values (ownership changes exactly when the row's
  // contents are rewritten — cold-start claim or realloc re-init).
  const size_t delta_start = writer->size();
  writer->WriteU64(dirty_rows_.rows().size());
  for (const uint64_t row : dirty_rows_.rows()) {
    writer->WriteU64(row);
    writer->WriteU64(owner_of_[row]);
    writer->WriteBytes(pool_.Row(row), config_.dim * sizeof(float));
  }
  Obs().RecordDelta(dirty_rows_.rows().size(), writer->size() - delta_start);
  dirty_features_.Flush();
  dirty_rows_.Flush();
  pending_score_decays_ = 0;
  return Status::OK();
}

Status AdaEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  uint64_t features = 0, rows = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&features));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&rows));
  if (d != config_.dim || features != config_.total_features ||
      rows != num_rows_) {
    return Status::FailedPrecondition(
        "ada embedding: delta sizing does not match this store");
  }
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&iteration_));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&allocated_count_));
  uint64_t rng_state[4];
  for (uint64_t& word : rng_state) CAFE_RETURN_IF_ERROR(reader->ReadU64(&word));
  rng_.LoadState(rng_state);
  CAFE_RETURN_IF_ERROR(reader->ReadVec(&free_rows_));
  if (free_rows_.size() > num_rows_) {
    return Status::FailedPrecondition("ada embedding: corrupt free-row list");
  }
  uint64_t decay_passes = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&decay_passes));
  if (decay_passes > iteration_) {
    return Status::FailedPrecondition(
        "ada embedding: corrupt delta decay count");
  }
  // Replay the realloc-tick decays the source ran since the last delta.
  // Untouched features see the exact multiply sequence the source did;
  // dirty features are overwritten with their final value just below.
  for (uint64_t pass = 0; pass < decay_passes; ++pass) {
    for (float& s : scores_) s *= static_cast<float>(options_.score_decay);
  }
  uint64_t feature_count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&feature_count));
  if (feature_count > config_.total_features) {
    return Status::FailedPrecondition("ada embedding: corrupt delta features");
  }
  for (uint64_t i = 0; i < feature_count; ++i) {
    uint64_t id = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&id));
    if (id >= config_.total_features) {
      return Status::FailedPrecondition(
          "ada embedding: delta feature out of range");
    }
    CAFE_RETURN_IF_ERROR(reader->ReadF32(&scores_[id]));
    CAFE_RETURN_IF_ERROR(reader->ReadI32(&row_of_[id]));
    if (row_of_[id] >= static_cast<int64_t>(num_rows_)) {
      return Status::FailedPrecondition(
          "ada embedding: delta row index out of range");
    }
  }
  uint64_t row_count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&row_count));
  if (row_count > num_rows_) {
    return Status::FailedPrecondition("ada embedding: corrupt delta rows");
  }
  for (uint64_t i = 0; i < row_count; ++i) {
    uint64_t row = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&row));
    if (row >= num_rows_) {
      return Status::FailedPrecondition(
          "ada embedding: delta row out of range");
    }
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&owner_of_[row]));
    CAFE_RETURN_IF_ERROR(
        reader->ReadBytes(pool_.Row(row), config_.dim * sizeof(float)));
  }
  return Status::OK();
}

size_t AdaEmbedding::MemoryBytes() const {
  return pool_.MemoryBytes() + scores_.size() * sizeof(float) +
         row_of_.size() * sizeof(int32_t);
}

}  // namespace cafe
