#ifndef CAFE_EMBED_DIRTY_ROWS_H_
#define CAFE_EMBED_DIRTY_ROWS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/serialize.h"

namespace cafe {

/// Epoch-stamped dirty set over a fixed physical row space [0, num_rows),
/// the building block of the stores' incremental-snapshot support.
///
/// Every mutation path calls Mark(row); the first Mark of a row per epoch
/// appends it to the dirty list (first-touch order, deterministic), later
/// Marks hit the stamp and return — one array load per touch, no hashing,
/// no allocation in steady state. Flush() opens a new epoch in O(1)
/// (amortized: a u32 epoch wrap after 4 billion flushes re-zeroes the
/// stamps), so the per-cut cost of the whole scheme is exactly the dirty
/// list SaveDelta walks.
///
/// The set is owned by a store and only ever touched on the trainer thread
/// (updates mark, the boundary-time SaveDelta reads + flushes), so it needs
/// no synchronization — the same single-writer contract the tables
/// themselves live under.
class DirtyRowSet {
 public:
  bool enabled() const { return enabled_; }

  /// Starts (or restarts — a rebase) tracking over `num_rows` rows. The
  /// dirty list comes back empty: changes are relative to the full base
  /// snapshot the caller captures at the same point.
  void Enable(uint64_t num_rows) {
    enabled_ = true;
    stamps_.assign(static_cast<size_t>(num_rows), 0);
    epoch_ = 1;
    dirty_.clear();
    for (ShardList& shard : shard_dirty_) shard.rows.clear();
  }

  /// Stops tracking, releases the stamp array, and zeroes the epoch so a
  /// disabled set is bit-identical to a freshly constructed one. Enable()
  /// re-zeroes stamps and epoch itself, so the reset here is canonical
  /// state, not a correctness requirement for re-enabling.
  void Disable() {
    enabled_ = false;
    epoch_ = 0;
    stamps_.clear();
    stamps_.shrink_to_fit();
    dirty_.clear();
    dirty_.shrink_to_fit();
    shard_dirty_.clear();
    shard_dirty_.shrink_to_fit();
  }

  /// Records `row` as changed in the current epoch. Caller guards with
  /// enabled() so the disabled hot path pays one predictable branch.
  void Mark(uint64_t row) {
    uint32_t& stamp = stamps_[static_cast<size_t>(row)];
    if (stamp == epoch_) return;
    stamp = epoch_;
    dirty_.push_back(row);
  }

  /// Sizes the per-shard staging lists for the parallel backward. Cheap and
  /// idempotent at a fixed shard count; the lists persist across batches so
  /// steady state allocates nothing.
  void EnableShards(uint32_t num_shards) {
    if (shard_dirty_.size() < num_shards) shard_dirty_.resize(num_shards);
  }

  /// Shard-local Mark for the parallel scatter: the worker that OWNS `row`
  /// (ShardOfRow(row) == shard, enforced by the caller) appends to its own
  /// cache-line-isolated list. The stamp array stays shared — safe without
  /// atomics because the deterministic row->shard map gives every stamp
  /// exactly one writer per batch, and batches are separated by the
  /// MergeShards join on the trainer thread.
  void Mark(uint64_t row, uint32_t shard) {
    uint32_t& stamp = stamps_[static_cast<size_t>(row)];
    if (stamp == epoch_) return;
    stamp = epoch_;
    shard_dirty_[shard].rows.push_back(row);
  }

  /// Drains the per-shard staging lists into the main dirty list (trainer
  /// thread, after the workers joined). Rows keep first-touch order within
  /// a shard and shards append in index order, so the merged list is
  /// deterministic for a fixed shard count; SaveDelta / Flush / rows() see
  /// exactly the serial representation afterwards. LoadDelta overwrites
  /// whole rows, so list ORDER never changes the replayed bytes.
  void MergeShards() {
    for (ShardList& shard : shard_dirty_) {
      dirty_.insert(dirty_.end(), shard.rows.begin(), shard.rows.end());
      shard.rows.clear();
    }
  }

  /// Rows marked since the last Flush, in first-touch order.
  const std::vector<uint64_t>& rows() const { return dirty_; }

  /// Closes the epoch: the dirty list empties and previous stamps become
  /// stale without touching them.
  void Flush() {
    dirty_.clear();
    if (++epoch_ == 0) {  // u32 wrap: every stamp is stale anyway
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

 private:
  /// One staging list per shard, padded to a cache line so workers never
  /// false-share the vector headers.
  struct alignas(64) ShardList {
    std::vector<uint64_t> rows;
  };

  bool enabled_ = false;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamps_;       // per-row last-marked epoch
  std::vector<uint64_t> dirty_;        // rows marked this epoch
  std::vector<ShardList> shard_dirty_;  // parallel-backward staging
};

namespace delta_internal {

/// Serializes one fixed-width dirty table section: a count followed by
/// (row index, row_floats floats) records in first-touch order. The shared
/// shape of every store's big-array delta payload.
inline void WriteDirtyRows(io::Writer* writer, const DirtyRowSet& set,
                           const float* table, uint32_t row_floats) {
  writer->WriteU64(set.rows().size());
  for (const uint64_t row : set.rows()) {
    writer->WriteU64(row);
    writer->WriteBytes(table + row * row_floats,
                       row_floats * sizeof(float));
  }
}

/// Applies a section written by WriteDirtyRows onto `table` (num_rows rows
/// of row_floats floats), bounds-checking every record.
inline Status ReadDirtyRows(io::Reader* reader, float* table,
                            uint64_t num_rows, uint32_t row_floats,
                            const char* what) {
  uint64_t count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > num_rows) {
    return Status::FailedPrecondition(
        std::string("delta dirty-row count exceeds table for ") + what);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&row));
    if (row >= num_rows) {
      return Status::FailedPrecondition(
          std::string("delta dirty row out of range for ") + what);
    }
    CAFE_RETURN_IF_ERROR(reader->ReadBytes(table + row * row_floats,
                                           row_floats * sizeof(float)));
  }
  return Status::OK();
}

/// WriteDirtyRows for tables without a contiguous base pointer (the
/// RowPool-backed stores): `row_at(row)` resolves each dirty row. Framing
/// is identical to the pointer overload, so converting a store's backing
/// storage never changes its delta stream.
template <typename RowAtFn>
inline void WriteDirtyRowsAt(io::Writer* writer, const DirtyRowSet& set,
                             RowAtFn row_at, uint32_t row_floats) {
  writer->WriteU64(set.rows().size());
  for (const uint64_t row : set.rows()) {
    writer->WriteU64(row);
    writer->WriteBytes(row_at(row), row_floats * sizeof(float));
  }
}

/// ReadDirtyRows against a row accessor; bounds checks mirror the pointer
/// overload.
template <typename RowAtFn>
inline Status ReadDirtyRowsAt(io::Reader* reader, RowAtFn row_at,
                              uint64_t num_rows, uint32_t row_floats,
                              const char* what) {
  uint64_t count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > num_rows) {
    return Status::FailedPrecondition(
        std::string("delta dirty-row count exceeds table for ") + what);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&row));
    if (row >= num_rows) {
      return Status::FailedPrecondition(
          std::string("delta dirty row out of range for ") + what);
    }
    CAFE_RETURN_IF_ERROR(
        reader->ReadBytes(row_at(row), row_floats * sizeof(float)));
  }
  return Status::OK();
}

}  // namespace delta_internal

}  // namespace cafe

#endif  // CAFE_EMBED_DIRTY_ROWS_H_
