#include "embed/mde_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/simd.h"
#include "common/thread_pool.h"

namespace cafe {
namespace {

// Per-field dims for a given scale factor: d_f = clamp(round(scale *
// (min_card / n_f)^alpha * d), 1, d). Returns total float count
// (tables + projections).
uint64_t DimsForScale(const FieldLayout& layout, uint32_t d, double alpha,
                      double scale, std::vector<uint32_t>* dims) {
  uint64_t min_card = ~0ULL;
  for (size_t f = 0; f < layout.num_fields(); ++f) {
    min_card = std::min(min_card, layout.cardinality(f));
  }
  dims->assign(layout.num_fields(), 1);
  uint64_t floats = 0;
  for (size_t f = 0; f < layout.num_fields(); ++f) {
    const double popularity = static_cast<double>(min_card) /
                              static_cast<double>(layout.cardinality(f));
    double df = scale * std::pow(popularity, alpha) * d;
    uint32_t dim_f = static_cast<uint32_t>(std::lround(df));
    dim_f = std::clamp<uint32_t>(dim_f, 1, d);
    (*dims)[f] = dim_f;
    floats += layout.cardinality(f) * dim_f + static_cast<uint64_t>(dim_f) * d;
  }
  return floats;
}

}  // namespace

StatusOr<std::unique_ptr<MdeEmbedding>> MdeEmbedding::Create(
    const EmbeddingConfig& config, const FieldLayout& layout,
    const Options& options) {
  CAFE_RETURN_IF_ERROR(config.Validate());
  if (layout.total_features() != config.total_features) {
    return Status::InvalidArgument(
        "field layout does not cover total_features");
  }
  const uint64_t budget_floats = config.BudgetBytes() / sizeof(float);

  std::vector<uint32_t> dims;
  // Check feasibility at the smallest assignment (all fields at d_f = 1).
  if (DimsForScale(layout, config.dim, options.alpha, 0.0, &dims) >
      budget_floats) {
    return Status::ResourceExhausted(
        "mde embedding: even 1-dim rows exceed the budget (column "
        "compression is bounded by the embedding dimension)");
  }
  // Binary search the largest scale whose assignment fits the budget.
  double lo = 0.0, hi = 4.0;
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (DimsForScale(layout, config.dim, options.alpha, mid, &dims) <=
        budget_floats) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  DimsForScale(layout, config.dim, options.alpha, lo, &dims);
  return std::unique_ptr<MdeEmbedding>(
      new MdeEmbedding(config, layout, std::move(dims)));
}

MdeEmbedding::MdeEmbedding(const EmbeddingConfig& config,
                           const FieldLayout& layout,
                           std::vector<uint32_t> field_dims)
    : config_(config), layout_(layout), field_dims_(std::move(field_dims)) {
  size_t table_floats = 0;
  size_t proj_floats = 0;
  table_offset_.reserve(layout_.num_fields());
  proj_offset_.reserve(layout_.num_fields());
  for (size_t f = 0; f < layout_.num_fields(); ++f) {
    table_offset_.push_back(table_floats);
    proj_offset_.push_back(proj_floats);
    table_floats += layout_.cardinality(f) * field_dims_[f];
    proj_floats += static_cast<size_t>(field_dims_[f]) * config_.dim;
  }
  tables_.resize(table_floats);
  projections_.resize(proj_floats);

  Rng rng(config.seed ^ 0x3deULL);
  for (size_t f = 0; f < layout_.num_fields(); ++f) {
    const uint32_t df = field_dims_[f];
    const float row_bound = embed_internal::InitBound(df);
    float* table = tables_.data() + table_offset_[f];
    const size_t count = layout_.cardinality(f) * df;
    for (size_t i = 0; i < count; ++i) {
      table[i] = rng.UniformFloat(-row_bound, row_bound);
    }
    // Xavier init for the d_f -> d projection.
    const float proj_bound =
        std::sqrt(6.0f / static_cast<float>(df + config_.dim));
    float* proj = projections_.data() + proj_offset_[f];
    for (size_t i = 0; i < static_cast<size_t>(df) * config_.dim; ++i) {
      proj[i] = rng.UniformFloat(-proj_bound, proj_bound);
    }
  }
}

void MdeEmbedding::Lookup(uint64_t id, float* out) { LookupOne(id, out); }

void MdeEmbedding::LookupConst(uint64_t id, float* out) const {
  // LookupOne is already a pure read over the tables; the projection runs
  // straight into `out`, so concurrent serving callers never share scratch.
  LookupOne(id, out);
}

void MdeEmbedding::LookupOne(uint64_t id, float* out) const {
  const size_t field = layout_.FieldOf(id);
  const uint64_t local = id - layout_.offset(field);
  const uint32_t df = field_dims_[field];
  const float* row = tables_.data() + table_offset_[field] + local * df;
  const float* proj = projections_.data() + proj_offset_[field];  // df x d
  for (uint32_t j = 0; j < config_.dim; ++j) out[j] = 0.0f;
  for (uint32_t i = 0; i < df; ++i) {
    simd::AddScaled(out, proj + static_cast<size_t>(i) * config_.dim,
                    config_.dim, row[i]);
  }
}

void MdeEmbedding::ApplyGradient(uint64_t id, const float* grad, float lr) {
  ApplyOne(id, grad, lr);
}

void MdeEmbedding::LookupBatch(const uint64_t* ids, size_t n, float* out,
                               size_t out_stride) {
  // Project once per unique id, then replicate the finished embedding to
  // duplicate occurrences (read-only, so results match the scalar loop).
  Obs().RecordLookup(n);
  const uint32_t d = config_.dim;
  dedup_.Build(ids, n);
  const size_t num_unique = dedup_.num_unique();
  for (size_t u = 0; u < num_unique; ++u) {
    LookupOne(dedup_.unique_id(u),
              out + static_cast<size_t>(dedup_.first_occurrence(u)) *
                        out_stride);
  }
  dedup_.ReplicateRows(out, n, d, out_stride);
}

void MdeEmbedding::LookupBatchConst(const uint64_t* ids, size_t n, float* out,
                                    size_t out_stride) const {
  // Serving path: the per-id projection matmul is MDE's whole lookup cost,
  // so recover the per-unique dedup here too. The deduper is thread_local
  // (one per serving worker), keeping concurrent callers scratch-free with
  // respect to each other; projections are pure reads, so the output is
  // byte-identical to n scalar LookupConst calls.
  static thread_local BatchDeduper dedup;
  if (!dedup.BuildAdaptive(ids, n)) {
    for (size_t i = 0; i < n; ++i) LookupOne(ids[i], out + i * out_stride);
    return;
  }
  const size_t num_unique = dedup.num_unique();
  for (size_t u = 0; u < num_unique; ++u) {
    LookupOne(dedup.unique_id(u),
              out + static_cast<size_t>(dedup.first_occurrence(u)) *
                        out_stride);
  }
  dedup.ReplicateRows(out, n, config_.dim, out_stride);
}

void MdeEmbedding::ApplyGradientBatch(const uint64_t* ids, size_t n,
                                      const float* grads, size_t grad_stride,
                                      float lr, float clip) {
  // One row+projection backward per unique id with the clip-on-read
  // accumulated gradient: the projection matrix sees the true batch
  // gradient instead of per-occurrence partial steps.
  dedup_.Build(ids, n);
  dedup_.AccumulateRows(grads, n, config_.dim, grad_stride, clip,
                        &grad_accum_);
  const size_t num_unique = dedup_.num_unique();
  Obs().RecordBackward(n, num_unique);
  for (size_t u = 0; u < num_unique; ++u) {
    ApplyOne(dedup_.unique_id(u), grad_accum_.data() + u * config_.dim, lr);
  }
}

void MdeEmbedding::ApplyGradientBatchSharded(const uint64_t* ids, size_t n,
                                             const float* grads,
                                             size_t grad_stride, float lr,
                                             float clip, ThreadPool* pool,
                                             uint32_t num_shards) {
  if (pool == nullptr || num_shards <= 1) {
    ApplyGradientBatch(ids, n, grads, grad_stride, lr, clip);
    return;
  }
  // Only the per-occurrence gradient accumulation shards cleanly here: every
  // ApplyOne in a field reads AND writes that field's shared d_f x d
  // projection matrix, so the backward scatter has no row partition — it
  // stays serial, in unique order, exactly as the serial path runs it.
  const uint32_t d = config_.dim;
  dedup_.Build(ids, n);
  const size_t num_unique = dedup_.num_unique();
  Obs().RecordBackward(n, num_unique);
  grad_accum_.resize(num_unique * d);
  pool->ParallelFor(num_shards, [&](uint32_t shard) {
    dedup_.AccumulateRowsSharded(
        grads, n, d, grad_stride, clip, grad_accum_.data(),
        [&](size_t u) { return ShardOfRow(u, num_shards) == shard; });
  });
  for (size_t u = 0; u < num_unique; ++u) {
    ApplyOne(dedup_.unique_id(u), grad_accum_.data() + u * d, lr);
  }
}

void MdeEmbedding::ApplyOne(uint64_t id, const float* grad, float lr) {
  const size_t field = layout_.FieldOf(id);
  const uint64_t local = id - layout_.offset(field);
  const uint32_t df = field_dims_[field];
  if (dirty_features_.enabled()) {
    dirty_features_.Mark(id);
    dirty_projections_.Mark(field);
  }
  float* row = tables_.data() + table_offset_[field] + local * df;
  float* proj = projections_.data() + proj_offset_[field];
  // d(out)/d(row_i) = proj row i; d(out)/d(proj_ij) = row_i * grad_j.
  for (uint32_t i = 0; i < df; ++i) {
    float* p = proj + static_cast<size_t>(i) * config_.dim;
    const float row_i = row[i];
    // The row-gradient dot product is a float reduction in index order —
    // it stays scalar (vectorizing would reassociate the sum). The
    // projection update reads grad only, so it splits off as an axpy with
    // coefficient lr*row_i (the same rounded product the fused loop used).
    float grad_row_i = 0.0f;
    for (uint32_t j = 0; j < config_.dim; ++j) grad_row_i += grad[j] * p[j];
    simd::AxpyNeg(p, grad, config_.dim, lr * row_i);
    row[i] -= lr * grad_row_i;
  }
}

Status MdeEmbedding::SaveState(io::Writer* writer) const {
  writer->WriteU64(config_.total_features);
  writer->WriteU32(config_.dim);
  writer->WriteVec(field_dims_);
  writer->WriteVec(tables_);
  writer->WriteVec(projections_);
  return Status::OK();
}

Status MdeEmbedding::LoadState(io::Reader* reader) {
  uint64_t features = 0;
  uint32_t d = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&features));
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  if (features != config_.total_features || d != config_.dim) {
    return Status::FailedPrecondition(
        "mde embedding: checkpoint sizing does not match this store");
  }
  std::vector<uint32_t> field_dims;
  CAFE_RETURN_IF_ERROR(reader->ReadVec(&field_dims));
  if (field_dims != field_dims_) {
    return Status::FailedPrecondition(
        "mde embedding: checkpoint per-field dims do not match this store");
  }
  CAFE_RETURN_IF_ERROR(
      reader->ReadVecExpected(&tables_, tables_.size(), "mde tables"));
  return reader->ReadVecExpected(&projections_, projections_.size(),
                                 "mde projections");
}

Status MdeEmbedding::EnableDirtyTracking(bool enable) {
  if (enable) {
    dirty_features_.Enable(config_.total_features);
    dirty_projections_.Enable(layout_.num_fields());
  } else {
    dirty_features_.Disable();
    dirty_projections_.Disable();
  }
  return Status::OK();
}

Status MdeEmbedding::SaveDelta(io::Writer* writer) {
  if (!dirty_features_.enabled()) {
    return Status::FailedPrecondition(
        "mde embedding: dirty tracking is not enabled");
  }
  writer->WriteU32(config_.dim);
  writer->WriteU64(config_.total_features);
  const size_t delta_start = writer->size();
  const uint64_t delta_rows =
      dirty_features_.rows().size() + dirty_projections_.rows().size();
  // Per dirty feature: its d_f-wide table row (width derived from the
  // feature's field on both sides).
  writer->WriteU64(dirty_features_.rows().size());
  for (const uint64_t id : dirty_features_.rows()) {
    const size_t field = layout_.FieldOf(id);
    const uint64_t local = id - layout_.offset(field);
    const uint32_t df = field_dims_[field];
    writer->WriteU64(id);
    writer->WriteBytes(tables_.data() + table_offset_[field] + local * df,
                       df * sizeof(float));
  }
  // Per dirty field: the whole d_f x d projection matrix.
  writer->WriteU64(dirty_projections_.rows().size());
  for (const uint64_t field : dirty_projections_.rows()) {
    writer->WriteU64(field);
    writer->WriteBytes(
        projections_.data() + proj_offset_[field],
        static_cast<size_t>(field_dims_[field]) * config_.dim *
            sizeof(float));
  }
  dirty_features_.Flush();
  dirty_projections_.Flush();
  Obs().RecordDelta(delta_rows, writer->size() - delta_start);
  return Status::OK();
}

Status MdeEmbedding::LoadDelta(io::Reader* reader) {
  uint32_t d = 0;
  uint64_t features = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU32(&d));
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&features));
  if (d != config_.dim || features != config_.total_features) {
    return Status::FailedPrecondition(
        "mde embedding: delta sizing does not match this store");
  }
  uint64_t feature_count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&feature_count));
  if (feature_count > config_.total_features) {
    return Status::FailedPrecondition("mde embedding: corrupt delta features");
  }
  for (uint64_t i = 0; i < feature_count; ++i) {
    uint64_t id = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&id));
    if (id >= config_.total_features) {
      return Status::FailedPrecondition(
          "mde embedding: delta feature out of range");
    }
    const size_t field = layout_.FieldOf(id);
    const uint64_t local = id - layout_.offset(field);
    const uint32_t df = field_dims_[field];
    CAFE_RETURN_IF_ERROR(reader->ReadBytes(
        tables_.data() + table_offset_[field] + local * df,
        df * sizeof(float)));
  }
  uint64_t field_count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&field_count));
  if (field_count > layout_.num_fields()) {
    return Status::FailedPrecondition(
        "mde embedding: corrupt delta projections");
  }
  for (uint64_t i = 0; i < field_count; ++i) {
    uint64_t field = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&field));
    if (field >= layout_.num_fields()) {
      return Status::FailedPrecondition(
          "mde embedding: delta field out of range");
    }
    CAFE_RETURN_IF_ERROR(reader->ReadBytes(
        projections_.data() + proj_offset_[field],
        static_cast<size_t>(field_dims_[field]) * config_.dim *
            sizeof(float)));
  }
  return Status::OK();
}

size_t MdeEmbedding::MemoryBytes() const {
  return (tables_.size() + projections_.size()) * sizeof(float);
}

}  // namespace cafe
