#ifndef CAFE_DATA_BATCH_H_
#define CAFE_DATA_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cafe {

/// A zero-copy view over a contiguous run of dataset samples. Categorical
/// ids are GLOBAL (field offsets already applied), matching CAFE's single
/// table across fields.
struct Batch {
  size_t batch_size = 0;
  size_t num_fields = 0;
  size_t num_numerical = 0;
  /// batch_size * num_fields ids, sample-major.
  const uint32_t* categorical = nullptr;
  /// batch_size * num_numerical values, sample-major (nullptr if none).
  const float* numerical = nullptr;
  /// batch_size labels in {0, 1}.
  const float* labels = nullptr;

  const uint32_t* sample_categorical(size_t b) const {
    return categorical + b * num_fields;
  }
  const float* sample_numerical(size_t b) const {
    return numerical + b * num_numerical;
  }
};

/// Field-major staging of a batch's categorical ids, widened to the 64-bit
/// id type of the EmbeddingStore batch API: field f's ids for all samples
/// are contiguous at field(f)[0..batch_size). This is the layout the
/// batched embedding path consumes — one LookupBatch/ApplyGradientBatch
/// call per field, over ids that collide (and therefore deduplicate) far
/// more within a field than across a whole sample-major batch. The backing
/// buffer is owned and reused across batches.
class FieldMajorIds {
 public:
  /// Transposes `batch`'s sample-major ids into field-major order. Always
  /// re-reads the batch: callers may legally refill one id buffer between
  /// batches, so no pointer-identity caching (the transpose is O(batch *
  /// fields) sequential work, noise next to the lookups it feeds).
  void BuildFrom(const Batch& batch) {
    batch_size_ = batch.batch_size;
    num_fields_ = batch.num_fields;
    ids_.resize(batch_size_ * num_fields_);
    for (size_t b = 0; b < batch_size_; ++b) {
      const uint32_t* cats = batch.sample_categorical(b);
      for (size_t f = 0; f < num_fields_; ++f) {
        ids_[f * batch_size_ + b] = cats[f];
      }
    }
  }

  size_t batch_size() const { return batch_size_; }
  size_t num_fields() const { return num_fields_; }

  /// Ids of `field` for every sample, batch_size entries.
  const uint64_t* field(size_t f) const {
    return ids_.data() + f * batch_size_;
  }

 private:
  size_t batch_size_ = 0;
  size_t num_fields_ = 0;
  std::vector<uint64_t> ids_;  // num_fields x batch_size, field-major
};

}  // namespace cafe

#endif  // CAFE_DATA_BATCH_H_
