#ifndef CAFE_DATA_BATCH_H_
#define CAFE_DATA_BATCH_H_

#include <cstddef>
#include <cstdint>

namespace cafe {

/// A zero-copy view over a contiguous run of dataset samples. Categorical
/// ids are GLOBAL (field offsets already applied), matching CAFE's single
/// table across fields.
struct Batch {
  size_t batch_size = 0;
  size_t num_fields = 0;
  size_t num_numerical = 0;
  /// batch_size * num_fields ids, sample-major.
  const uint32_t* categorical = nullptr;
  /// batch_size * num_numerical values, sample-major (nullptr if none).
  const float* numerical = nullptr;
  /// batch_size labels in {0, 1}.
  const float* labels = nullptr;

  const uint32_t* sample_categorical(size_t b) const {
    return categorical + b * num_fields;
  }
  const float* sample_numerical(size_t b) const {
    return numerical + b * num_numerical;
  }
};

}  // namespace cafe

#endif  // CAFE_DATA_BATCH_H_
