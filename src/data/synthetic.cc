#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/zipf.h"
#include "nn/activation.h"

namespace cafe {
namespace {

// Deterministic teacher weight for a global feature id: uniform in
// [-sqrt(3), sqrt(3)] (unit variance), derived purely from the hash so no
// per-feature storage is needed.
float TeacherWeight(uint64_t gid, uint64_t seed) {
  const double u =
      static_cast<double>(HashMix(gid, seed ^ 0x7eac4eULL) >> 11) * 0x1.0p-53;
  return static_cast<float>((2.0 * u - 1.0) * 1.7320508075688772);
}

// Latent dimension of the second-order teacher. The teacher is a
// factorization machine: every feature carries a hash-derived rank-4
// latent vector and field pairs contribute dot products. This keeps the
// planted interaction LOW-RANK, the structure dot-interaction models
// (DLRM) and cross networks (DCN) are built to capture — hash-random pair
// tables would be statistically unlearnable at embedding dims of 8-32.
constexpr uint32_t kTeacherRank = 4;

// Component j of feature gid's latent vector; uniform with variance 1/k so
// pair dots have unit-order variance.
float TeacherLatent(uint64_t gid, uint32_t j, uint64_t seed) {
  const double u = static_cast<double>(
                       HashMix(gid * kTeacherRank + j, seed ^ 0x1a7e7ULL) >>
                       11) *
                   0x1.0p-53;
  const double scale = std::sqrt(3.0 / kTeacherRank);
  return static_cast<float>((2.0 * u - 1.0) * scale);
}

}  // namespace

Status SyntheticDatasetConfig::Validate() const {
  if (field_cardinalities.empty()) {
    return Status::InvalidArgument("dataset needs at least one field");
  }
  for (uint64_t card : field_cardinalities) {
    if (card == 0) {
      return Status::InvalidArgument("field cardinality must be positive");
    }
  }
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (num_days == 0) {
    return Status::InvalidArgument("num_days must be positive");
  }
  if (zipf_z <= 0.0) {
    return Status::InvalidArgument("zipf_z must be positive");
  }
  if (drift_stride_fraction < 0.0 || drift_stride_fraction > 1.0) {
    return Status::InvalidArgument("drift_stride_fraction must be in [0,1]");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<SyntheticCtrDataset>> SyntheticCtrDataset::Generate(
    const SyntheticDatasetConfig& config) {
  CAFE_RETURN_IF_ERROR(config.Validate());

  auto ds = std::unique_ptr<SyntheticCtrDataset>(new SyntheticCtrDataset());
  ds->config_ = config;
  ds->layout_ = FieldLayout(config.field_cardinalities);

  const size_t num_fields = config.field_cardinalities.size();
  const size_t n = config.num_samples;
  ds->categorical_.resize(n * num_fields);
  ds->numerical_.resize(n * config.num_numerical);
  ds->labels_.resize(n);

  Rng rng(config.seed);

  // Per-field popularity machinery: a Zipf sampler over ranks and a base
  // rank->feature permutation (Fisher-Yates). Drift rotates rank indices.
  std::vector<ZipfDistribution> zipfs;
  std::vector<std::vector<uint32_t>> perms(num_fields);
  std::vector<uint64_t> strides(num_fields, 0);
  zipfs.reserve(num_fields);
  for (size_t f = 0; f < num_fields; ++f) {
    const uint64_t card = config.field_cardinalities[f];
    zipfs.emplace_back(card, config.zipf_z);
    perms[f].resize(card);
    for (uint64_t i = 0; i < card; ++i) {
      perms[f][i] = static_cast<uint32_t>(i);
    }
    for (uint64_t i = card; i > 1; --i) {
      std::swap(perms[f][i - 1], perms[f][rng.Uniform(i)]);
    }
    if (config.drift_stride_fraction > 0.0 && config.num_days > 1) {
      strides[f] = std::max<uint64_t>(
          1, static_cast<uint64_t>(config.drift_stride_fraction *
                                   static_cast<double>(card)));
    }
  }

  // Numerical-feature teacher weights (fixed, hash-derived).
  std::vector<float> num_weights(config.num_numerical);
  for (uint32_t j = 0; j < config.num_numerical; ++j) {
    num_weights[j] = TeacherWeight(j, config.seed ^ 0x21ULL);
  }
  // Field signal weights decay geometrically so fields differ in
  // predictiveness.
  std::vector<float> field_weight(num_fields);
  double weight_norm_sq = 0.0;
  for (size_t f = 0; f < num_fields; ++f) {
    field_weight[f] =
        static_cast<float>(std::pow(config.field_signal_decay, f));
    weight_norm_sq += field_weight[f] * field_weight[f];
  }
  for (uint32_t j = 0; j < config.num_numerical; ++j) {
    weight_norm_sq += 0.25;  // numerical features carry modest signal
  }
  // The FM pair-sum below is normalized to unit-order variance, so the
  // interaction block adds interaction_strength^2 to the signal energy.
  const size_t num_pairs = num_fields * (num_fields - 1) / 2;
  double pair_norm = 0.0;
  if (config.interaction_strength > 0.0 && num_pairs > 0) {
    weight_norm_sq +=
        config.interaction_strength * config.interaction_strength;
    // Var of one dot ~ 1/k; of the sum of P dots ~ P/k.
    pair_norm = std::sqrt(static_cast<double>(kTeacherRank) /
                          static_cast<double>(num_pairs));
  }
  const float signal_scale = static_cast<float>(
      config.teacher_scale / std::sqrt(std::max(weight_norm_sq, 1e-9)));

  // Day boundaries: equal split.
  ds->day_begin_.resize(config.num_days + 1);
  for (uint32_t t = 0; t <= config.num_days; ++t) {
    ds->day_begin_[t] = n * t / config.num_days;
  }

  for (uint32_t day = 0; day < config.num_days; ++day) {
    for (size_t s = ds->day_begin_[day]; s < ds->day_begin_[day + 1]; ++s) {
      float logit = static_cast<float>(config.teacher_bias);
      uint32_t* cats = ds->categorical_.data() + s * num_fields;
      for (size_t f = 0; f < num_fields; ++f) {
        const uint64_t card = config.field_cardinalities[f];
        uint64_t rank = zipfs[f].SampleIndex(rng);
        rank = (rank + strides[f] * day) % card;
        const uint32_t local = perms[f][rank];
        const uint64_t gid = ds->layout_.GlobalId(f, local);
        cats[f] = static_cast<uint32_t>(gid);
        logit += signal_scale * field_weight[f] *
                 TeacherWeight(gid, config.seed);
      }
      // Second-order FM term: sum over field pairs of latent dots,
      // computed via the square-of-sums identity in O(F * k):
      //   sum_{f<g} <t_f, t_g> = 0.5 * (||sum_f t_f||^2 - sum_f ||t_f||^2).
      if (config.interaction_strength > 0.0 && num_pairs > 0) {
        float sum_latent[kTeacherRank] = {0};
        float sum_sq = 0.0f;
        for (size_t f = 0; f < num_fields; ++f) {
          for (uint32_t j = 0; j < kTeacherRank; ++j) {
            const float t = TeacherLatent(cats[f], j, config.seed);
            sum_latent[j] += t;
            sum_sq += t * t;
          }
        }
        float pair_sum = 0.0f;
        for (uint32_t j = 0; j < kTeacherRank; ++j) {
          pair_sum += sum_latent[j] * sum_latent[j];
        }
        pair_sum = 0.5f * (pair_sum - sum_sq);
        logit += signal_scale *
                 static_cast<float>(config.interaction_strength * pair_norm) *
                 pair_sum;
      }
      float* nums = ds->numerical_.data() + s * config.num_numerical;
      for (uint32_t j = 0; j < config.num_numerical; ++j) {
        nums[j] = static_cast<float>(rng.Normal());
        logit += signal_scale * 0.5f * num_weights[j] * nums[j];
      }
      ds->labels_[s] = rng.Bernoulli(SigmoidScalar(logit)) ? 1.0f : 0.0f;
    }
  }
  return ds;
}

Batch SyntheticCtrDataset::GetBatch(size_t start, size_t size) const {
  CAFE_DCHECK(start + size <= num_samples());
  Batch batch;
  batch.batch_size = size;
  batch.num_fields = num_fields();
  batch.num_numerical = config_.num_numerical;
  batch.categorical = categorical_.data() + start * num_fields();
  batch.numerical = config_.num_numerical > 0
                        ? numerical_.data() + start * config_.num_numerical
                        : nullptr;
  batch.labels = labels_.data() + start;
  return batch;
}

uint64_t SyntheticCtrDataset::CountDistinctFeatures() const {
  std::unordered_set<uint32_t> seen(categorical_.begin(), categorical_.end());
  return seen.size();
}

std::vector<std::pair<uint64_t, uint64_t>>
SyntheticCtrDataset::FeatureFrequencies(size_t begin, size_t end) const {
  CAFE_CHECK(begin <= end && end <= num_samples());
  std::unordered_map<uint64_t, uint64_t> counts;
  const size_t fields = num_fields();
  for (size_t s = begin; s < end; ++s) {
    const uint32_t* cats = categorical_.data() + s * fields;
    for (size_t f = 0; f < fields; ++f) ++counts[cats[f]];
  }
  std::vector<std::pair<uint64_t, uint64_t>> result(counts.begin(),
                                                    counts.end());
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return result;
}

std::unique_ptr<SyntheticCtrDataset> SyntheticCtrDataset::SelectDays(
    const std::vector<uint32_t>& train_days) const {
  auto out = std::unique_ptr<SyntheticCtrDataset>(new SyntheticCtrDataset());
  out->config_ = config_;
  out->layout_ = layout_;

  std::vector<uint32_t> days(train_days);
  const uint32_t test_day = config_.num_days - 1;
  if (days.empty() || days.back() != test_day) days.push_back(test_day);

  const size_t fields = num_fields();
  out->day_begin_.push_back(0);
  for (uint32_t day : days) {
    CAFE_CHECK(day < config_.num_days) << "day out of range";
    const size_t begin = day_begin_[day];
    const size_t end = day_begin_[day + 1];
    out->categorical_.insert(out->categorical_.end(),
                             categorical_.begin() + begin * fields,
                             categorical_.begin() + end * fields);
    if (config_.num_numerical > 0) {
      out->numerical_.insert(
          out->numerical_.end(),
          numerical_.begin() + begin * config_.num_numerical,
          numerical_.begin() + end * config_.num_numerical);
    }
    out->labels_.insert(out->labels_.end(), labels_.begin() + begin,
                        labels_.begin() + end);
    out->day_begin_.push_back(out->labels_.size());
  }
  out->config_.num_days = static_cast<uint32_t>(days.size());
  out->config_.num_samples = out->labels_.size();
  return out;
}

void SyntheticCtrDataset::ShuffleSamples(uint64_t seed) {
  Rng rng(seed);
  const size_t fields = num_fields();
  const size_t n = num_samples();
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng.Uniform(i);
    const size_t a = i - 1;
    if (a == j) continue;
    for (size_t f = 0; f < fields; ++f) {
      std::swap(categorical_[a * fields + f], categorical_[j * fields + f]);
    }
    for (uint32_t k = 0; k < config_.num_numerical; ++k) {
      std::swap(numerical_[a * config_.num_numerical + k],
                numerical_[j * config_.num_numerical + k]);
    }
    std::swap(labels_[a], labels_[j]);
  }
  config_.num_days = 1;
  day_begin_ = {0, n};
}

}  // namespace cafe
