#ifndef CAFE_DATA_PRESETS_H_
#define CAFE_DATA_PRESETS_H_

#include <cstdint>
#include <vector>

#include "data/synthetic.h"

namespace cafe {

/// A synthetic analog of one of the paper's Table 2 datasets, scaled to
/// single-core bench budgets (see DESIGN.md §3 for the substitution
/// rationale; cardinalities follow the same few-huge-fields/many-small
/// shape as the originals, and skew/drift/dim relationships between the
/// four presets mirror the paper's).
///
/// Calibration note: the Zipf exponents here (1.25-1.3) are higher than
/// the paper's measured 1.05-1.1 because what the experiments actually
/// depend on is the TRAFFIC COVERAGE of the top-0.1%..1% of features, and
/// coverage at fixed z grows with catalog size. At 10^7-10^8 features and
/// z=1.05 the hot sets in the paper cover 30-50% of traffic; reproducing
/// that coverage at our 10^4-10^5-feature scale requires z around 1.25.
struct DatasetPreset {
  SyntheticDatasetConfig data;
  /// Embedding dimension the paper uses for this dataset (scaled: the paper
  /// uses 16/16/64/128 — we keep 16 for the small sets and 32 for the large
  /// ones so the dim-dependent feasibility effects remain visible).
  uint32_t embedding_dim = 16;
};

/// 10 fields, no numerical, 10 days, pronounced drift (paper Fig. 2 shows
/// Avazu's day distributions diverge most).
DatasetPreset AvazuLikePreset();

/// 12 categorical + 4 numerical fields, 7 days (field count scaled down
/// with the catalog so per-field signal density stays in the regime where
/// one online pass learns, as on the real data).
DatasetPreset CriteoLikePreset();

/// 8 fields, no temporal structure (shuffle after generation).
DatasetPreset Kdd12LikePreset();

/// 12 categorical + 4 numerical fields, 24 days,
/// the largest preset — the "extremely large-scale" analog.
DatasetPreset CriteoTbLikePreset();

/// Sample-count multiplier read from the CAFE_BENCH_SCALE environment
/// variable (default 1.0), letting users rerun every bench at larger scale
/// without recompiling.
double BenchScale();

/// Geometric cardinality profile: `num_fields` fields whose cardinalities
/// decay by `ratio` and sum to ~`total_features` (min 2 per field) — the
/// few-huge-fields shape of real CTR datasets.
std::vector<uint64_t> GeometricCardinalities(size_t num_fields,
                                             uint64_t total_features,
                                             double ratio);

}  // namespace cafe

#endif  // CAFE_DATA_PRESETS_H_
