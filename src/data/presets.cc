#include "data/presets.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace cafe {

double BenchScale() {
  const char* env = std::getenv("CAFE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

std::vector<uint64_t> GeometricCardinalities(size_t num_fields,
                                             uint64_t total_features,
                                             double ratio) {
  std::vector<double> weights(num_fields);
  double sum = 0.0;
  for (size_t f = 0; f < num_fields; ++f) {
    weights[f] = std::pow(ratio, static_cast<double>(f));
    sum += weights[f];
  }
  std::vector<uint64_t> cards(num_fields);
  for (size_t f = 0; f < num_fields; ++f) {
    cards[f] = std::max<uint64_t>(
        2, static_cast<uint64_t>(weights[f] / sum *
                                 static_cast<double>(total_features)));
  }
  return cards;
}

namespace {

uint64_t ScaledSamples(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * BenchScale());
}

}  // namespace

DatasetPreset AvazuLikePreset() {
  DatasetPreset preset;
  preset.data.name = "avazu-like";
  preset.data.field_cardinalities = GeometricCardinalities(10, 15000, 0.72);
  preset.data.num_numerical = 0;
  preset.data.num_samples = ScaledSamples(60000);
  preset.data.num_days = 10;
  preset.data.zipf_z = 1.25;
  preset.data.drift_stride_fraction = 0.005;  // strong day-to-day shift
  preset.data.seed = 0xa5a2aULL;
  preset.embedding_dim = 16;
  return preset;
}

DatasetPreset CriteoLikePreset() {
  DatasetPreset preset;
  preset.data.name = "criteo-like";
  preset.data.field_cardinalities = GeometricCardinalities(12, 20000, 0.65);
  preset.data.num_numerical = 4;
  preset.data.num_samples = ScaledSamples(90000);
  preset.data.num_days = 7;
  preset.data.zipf_z = 1.25;
  preset.data.drift_stride_fraction = 0.002;
  preset.data.seed = 0xc217e0ULL;
  preset.embedding_dim = 16;
  return preset;
}

DatasetPreset Kdd12LikePreset() {
  DatasetPreset preset;
  preset.data.name = "kdd12-like";
  preset.data.field_cardinalities = GeometricCardinalities(8, 20000, 0.62);
  preset.data.num_numerical = 0;
  preset.data.num_samples = ScaledSamples(70000);
  preset.data.num_days = 1;  // no temporal information in KDD12
  preset.data.zipf_z = 1.3;
  preset.data.drift_stride_fraction = 0.0;
  preset.data.seed = 0xadd12ULL;
  preset.embedding_dim = 32;
  return preset;
}

DatasetPreset CriteoTbLikePreset() {
  DatasetPreset preset;
  preset.data.name = "criteotb-like";
  preset.data.field_cardinalities = GeometricCardinalities(12, 60000, 0.65);
  preset.data.num_numerical = 4;
  preset.data.num_samples = ScaledSamples(80000);
  preset.data.num_days = 24;
  preset.data.zipf_z = 1.3;
  preset.data.drift_stride_fraction = 0.002;
  preset.data.seed = 0x7b7b7bULL;
  preset.embedding_dim = 32;
  return preset;
}

}  // namespace cafe
