#ifndef CAFE_DATA_STATS_H_
#define CAFE_DATA_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/synthetic.h"

namespace cafe {

/// KL divergence KL(P || Q) between two empirical categorical distributions
/// given as count maps, with epsilon smoothing over the union support (the
/// paper's Figure 2 heatmap measure; KL is asymmetric).
double KlDivergence(const std::unordered_map<uint64_t, uint64_t>& p_counts,
                    const std::unordered_map<uint64_t, uint64_t>& q_counts);

/// Per-day feature-occurrence counts of a dataset.
std::vector<std::unordered_map<uint64_t, uint64_t>> DayFeatureCounts(
    const SyntheticCtrDataset& dataset);

/// Full day-by-day KL matrix (entry [i][j] = KL(day_i || day_j)),
/// reproducing Figure 2 as numbers.
std::vector<std::vector<double>> DayKlMatrix(
    const SyntheticCtrDataset& dataset);

}  // namespace cafe

#endif  // CAFE_DATA_STATS_H_
