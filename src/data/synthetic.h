#ifndef CAFE_DATA_SYNTHETIC_H_
#define CAFE_DATA_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/batch.h"
#include "embed/embedding_store.h"

namespace cafe {

/// Configuration of the synthetic CTR workload generator — the stand-in for
/// Criteo / CriteoTB / Avazu / KDD12 (see DESIGN.md §3 for the substitution
/// argument). The generator plants the three properties the paper's
/// phenomena depend on:
///
///  1. *Skewed popularity*: within each field, feature occurrence follows
///     Zipf(zipf_z) (paper Fig. 3 measures z ≈ 1.05–1.1 on Criteo/TB).
///  2. *Temporal drift*: samples are organized into days; each day the
///     rank→feature mapping rotates by `drift_stride_fraction` of the hot
///     set, so day distributions diverge with day distance (paper Fig. 2).
///  3. *Learnable feature semantics*: labels come from a planted logistic
///     teacher whose per-feature weights are hash-derived, so a model only
///     reaches the Bayes AUC by giving frequent features faithful
///     embeddings — exactly the capability embedding compression trades.
struct SyntheticDatasetConfig {
  std::string name = "synthetic";
  std::vector<uint64_t> field_cardinalities;
  uint32_t num_numerical = 0;
  uint64_t num_samples = 100000;
  uint32_t num_days = 7;
  double zipf_z = 1.05;
  /// Per-day rotation of the popularity mapping, as a fraction of each
  /// field's cardinality. 0 disables drift (KDD12-like).
  double drift_stride_fraction = 0.002;
  /// Teacher logit scale: larger -> more signal, higher Bayes AUC.
  double teacher_scale = 1.6;
  /// Relative strength of second-order (feature-pair) teacher terms. Real
  /// CTR signal mixes first- and second-order effects; interaction models
  /// (DLRM's dot interaction, DCN's cross layers) need the second-order
  /// component to shine, exactly as on the real datasets.
  double interaction_strength = 0.7;
  /// Intercept of the teacher (controls base CTR; ~ -1.1 gives ~25%).
  double teacher_bias = -1.1;
  /// Per-field weight of the teacher signal decays with field index by
  /// this factor, so fields differ in predictiveness (as in real CTR data).
  double field_signal_decay = 0.9;
  uint64_t seed = 7;

  Status Validate() const;
};

/// A fully materialized synthetic CTR dataset: day-ordered samples with
/// global categorical ids, optional numerical features, and labels. The
/// paper's protocol (§5.1.4) — train on all days but the last, test on the
/// last day — is exposed via train_size().
class SyntheticCtrDataset {
 public:
  static StatusOr<std::unique_ptr<SyntheticCtrDataset>> Generate(
      const SyntheticDatasetConfig& config);

  const SyntheticDatasetConfig& config() const { return config_; }
  const FieldLayout& layout() const { return layout_; }

  size_t num_samples() const { return labels_.size(); }
  size_t num_fields() const { return layout_.num_fields(); }
  uint32_t num_days() const { return config_.num_days; }

  /// First sample index of `day`; samples are contiguous per day.
  size_t day_begin(uint32_t day) const { return day_begin_[day]; }
  size_t day_end(uint32_t day) const { return day_begin_[day + 1]; }

  /// Samples before the last day (the training split).
  size_t train_size() const {
    return config_.num_days > 1 ? day_begin_[config_.num_days - 1]
                                : num_samples() * 9 / 10;
  }

  /// View of samples [start, start+size).
  Batch GetBatch(size_t start, size_t size) const;

  /// Number of distinct feature ids that actually occur (Table 2's
  /// "#Features" column counts observed features).
  uint64_t CountDistinctFeatures() const;

  /// Exact occurrence counts of every feature in samples [begin, end) —
  /// ground truth for sketch evaluation and the offline-separation oracle.
  std::vector<std::pair<uint64_t, uint64_t>> FeatureFrequencies(
      size_t begin, size_t end) const;

  /// Builds a copy of this dataset that keeps only the listed training days
  /// (plus the final test day) — the paper's CriteoTB-1/3 protocol (§5.5).
  std::unique_ptr<SyntheticCtrDataset> SelectDays(
      const std::vector<uint32_t>& train_days) const;

  /// Globally shuffles samples (KDD12 has no temporal structure; §5.1.4).
  void ShuffleSamples(uint64_t seed);

  const std::vector<float>& labels() const { return labels_; }

 private:
  SyntheticCtrDataset() = default;

  SyntheticDatasetConfig config_;
  FieldLayout layout_;
  std::vector<uint32_t> categorical_;  // num_samples * num_fields
  std::vector<float> numerical_;       // num_samples * num_numerical
  std::vector<float> labels_;          // num_samples
  std::vector<size_t> day_begin_;      // num_days + 1 entries
};

}  // namespace cafe

#endif  // CAFE_DATA_SYNTHETIC_H_
