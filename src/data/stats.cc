#include "data/stats.h"

#include <cmath>

#include "common/logging.h"

namespace cafe {

double KlDivergence(const std::unordered_map<uint64_t, uint64_t>& p_counts,
                    const std::unordered_map<uint64_t, uint64_t>& q_counts) {
  // Union support with epsilon smoothing so KL stays finite when a feature
  // appears on one day only (common under drift).
  std::unordered_map<uint64_t, uint64_t> support(p_counts);
  for (const auto& [key, count] : q_counts) support.try_emplace(key, 0);

  double p_total = 0.0, q_total = 0.0;
  for (const auto& [key, count] : p_counts) p_total += count;
  for (const auto& [key, count] : q_counts) q_total += count;
  CAFE_CHECK(p_total > 0 && q_total > 0) << "empty distribution";

  const double eps = 0.5;  // Jeffreys-style half-count smoothing
  const double support_size = static_cast<double>(support.size());
  const double p_denom = p_total + eps * support_size;
  const double q_denom = q_total + eps * support_size;

  double kl = 0.0;
  for (const auto& [key, unused] : support) {
    auto p_it = p_counts.find(key);
    auto q_it = q_counts.find(key);
    const double p = ((p_it != p_counts.end() ? p_it->second : 0) + eps) /
                     p_denom;
    const double q = ((q_it != q_counts.end() ? q_it->second : 0) + eps) /
                     q_denom;
    kl += p * std::log(p / q);
  }
  return kl;
}

std::vector<std::unordered_map<uint64_t, uint64_t>> DayFeatureCounts(
    const SyntheticCtrDataset& dataset) {
  std::vector<std::unordered_map<uint64_t, uint64_t>> counts(
      dataset.num_days());
  for (uint32_t day = 0; day < dataset.num_days(); ++day) {
    for (const auto& [feature, count] : dataset.FeatureFrequencies(
             dataset.day_begin(day), dataset.day_end(day))) {
      counts[day][feature] = count;
    }
  }
  return counts;
}

std::vector<std::vector<double>> DayKlMatrix(
    const SyntheticCtrDataset& dataset) {
  const auto counts = DayFeatureCounts(dataset);
  const size_t days = counts.size();
  std::vector<std::vector<double>> matrix(days,
                                          std::vector<double>(days, 0.0));
  for (size_t i = 0; i < days; ++i) {
    for (size_t j = 0; j < days; ++j) {
      if (i != j) matrix[i][j] = KlDivergence(counts[i], counts[j]);
    }
  }
  return matrix;
}

}  // namespace cafe
