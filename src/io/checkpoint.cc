#include "io/checkpoint.h"

#include <cstring>
#include <utility>
#include <vector>

#include "io/serialize.h"

namespace cafe {
namespace io {
namespace {

constexpr char kMagic[8] = {'C', 'A', 'F', 'E', 'C', 'K', 'P', 'T'};
constexpr uint8_t kHasStore = 1u << 0;
constexpr uint8_t kHasModel = 1u << 1;

/// A dense block as (data, float count) — the one shape both the live-model
/// and captured-state paths can supply.
using DenseBlockView = std::pair<const float*, uint64_t>;

/// THE model-section layout (mirrored by RestoreModelSection): name, block
/// count, per-block size + bytes, optimizer flag + raw optimizer state.
/// Both writers go through here so the live-model and snapshot-state
/// checkpoints cannot drift apart byte-wise.
void AppendModelSectionFromViews(Writer* writer, const std::string& name,
                                 const std::vector<DenseBlockView>& blocks,
                                 bool has_optimizer,
                                 const std::string& optimizer_state) {
  Writer section;
  section.WriteString(name);
  section.WriteU64(blocks.size());
  for (const DenseBlockView& block : blocks) {
    section.WriteU64(block.second);
    section.WriteBytes(block.first, block.second * sizeof(float));
  }
  section.WriteBool(has_optimizer);
  if (has_optimizer) {
    section.WriteBytes(optimizer_state.data(), optimizer_state.size());
  }
  writer->WriteU64(section.size());
  writer->WriteBytes(section.buffer().data(), section.size());
}

Status AppendModelSection(RecModel* model, Writer* writer) {
  std::vector<Param> params;
  model->CollectDenseParams(&params);
  std::vector<DenseBlockView> blocks;
  blocks.reserve(params.size());
  for (const Param& p : params) {
    blocks.emplace_back(p.value, p.size);
  }
  Optimizer* optimizer = model->optimizer();
  std::string optimizer_state;
  if (optimizer != nullptr) {
    Writer optimizer_writer;
    CAFE_RETURN_IF_ERROR(optimizer->SaveState(&optimizer_writer));
    optimizer_state = optimizer_writer.Release();
  }
  AppendModelSectionFromViews(writer, model->Name(), blocks,
                              optimizer != nullptr, optimizer_state);
  return Status::OK();
}

Status RestoreModelSection(Reader* reader, RecModel* model,
                           uint32_t version) {
  std::string name;
  CAFE_RETURN_IF_ERROR(reader->ReadString(&name));
  if (name != model->Name()) {
    return Status::FailedPrecondition("checkpoint holds model '" + name +
                                      "' but the target is '" +
                                      model->Name() + "'");
  }
  std::vector<Param> params;
  model->CollectDenseParams(&params);
  uint64_t block_count = 0;
  CAFE_RETURN_IF_ERROR(reader->ReadU64(&block_count));
  if (block_count != params.size()) {
    return Status::FailedPrecondition(
        "checkpoint dense-parameter block count does not match the model");
  }
  for (Param& p : params) {
    uint64_t size = 0;
    CAFE_RETURN_IF_ERROR(reader->ReadU64(&size));
    if (size != p.size) {
      return Status::FailedPrecondition(
          "checkpoint dense-parameter block shape does not match the model");
    }
    CAFE_RETURN_IF_ERROR(reader->ReadBytes(p.value, size * sizeof(float)));
  }
  if (version < 2) {
    // v1 model sections end after the weight blocks: the optimizer keeps
    // its fresh state (the documented pre-v2 resume semantics).
    return Status::OK();
  }
  bool has_optimizer = false;
  CAFE_RETURN_IF_ERROR(reader->ReadBool(&has_optimizer));
  if (has_optimizer) {
    if (model->optimizer() == nullptr) {
      return Status::FailedPrecondition(
          "checkpoint carries optimizer state but the target model has no "
          "optimizer");
    }
    CAFE_RETURN_IF_ERROR(model->optimizer()->LoadState(reader));
  }
  return Status::OK();
}

void WriteContainerHeader(Writer* writer, bool has_model) {
  writer->WriteBytes(kMagic, sizeof(kMagic));
  writer->WriteU32(kCheckpointVersion);
  uint8_t flags = kHasStore;
  if (has_model) flags |= kHasModel;
  writer->WriteU8(flags);
}

Status SealAndWrite(const std::string& path, Writer* writer) {
  writer->WriteU64(Fingerprint(writer->buffer().data(), writer->size()));
  return WriteFileAtomic(path, writer->buffer());
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const EmbeddingStore& store,
                      RecModel* model) {
  Writer writer;
  WriteContainerHeader(&writer, model != nullptr);

  Writer store_section;
  store_section.WriteString(store.Name());
  CAFE_RETURN_IF_ERROR(store.SaveState(&store_section));
  writer.WriteU64(store_section.size());
  writer.WriteBytes(store_section.buffer().data(), store_section.size());

  if (model != nullptr) {
    CAFE_RETURN_IF_ERROR(AppendModelSection(model, &writer));
  }
  return SealAndWrite(path, &writer);
}

Status SaveCheckpointFromState(const std::string& path,
                               const std::string& store_name,
                               const std::string& store_state,
                               const CheckpointModelState* model) {
  if (model != nullptr &&
      (model->dense_blocks == nullptr ||
       (model->has_optimizer && model->optimizer_state == nullptr))) {
    return Status::InvalidArgument(
        "checkpoint model state is missing dense blocks or optimizer bytes");
  }
  Writer writer;
  WriteContainerHeader(&writer, model != nullptr);

  // Store section: identical bytes to SaveCheckpoint's (name + SaveState).
  Writer store_section;
  store_section.WriteString(store_name);
  store_section.WriteBytes(store_state.data(), store_state.size());
  writer.WriteU64(store_section.size());
  writer.WriteBytes(store_section.buffer().data(), store_section.size());

  if (model != nullptr) {
    std::vector<DenseBlockView> blocks;
    blocks.reserve(model->dense_blocks->size());
    for (const std::vector<float>& block : *model->dense_blocks) {
      blocks.emplace_back(block.data(), block.size());
    }
    AppendModelSectionFromViews(
        &writer, model->model_name, blocks, model->has_optimizer,
        model->has_optimizer ? *model->optimizer_state : std::string());
  }
  return SealAndWrite(path, &writer);
}

Status LoadCheckpoint(const std::string& path, EmbeddingStore* store,
                      RecModel* model) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  std::string data = std::move(bytes).value();
  if (data.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint8_t) +
                        sizeof(uint64_t)) {
    return Status::OutOfRange("checkpoint file truncated: " + path);
  }

  // Verify the trailing fingerprint before touching any live state.
  uint64_t stored_fingerprint = 0;
  std::memcpy(&stored_fingerprint, data.data() + data.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fingerprint(data.data(), data.size() - sizeof(uint64_t)) !=
      stored_fingerprint) {
    return Status::InvalidArgument("checkpoint fingerprint mismatch (file "
                                   "corrupted or truncated): " +
                                   path);
  }

  // Chop the fingerprint off in place and move the payload into the reader
  // — a checkpoint can be GBs, so never hold a second copy.
  data.resize(data.size() - sizeof(uint64_t));
  Reader reader(std::move(data));
  char magic[sizeof(kMagic)];
  CAFE_RETURN_IF_ERROR(reader.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a CAFE checkpoint: " + path);
  }
  uint32_t version = 0;
  CAFE_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version < kMinReadableCheckpointVersion ||
      version > kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (this build reads versions " +
        std::to_string(kMinReadableCheckpointVersion) + ".." +
        std::to_string(kCheckpointVersion) + ")");
  }
  uint8_t flags = 0;
  CAFE_RETURN_IF_ERROR(reader.ReadU8(&flags));

  if ((flags & kHasStore) != 0) {
    uint64_t section_size = 0;
    CAFE_RETURN_IF_ERROR(reader.ReadU64(&section_size));
    if (store == nullptr) {
      CAFE_RETURN_IF_ERROR(reader.Skip(section_size));
    } else {
      const size_t section_start = reader.position();
      std::string name;
      CAFE_RETURN_IF_ERROR(reader.ReadString(&name));
      if (name != store->Name()) {
        return Status::FailedPrecondition("checkpoint holds store '" + name +
                                          "' but the target is '" +
                                          store->Name() + "'");
      }
      CAFE_RETURN_IF_ERROR(store->LoadState(&reader));
      if (reader.position() - section_start != section_size) {
        return Status::InvalidArgument(
            "checkpoint store section size mismatch");
      }
    }
  } else if (store != nullptr) {
    return Status::NotFound("checkpoint has no store section: " + path);
  }

  if (model != nullptr) {
    if ((flags & kHasModel) == 0) {
      return Status::NotFound("checkpoint has no model section: " + path);
    }
    uint64_t section_size = 0;
    CAFE_RETURN_IF_ERROR(reader.ReadU64(&section_size));
    const size_t section_start = reader.position();
    CAFE_RETURN_IF_ERROR(RestoreModelSection(&reader, model, version));
    if (reader.position() - section_start != section_size) {
      return Status::InvalidArgument("checkpoint model section size mismatch");
    }
  }
  return Status::OK();
}

}  // namespace io
}  // namespace cafe
