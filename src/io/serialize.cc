#include "io/serialize.h"

#include <cerrno>
#include <cstdio>

#ifdef __unix__
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cafe {
namespace io {
namespace {

/// Forces `f`'s written data to stable storage, then (POSIX) syncs the
/// directory holding `path` after a rename — without both, a crash can
/// make the rename durable before the data blocks, replacing the previous
/// good file with a torn one.
bool SyncFile(std::FILE* f) {
#ifdef __unix__
  return fsync(fileno(f)) == 0;
#else
  (void)f;
  return true;
#endif
}

void SyncParentDirectory(const std::string& path) {
#ifdef __unix__
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    fsync(fd);
    close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

uint64_t Fingerprint(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool synced = flushed && SyncFile(f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !synced || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  SyncParentDirectory(path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string bytes;
  char chunk[1 << 16];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("read error on " + path);
  }
  return bytes;
}

Status EnsureDirectory(const std::string& path) {
#ifdef __unix__
  if (mkdir(path.c_str(), 0755) == 0) return Status::OK();
  struct stat st;
  if (stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return Status::OK();
  }
  return Status::Internal("cannot create directory " + path);
#else
  return Status::Unimplemented("EnsureDirectory: " + path);
#endif
}

StatusOr<std::vector<std::string>> ListDirectory(const std::string& path) {
#ifdef __unix__
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    return Status::NotFound("cannot open directory " + path);
  }
  std::vector<std::string> names;
  while (struct dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    const std::string full = path + "/" + name;
    if (stat(full.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    names.push_back(name);
  }
  closedir(dir);
  return names;
#else
  return Status::Unimplemented("ListDirectory: " + path);
#endif
}

Status RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) == 0) return Status::OK();
#ifdef __unix__
  if (errno == ENOENT) return Status::OK();
#endif
  // Distinguish "already gone" from a real failure portably: if the file
  // can no longer be opened, the caller's goal is met.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();
  std::fclose(f);
  return Status::Internal("cannot remove " + path);
}

}  // namespace io
}  // namespace cafe
