#ifndef CAFE_IO_CHECKPOINT_H_
#define CAFE_IO_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "embed/embedding_store.h"
#include "models/model.h"

namespace cafe {
namespace io {

/// Versioned on-disk checkpoint container:
///
///   magic "CAFECKPT" | u32 version | u8 flags        (header)
///   [store section]  store Name() + SaveState payload (if flag bit 0)
///   [model section]  model Name() + dense param blocks
///                    + optimizer adaptive state       (if flag bit 1)
///   u64 FNV-1a fingerprint over everything above      (trailer)
///
/// The container stores STATE, not configuration: loading requires a store
/// (and model) freshly constructed from the same configuration that
/// produced the checkpoint — the same contract as the factories. Name and
/// shape guards reject a checkpoint applied to the wrong scheme or sizing;
/// the trailing fingerprint rejects corruption and truncation before any
/// state is installed.
///
/// Version history: 1 = store + dense weights; 2 adds the optimizer's
/// adaptive state (Adagrad/Adam accumulators, Adam step counter) to the
/// model section. Writers emit kCheckpointVersion; readers accept
/// [kMinReadableCheckpointVersion, kCheckpointVersion] — a v1 file
/// restores with the pre-v2 semantics (dense weights exact, adaptive step
/// sizes reset).
constexpr uint32_t kCheckpointVersion = 2;
constexpr uint32_t kMinReadableCheckpointVersion = 1;

/// Serializes `store` (and, when non-null, `model`'s dense parameters plus
/// its optimizer's adaptive state) to `path` atomically (temp file +
/// rename).
///
/// Both sections are complete: a restored store continues training
/// bit-identically, and a restored model resumes dense training
/// bit-identically too (weights AND Adagrad/Adam accumulator state; the
/// checkpoint_test resume-parity suite asserts checkpoint/restore/continue
/// equals uninterrupted training exactly).
Status SaveCheckpoint(const std::string& path, const EmbeddingStore& store,
                      RecModel* model = nullptr);

/// Restores a checkpoint written by SaveCheckpoint into a freshly
/// constructed `store` / `model`. Pass model == nullptr to skip a model
/// section (or load a store-only checkpoint); pass store == nullptr to
/// restore only the model's dense weights. On error the targets must be
/// considered partially restored — rebuild them before retrying.
Status LoadCheckpoint(const std::string& path, EmbeddingStore* store,
                      RecModel* model = nullptr);

/// Model-section contents captured out-of-band — a boundary-consistent
/// ServingSnapshot rather than a live RecModel. Every view must stay valid
/// for the duration of the SaveCheckpointFromState call.
struct CheckpointModelState {
  std::string model_name;
  /// Dense blocks in CollectDenseParams order (required, may be empty).
  const std::vector<std::vector<float>>* dense_blocks = nullptr;
  /// Optimizer::SaveState bytes; ignored unless has_optimizer.
  bool has_optimizer = false;
  const std::string* optimizer_state = nullptr;
};

/// Writes the SAME v2 container as SaveCheckpoint, but from already
/// serialized state: `store_state` is the store's SaveState payload and
/// `model` (optional) the dense/optimizer state captured with it. This is
/// how a ServingSnapshot cut with capture_optimizer becomes a full
/// training-resume checkpoint (serve/snapshot_checkpoint.h) — the online
/// and offline checkpoint paths produce interchangeable files, readable by
/// LoadCheckpoint.
Status SaveCheckpointFromState(const std::string& path,
                               const std::string& store_name,
                               const std::string& store_state,
                               const CheckpointModelState* model);

}  // namespace io
}  // namespace cafe

#endif  // CAFE_IO_CHECKPOINT_H_
