#ifndef CAFE_IO_SERIALIZE_H_
#define CAFE_IO_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace cafe {
namespace io {

/// 64-bit FNV-1a over a byte range. Checkpoint files append this over the
/// whole payload so bit rot / truncation is detected before any state is
/// installed into a live store.
uint64_t Fingerprint(const void* data, size_t size);

/// Append-only binary encoder. Everything is little-endian fixed-width (the
/// only platforms this library targets); floats are written by bit pattern,
/// so a round trip is bit-identical including NaN payloads and -0.0f.
///
/// The format is driven by the reader: every ReadX must mirror the WriteX
/// sequence exactly. Vectors are length-prefixed so readers can validate
/// sizes against the live object before copying anything.
class Writer {
 public:
  void WriteBytes(const void* data, size_t size) {
    const char* p = static_cast<const char*>(data);
    buffer_.append(p, size);
  }

  void WriteU8(uint8_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
  void WriteF32(float v) { WriteBytes(&v, sizeof(v)); }
  void WriteF64(double v) { WriteBytes(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteBytes(s.data(), s.size());
  }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WriteVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "WriteVec needs a POD element type");
    WriteU64(v.size());
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

  /// Moves the encoded bytes out (the writer is empty afterwards). The
  /// online snapshot path uses this to hand the trainer's serialize buffer
  /// to the rebuild thread without a copy.
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Sequential decoder over an owned byte buffer (or a borrowed view).
/// Every accessor checks bounds and returns OutOfRange on truncation
/// instead of reading past the end, so a corrupted file fails with a clean
/// Status.
class Reader {
 public:
  explicit Reader(std::string bytes)
      : owned_(std::move(bytes)), bytes_(&owned_) {}

  /// Non-owning view: `*borrowed` must outlive the reader and stay
  /// unmodified while it reads. The snapshot publish path uses this to
  /// replay ONE delta payload into both ping-pong buffers without copying
  /// the bytes per application.
  explicit Reader(const std::string* borrowed) : bytes_(borrowed) {}

  // Not copyable or movable: an owning reader's cursor points into its own
  // owned_ buffer, so the compiler-generated copies would leave the new
  // object reading the OLD object's storage. Readers are consumed in place.
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  Status ReadBytes(void* out, size_t size) {
    // All bounds checks in this class compare against the REMAINING byte
    // count, never `pos_ + size` — a crafted length prefix near 2^64 would
    // wrap that sum and defeat the check.
    if (size > remaining()) {
      return Status::OutOfRange("serialized data truncated");
    }
    std::memcpy(out, bytes_->data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  Status ReadU8(uint8_t* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadI32(int32_t* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadF32(float* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadF64(double* v) { return ReadBytes(v, sizeof(*v)); }
  Status ReadBool(bool* v) {
    uint8_t byte = 0;
    CAFE_RETURN_IF_ERROR(ReadU8(&byte));
    *v = byte != 0;
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    uint64_t size = 0;
    CAFE_RETURN_IF_ERROR(ReadU64(&size));
    if (size > remaining()) {
      return Status::OutOfRange("serialized string truncated");
    }
    s->assign(bytes_->data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  template <typename T>
  Status ReadVec(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "ReadVec needs a POD element type");
    uint64_t count = 0;
    CAFE_RETURN_IF_ERROR(ReadU64(&count));
    // Divide instead of multiplying: count * sizeof(T) could wrap and both
    // slip past the bound and feed resize() an absurd length.
    if (count > remaining() / sizeof(T)) {
      return Status::OutOfRange("serialized vector truncated");
    }
    v->resize(count);
    return ReadBytes(v->data(), count * sizeof(T));
  }

  /// Like ReadVec, but fails unless the stored length equals `expected` —
  /// the shape guard every store uses so a checkpoint from a differently
  /// sized store cannot silently resize live tables.
  template <typename T>
  Status ReadVecExpected(std::vector<T>* v, size_t expected,
                         const char* what) {
    uint64_t count = 0;
    CAFE_RETURN_IF_ERROR(ReadU64(&count));
    if (count != expected) {
      return Status::FailedPrecondition(
          std::string("checkpoint shape mismatch for ") + what);
    }
    if (count > remaining() / sizeof(T)) {
      return Status::OutOfRange("serialized vector truncated");
    }
    v->resize(count);
    return ReadBytes(v->data(), count * sizeof(T));
  }

  /// Advances past `size` bytes without reading them (section skipping).
  Status Skip(size_t size) {
    if (size > remaining()) {
      return Status::OutOfRange("serialized data truncated");
    }
    pos_ += size;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return bytes_->size() - pos_; }
  const std::string& bytes() const { return *bytes_; }

 private:
  std::string owned_;           // empty when borrowing
  const std::string* bytes_;    // -> owned_, or the borrowed buffer
  size_t pos_ = 0;
};

/// Writes `bytes` to `path` through a same-directory temp file + rename, so
/// a crash mid-write can never leave a half-written checkpoint at `path`.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Reads the whole file at `path`. NotFound / Internal on failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Creates `path` (one level; the parent must exist). OK if it already
/// exists as a directory.
Status EnsureDirectory(const std::string& path);

/// Lists the plain-file names (not paths, no subdirectories) in `path`,
/// unsorted. NotFound if the directory cannot be opened.
StatusOr<std::vector<std::string>> ListDirectory(const std::string& path);

/// Removes the file at `path`. OK if it does not exist.
Status RemoveFile(const std::string& path);

}  // namespace io
}  // namespace cafe

#endif  // CAFE_IO_SERIALIZE_H_
