#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite, then smoke-run
# the microbenches and validate their machine-readable BENCH_*.json output
# (the cross-PR perf trajectory record) — a missing or malformed file fails
# the check.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Online-pipeline smoke with full telemetry: live stats endpoint, JSONL
# timeline, final registry snapshot. The scrape loop polls the endpoint
# WHILE the pipeline trains and must see a trainer counter and a server
# counter in the Prometheus text — proving the whole instrumented stack is
# observable mid-run, not just at exit.
OBS_PORT=19757
"$BUILD_DIR"/example_online_rollout \
  --stats-port "$OBS_PORT" \
  --timeline "$BUILD_DIR/pipeline_timeline.jsonl" \
  --metrics-json "$BUILD_DIR/pipeline_metrics.json" &
ROLLOUT_PID=$!
SCRAPE=""
for _ in $(seq 1 200); do
  if SCRAPE="$( (exec 3<>/dev/tcp/127.0.0.1/$OBS_PORT &&
                 printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' >&3 &&
                 cat <&3) 2>/dev/null )" \
     && grep -q "cafe_train_steps_total" <<< "$SCRAPE"; then
    break
  fi
  SCRAPE=""
  sleep 0.02
done
wait "$ROLLOUT_PID"
grep -q "cafe_train_steps_total"    <<< "$SCRAPE" || { echo "FAIL: live scrape missing cafe_train_steps_total" >&2; exit 1; }
grep -q "cafe_serve_requests_total" <<< "$SCRAPE" || { echo "FAIL: live scrape missing cafe_serve_requests_total" >&2; exit 1; }
echo "ok: live scrape saw trainer + server metrics on :$OBS_PORT"
scripts/validate_bench_json.sh \
  "$BUILD_DIR/pipeline_timeline.jsonl:t_us,step,generation,loss_ema,queue_depth,shed_rate,requests_total" \
  "$BUILD_DIR/pipeline_metrics.json:train.steps_total,snapshot.publish_us,serve.shed_rate"

# Bench smokes with machine-readable results.
"$BUILD_DIR"/bench_lookup_batch --smoke --json "$BUILD_DIR/BENCH_lookup_batch.json"
"$BUILD_DIR"/bench_backward     --smoke --json "$BUILD_DIR/BENCH_backward.json"
"$BUILD_DIR"/bench_serving      --smoke --json "$BUILD_DIR/BENCH_serving.json"
"$BUILD_DIR"/bench_hot_swap     --smoke --json "$BUILD_DIR/BENCH_hot_swap.json"
"$BUILD_DIR"/bench_replication  --smoke --json "$BUILD_DIR/BENCH_replication.json"

# backward pins the parallel-scatter contract (the threads -> updates/sec
# scaling series from the sharded backward sweep); hot_swap additionally
# pins the O(dirty)-publish contract: the double-buffered rollout must keep
# reporting its copy/apply/publish split and the per-dirty-fraction
# publish-scaling series; replication pins the same contract OVER THE WIRE
# (replica publish lag must keep tracking the streamed delta bytes).
scripts/validate_bench_json.sh \
  "$BUILD_DIR/BENCH_lookup_batch.json:simd_kernel,robe,prefetch_sweep,best_prefetch_distance" \
  "$BUILD_DIR/BENCH_backward.json:backward_scaling,threads,updates_per_sec,speedup_vs_serial,obs_enabled,simd_kernel,robe" \
  "$BUILD_DIR/BENCH_serving.json:serving,qps,p99_us,obs_enabled" \
  "$BUILD_DIR/BENCH_hot_swap.json:last_publish_us,last_apply_bytes,retired_buffers,publish_scaling,dirty_fraction,full_publish_us" \
  "$BUILD_DIR/BENCH_replication.json:replication,dirty_fraction,delta_bytes,replica_lag_us,rejoin_delta_us,rejoin_base_us"

# Instrumentation must stay within its overhead budget vs the no-op shim
# build (also merges the comparison into BENCH_backward.json).
scripts/obs_overhead.sh "$BUILD_DIR" "$BUILD_DIR-noobs"
