#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite, then smoke-run
# the microbenches and validate their machine-readable BENCH_*.json output
# (the cross-PR perf trajectory record) — a missing or malformed file fails
# the check.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Bench smokes with machine-readable results.
"$BUILD_DIR"/bench_lookup_batch --smoke --json "$BUILD_DIR/BENCH_lookup_batch.json"
"$BUILD_DIR"/bench_backward     --smoke --json "$BUILD_DIR/BENCH_backward.json"
"$BUILD_DIR"/bench_serving      --smoke
"$BUILD_DIR"/bench_hot_swap     --smoke --json "$BUILD_DIR/BENCH_hot_swap.json"

# backward pins the parallel-scatter contract (the threads -> updates/sec
# scaling series from the sharded backward sweep); hot_swap additionally
# pins the O(dirty)-publish contract: the double-buffered rollout must keep
# reporting its copy/apply/publish split and the per-dirty-fraction
# publish-scaling series.
scripts/validate_bench_json.sh \
  "$BUILD_DIR/BENCH_lookup_batch.json" \
  "$BUILD_DIR/BENCH_backward.json:backward_scaling,threads,updates_per_sec,speedup_vs_serial" \
  "$BUILD_DIR/BENCH_hot_swap.json:last_publish_us,last_apply_bytes,retired_buffers,publish_scaling,dirty_fraction,full_publish_us"
