#!/usr/bin/env bash
# Validates machine-readable bench result files: each argument must exist,
# be non-empty, and parse as JSON (python3 when available, an object-shape
# sniff otherwise). An argument may carry a required-key suffix,
#   <file.json>[:key1,key2,...]
# in which case every listed key must appear somewhere in the document
# (python3: recursive key walk; fallback: quoted-string grep) — this is how
# check.sh/CI pin the bench output contract (e.g. the O(dirty) publish
# fields) so a refactor cannot silently drop a measured series.
#
# Files ending in .jsonl are validated line-by-line instead: every line must
# parse as a JSON object, and the required keys must appear in EVERY line —
# the contract for the online pipeline's telemetry timeline.
#
# Shared by scripts/check.sh and CI so the validation contract has exactly
# one definition.
# Usage: scripts/validate_bench_json.sh <file.json[l]>[:k1,k2] ...
set -euo pipefail

if [[ $# -eq 0 ]]; then
  echo "usage: $0 <file.json>[:key1,key2,...] ..." >&2
  exit 2
fi

for arg in "$@"; do
  file="${arg%%:*}"
  keys=""
  if [[ "$arg" == *:* ]]; then
    keys="${arg#*:}"
  fi
  if [[ ! -s "$file" ]]; then
    echo "FAIL: $file is missing or empty" >&2
    exit 1
  fi
  if [[ "$file" == *.jsonl ]]; then
    if command -v python3 > /dev/null 2>&1; then
      if ! python3 - "$file" "$keys" <<'EOF'
import json, sys
path, keys = sys.argv[1], sys.argv[2]
required = [k for k in keys.split(",") if k]
with open(path) as f:
    for lineno, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except Exception as e:
            print(f"FAIL: {path}:{lineno} is not valid JSON: {e}",
                  file=sys.stderr)
            sys.exit(1)
        if not isinstance(doc, dict):
            print(f"FAIL: {path}:{lineno} is not a JSON object",
                  file=sys.stderr)
            sys.exit(1)
        missing = [k for k in required if k not in doc]
        if missing:
            print(f"FAIL: {path}:{lineno} is missing required keys: "
                  f"{', '.join(missing)}", file=sys.stderr)
            sys.exit(1)
EOF
      then
        exit 1
      fi
    else
      while IFS= read -r line; do
        [[ -z "$line" ]] && continue
        if [[ "${line:0:1}" != "{" || "${line: -1}" != "}" ]]; then
          echo "FAIL: $file has a line that is not a JSON object" >&2
          exit 1
        fi
        if [[ -n "$keys" ]]; then
          IFS=',' read -ra key_list <<< "$keys"
          for key in "${key_list[@]}"; do
            [[ -z "$key" ]] && continue
            if [[ "$line" != *"\"$key\""* ]]; then
              echo "FAIL: $file has a line missing required key: $key" >&2
              exit 1
            fi
          done
        fi
      done < "$file"
    fi
    echo "ok: $file (jsonl${keys:+, keys: $keys})"
    continue
  fi
  if command -v python3 > /dev/null 2>&1; then
    if ! python3 - "$file" "$keys" <<'EOF'
import json, sys
path, keys = sys.argv[1], sys.argv[2]
try:
    with open(path) as f:
        doc = json.load(f)
except Exception as e:
    print(f"FAIL: {path} is not valid JSON: {e}", file=sys.stderr)
    sys.exit(1)
found = set()
def walk(node):
    if isinstance(node, dict):
        for k, v in node.items():
            found.add(k)
            walk(v)
    elif isinstance(node, list):
        for v in node:
            walk(v)
walk(doc)
missing = [k for k in keys.split(",") if k and k not in found]
if missing:
    print(f"FAIL: {path} is missing required keys: {', '.join(missing)}",
          file=sys.stderr)
    sys.exit(1)
EOF
    then
      exit 1
    fi
  else
    # No python3: at least require the document to open and close an object
    # and mention each required key as a quoted string.
    head_char="$(head -c 1 "$file")"
    tail_char="$(tail -c 1 "$file")"
    if [[ "$head_char" != "{" || "$tail_char" != "}" ]]; then
      echo "FAIL: $file does not look like a JSON object" >&2
      exit 1
    fi
    if [[ -n "$keys" ]]; then
      IFS=',' read -ra key_list <<< "$keys"
      for key in "${key_list[@]}"; do
        [[ -z "$key" ]] && continue
        if ! grep -q "\"$key\"" "$file"; then
          echo "FAIL: $file is missing required key: $key" >&2
          exit 1
        fi
      done
    fi
  fi
  echo "ok: $file${keys:+ (keys: $keys)}"
done
