#!/usr/bin/env bash
# Validates machine-readable bench result files: each argument must exist,
# be non-empty, and parse as JSON (python3 when available, an object-shape
# sniff otherwise). Shared by scripts/check.sh and CI so the validation
# contract has exactly one definition.
# Usage: scripts/validate_bench_json.sh <file.json> [<file.json> ...]
set -euo pipefail

if [[ $# -eq 0 ]]; then
  echo "usage: $0 <file.json> [<file.json> ...]" >&2
  exit 2
fi

for file in "$@"; do
  if [[ ! -s "$file" ]]; then
    echo "FAIL: $file is missing or empty" >&2
    exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    if ! python3 -m json.tool "$file" > /dev/null; then
      echo "FAIL: $file is not valid JSON" >&2
      exit 1
    fi
  else
    # No python3: at least require the document to open and close an object.
    head_char="$(head -c 1 "$file")"
    tail_char="$(tail -c 1 "$file")"
    if [[ "$head_char" != "{" || "$tail_char" != "}" ]]; then
      echo "FAIL: $file does not look like a JSON object" >&2
      exit 1
    fi
  fi
  echo "ok: $file"
done
