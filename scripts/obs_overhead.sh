#!/usr/bin/env bash
# Observability overhead guard: builds the bench binaries twice — once as
# configured (metrics + tracing compiled in) and once with
# -DCAFE_OBS_DISABLED=ON (every obs call compiled to a no-op shim) — runs
# bench_backward and bench_serving in both, and fails if the instrumented
# build is more than OBS_OVERHEAD_MAX_PCT percent slower on either bench
# (backward: median per-store overhead of the strided updates/sec rate;
# serving: median per-row QPS overhead). Noise control, because a single
# smoke run swings far more than the 2% budget being enforced:
#   - each bench runs OBS_OVERHEAD_ROUNDS times per build and every row
#     keeps its best rate (best-of-N sheds scheduler noise);
#   - the two builds' rounds are INTERLEAVED, so a slow patch of machine
#     time (another tenant, a background build) degrades both sides
#     instead of biasing whichever build owned that window;
#   - the gate is the median per-row overhead, not the aggregate rate —
#     one store hitting a noisy window cannot swing the verdict;
#   - a failing verdict re-measures once (OBS_OVERHEAD_ATTEMPTS, default 2)
#     before failing for real: a genuine regression fails both attempts,
#     while a several-minute load burst — which best-of-N cannot shed when
#     it spans every round — has to recur across two separated windows.
# Both measurements are merged into the instrumented BENCH_backward.json
# under "obs_overhead" so the cross-PR perf record carries the comparison.
# Usage: scripts/obs_overhead.sh [build-dir] [noobs-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
NOOBS_DIR="${2:-build-noobs}"
# The budget is a fraction of the HOT-LOOP work, so it must be recalibrated
# when that work gets faster: the SIMD kernel pass cut the per-row float
# cost, which raised the same absolute instrumentation cost from ~1.5% to
# ~2.8% of the (now faster) backward. 3.5% ~= the old absolute allowance
# against the vectorized loop; an actual instrumentation regression still
# blows well past it.
MAX_PCT="${OBS_OVERHEAD_MAX_PCT:-3.5}"
ROUNDS="${OBS_OVERHEAD_ROUNDS:-7}"
ATTEMPTS="${OBS_OVERHEAD_ATTEMPTS:-2}"

command -v python3 > /dev/null 2>&1 || {
  echo "obs_overhead: python3 required for the comparison" >&2
  exit 2
}

# Instrumented build (the repo default).
cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_backward bench_serving

# Shim build: identical sources, obs compiled out. Tests/examples skipped —
# only the two benches are measured.
cmake -B "$NOOBS_DIR" -S . -DCAFE_OBS_DISABLED=ON -DCAFE_BUILD_TESTS=OFF \
  -DCAFE_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$NOOBS_DIR" -j"$(nproc)" --target bench_backward bench_serving

# Interleaved rounds with alternating order (noobs,obs / obs,noobs / ...):
# transient machine load degrades both builds rather than one build's whole
# window, and a monotone load ramp cannot systematically favor whichever
# binary runs first.
measure() {
  for round in $(seq 1 "$ROUNDS"); do
    if (( round % 2 )); then
      order=("$NOOBS_DIR" "$BUILD_DIR")
    else
      order=("$BUILD_DIR" "$NOOBS_DIR")
    fi
    for dir in "${order[@]}"; do
      "$dir"/bench_backward --smoke --json "$dir/BENCH_backward.r$round.json" \
        > /dev/null
      # Serving runs at full request volume: smoke's 200-request QPS swings
      # several percent run to run, more than the budget being measured.
      "$dir"/bench_serving --json "$dir/BENCH_serving.r$round.json" \
        > /dev/null
    done
  done
  echo "obs_overhead: measured both builds, $ROUNDS interleaved rounds"
}

compare() {
python3 - "$BUILD_DIR" "$NOOBS_DIR" "$MAX_PCT" "$ROUNDS" <<'EOF'
import json, statistics, sys

build_dir, noobs_dir = sys.argv[1], sys.argv[2]
max_pct, rounds = float(sys.argv[3]), int(sys.argv[4])

def best_rows(dir_, name, row_key, rate_key, expect_obs):
    best = {}
    for r in range(1, rounds + 1):
        doc = json.load(open(f"{dir_}/BENCH_{name}.r{r}.json"))
        assert doc["obs_enabled"] == expect_obs, f"{dir_} {name} round {r}"
        for row in doc[name]:
            key = tuple(row[k] for k in row_key)
            best[key] = max(best.get(key, 0.0), row[rate_key])
    return best

specs = {
    "backward": (("workload", "store"), "strided_updates_per_sec"),
    "serving": (("store", "workers"), "qps"),
}
results = {}
for name, (row_key, rate_key) in specs.items():
    enabled = best_rows(build_dir, name, row_key, rate_key, True)
    disabled = best_rows(noobs_dir, name, row_key, rate_key, False)
    assert enabled.keys() == disabled.keys(), name
    per_row = [(disabled[k] - enabled[k]) / disabled[k] * 100.0
               for k in enabled]
    overhead_pct = statistics.median(per_row)
    results[name] = {
        "obs_rate": sum(enabled.values()),
        "noobs_rate": sum(disabled.values()),
        "overhead_pct": overhead_pct,
    }
    print(f"obs_overhead: {name}: median per-row overhead "
          f"{overhead_pct:+.2f}% over {len(per_row)} rows "
          f"(best of {rounds} interleaved rounds)")

# Merge the comparison into the instrumented backward record (the last
# round's file is the one check.sh/CI validated).
path = f"{build_dir}/BENCH_backward.json"
try:
    doc = json.load(open(path))
except FileNotFoundError:
    doc = json.load(open(f"{build_dir}/BENCH_backward.r{rounds}.json"))
doc["obs_overhead"] = {
    "max_pct_allowed": max_pct,
    "rounds": rounds,
    **results,
}
json.dump(doc, open(path, "w"))

worst = max(r["overhead_pct"] for r in results.values())
if worst > max_pct:
    print(f"FAIL: instrumentation overhead {worst:.2f}% exceeds "
          f"{max_pct:.2f}% budget", file=sys.stderr)
    sys.exit(1)
print(f"obs_overhead: worst {worst:+.2f}% within {max_pct:.2f}% budget")
EOF
}

measure
for attempt in $(seq 1 "$ATTEMPTS"); do
  if compare; then
    exit 0
  fi
  if (( attempt < ATTEMPTS )); then
    echo "obs_overhead: over budget on attempt $attempt/$ATTEMPTS," \
      "re-measuring (transient load bursts do not recur; regressions do)"
    measure
  fi
done
echo "obs_overhead: over budget on all $ATTEMPTS attempts" >&2
exit 1
