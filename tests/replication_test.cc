// The replication-tier test battery: frame codec self-healing, base +
// O(dirty) delta streaming to replicas over pipe and TCP transports, the
// full lifecycle (late-join base resync, dropped-frame generation gap ->
// rebase, corrupt/truncated frames -> poisoned chain + recovery, reorder,
// delay), replica serving parity against a source-side freeze, and the
// stream-while-train online pipeline with replicas attached. These tests
// are also the ThreadSanitizer workload for src/replicate/.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "data/synthetic.h"
#include "io/serialize.h"
#include "replicate/durable_log.h"
#include "replicate/fault_injector.h"
#include "replicate/frame.h"
#include "replicate/replica_manager.h"
#include "replicate/replication_source.h"
#include "replicate/transport.h"
#include "serve/frozen_store.h"
#include "serve/snapshot_manager.h"
#include "serve/swappable_store.h"
#include "train/model_factory.h"
#include "train/online_pipeline.h"
#include "train/store_factory.h"

namespace cafe {
namespace {

using replicate::ByteChannel;
using replicate::FaultPlan;
using replicate::Frame;
using replicate::FrameKind;
using replicate::FrameParser;
using replicate::MakePipeTransport;
using replicate::MakeTcpTransport;
using replicate::ReplicaManager;
using replicate::ReplicationSource;
using replicate::TransportPair;

constexpr uint64_t kFeatures = 5000;
constexpr uint32_t kDim = 8;
constexpr size_t kBatch = 64;
constexpr uint64_t kWaitUs = 20000000;  // generous: CI under TSan is slow

StoreFactoryContext MakeContext(double cr) {
  StoreFactoryContext context;
  context.embedding.total_features = kFeatures;
  context.embedding.dim = kDim;
  context.embedding.compression_ratio = cr;
  context.embedding.seed = 42;
  context.layout = FieldLayout({2000, 1500, 1000, 500});
  context.cafe.decay_interval = 10;
  context.ada.realloc_interval = 10;
  for (uint64_t id = 0; id < 400; ++id) {
    context.offline_hot_ids.push_back(id * 7 % kFeatures);
  }
  return context;
}

/// Deterministic training stream (same idiom as hot_swap_test).
struct GradStream {
  explicit GradStream(uint64_t seed) : rng(seed), zipf(kFeatures, 1.2) {}

  void Next(std::vector<uint64_t>* ids, std::vector<float>* grads) {
    ids->resize(kBatch);
    grads->resize(kBatch * kDim);
    for (auto& id : *ids) id = zipf.SampleIndex(rng);
    for (auto& g : *grads) g = rng.UniformFloat(-0.5f, 0.5f);
  }

  Rng rng;
  ZipfDistribution zipf;
};

std::string SaveStateBytes(const EmbeddingStore& store) {
  io::Writer writer;
  const Status status = store.SaveState(&writer);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return writer.Release();
}

struct StoreCase {
  const char* name;
  double cr;
};

const StoreCase kAllStores[] = {
    {"full", 1.0},  {"hash", 20.0},    {"qr", 10.0},    {"robe", 10.0},    {"ada", 2.0},
    {"mde", 2.0},   {"offline", 20.0}, {"cafe", 20.0},  {"cafe-ml", 20.0},
};

// ---------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------

Frame MakeDataFrame(FrameKind kind, uint64_t generation, size_t payload_bytes,
                    char fill) {
  Frame frame;
  frame.kind = kind;
  frame.generation = generation;
  frame.train_step = generation * 10;
  frame.payload.assign(payload_bytes, fill);
  return frame;
}

TEST(FrameCodecTest, RoundTripAcrossArbitraryChunkBoundaries) {
  const Frame frames[] = {
      MakeDataFrame(FrameKind::kBase, 1, 1000, 'a'),
      MakeDataFrame(FrameKind::kAck, 2, 0, ' '),  // zero-length payload
      MakeDataFrame(FrameKind::kDelta, 3, 37, 'b'),
  };
  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);

  // Feed one byte at a time: every header/payload/fingerprint boundary is
  // also a chunk boundary.
  FrameParser parser;
  std::vector<Frame> parsed;
  for (const char byte : stream) {
    parser.Feed(&byte, 1);
    Frame out;
    while (parser.Next(&out) == FrameParser::Result::kFrame) {
      parsed.push_back(out);
    }
  }
  ASSERT_EQ(parsed.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed[i].kind, frames[i].kind);
    EXPECT_EQ(parsed[i].generation, frames[i].generation);
    EXPECT_EQ(parsed[i].train_step, frames[i].train_step);
    EXPECT_EQ(parsed[i].payload, frames[i].payload);
  }
  EXPECT_EQ(parser.corrupt_events(), 0u);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

std::vector<Frame> ParseAll(FrameParser* parser, const std::string& bytes) {
  parser->Feed(bytes.data(), bytes.size());
  std::vector<Frame> parsed;
  Frame out;
  while (true) {
    const FrameParser::Result result = parser->Next(&out);
    if (result == FrameParser::Result::kNeedMore) break;
    if (result == FrameParser::Result::kFrame) parsed.push_back(out);
  }
  return parsed;
}

TEST(FrameCodecTest, FlippedByteSkipsOneFrameAndRecovers) {
  std::string stream = EncodeFrame(MakeDataFrame(FrameKind::kBase, 1, 64, 'a'));
  std::string f2 = EncodeFrame(MakeDataFrame(FrameKind::kDelta, 2, 64, 'b'));
  f2[f2.size() / 2] ^= 0x20;  // damage frame 2's payload
  stream += f2;
  stream += EncodeFrame(MakeDataFrame(FrameKind::kDelta, 3, 64, 'c'));

  FrameParser parser;
  const std::vector<Frame> parsed = ParseAll(&parser, stream);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].generation, 1u);
  EXPECT_EQ(parsed[1].generation, 3u);
  EXPECT_GE(parser.corrupt_events(), 1u);
}

TEST(FrameCodecTest, TruncatedFrameConsumesSuccessorBytesButResyncs) {
  std::string stream = EncodeFrame(MakeDataFrame(FrameKind::kBase, 1, 64, 'a'));
  const std::string f2 =
      EncodeFrame(MakeDataFrame(FrameKind::kDelta, 2, 200, 'b'));
  stream += f2.substr(0, f2.size() / 2);  // frame 2 cut mid-payload
  stream += EncodeFrame(MakeDataFrame(FrameKind::kDelta, 3, 64, 'c'));
  stream += EncodeFrame(MakeDataFrame(FrameKind::kDelta, 4, 64, 'd'));

  // The truncated frame swallows the next frame's bytes as its missing
  // payload and fails the fingerprint; the rescan re-locks on a LATER
  // magic. Frame 3 may be collateral damage; frame 4 must parse.
  FrameParser parser;
  const std::vector<Frame> parsed = ParseAll(&parser, stream);
  ASSERT_GE(parsed.size(), 2u);
  EXPECT_EQ(parsed.front().generation, 1u);
  EXPECT_EQ(parsed.back().generation, 4u);
  EXPECT_GE(parser.corrupt_events(), 1u);
  for (const Frame& frame : parsed) EXPECT_NE(frame.generation, 2u);
}

TEST(FrameCodecTest, InvalidKindAndOversizePayloadAreCorrupt) {
  // Hand-build a header with an invalid kind.
  io::Writer bad_kind;
  bad_kind.WriteU32(replicate::kFrameMagic);
  bad_kind.WriteU8(99);
  bad_kind.WriteU64(5);
  bad_kind.WriteU64(50);
  bad_kind.WriteU64(0);
  std::string stream = bad_kind.buffer();
  stream += EncodeFrame(MakeDataFrame(FrameKind::kDelta, 6, 16, 'x'));

  FrameParser parser;
  std::vector<Frame> parsed = ParseAll(&parser, stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].generation, 6u);
  EXPECT_GE(parser.corrupt_events(), 1u);

  // A flipped payload_size asking for gigabytes must be rejected as corrupt
  // instead of waiting for 2^40 bytes that will never come.
  io::Writer oversize;
  oversize.WriteU32(replicate::kFrameMagic);
  oversize.WriteU8(static_cast<uint8_t>(FrameKind::kDelta));
  oversize.WriteU64(7);
  oversize.WriteU64(70);
  oversize.WriteU64(1ull << 40);
  FrameParser parser2;
  std::string stream2 = oversize.buffer();
  stream2 += EncodeFrame(MakeDataFrame(FrameKind::kDelta, 8, 16, 'y'));
  parsed = ParseAll(&parser2, stream2);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].generation, 8u);
  EXPECT_GE(parser2.corrupt_events(), 1u);
}

TEST(FrameCodecTest, AuxRoundTripAndTrailingBytesRejected) {
  replicate::AuxState aux;
  aux.model_name = "dlrm";
  aux.dense_params = {{1.0f, -2.5f, 0.0f}, {}, {3.25f}};
  aux.has_optimizer = true;
  aux.optimizer_state = std::string("opt\0state", 9);

  const std::string encoded = EncodeAux(aux);
  replicate::AuxState decoded;
  ASSERT_TRUE(DecodeAux(encoded, &decoded).ok());
  EXPECT_EQ(decoded.model_name, aux.model_name);
  ASSERT_EQ(decoded.dense_params.size(), aux.dense_params.size());
  for (size_t i = 0; i < aux.dense_params.size(); ++i) {
    EXPECT_EQ(decoded.dense_params[i], aux.dense_params[i]);
  }
  EXPECT_TRUE(decoded.has_optimizer);
  EXPECT_EQ(decoded.optimizer_state, aux.optimizer_state);

  replicate::AuxState reject;
  EXPECT_FALSE(DecodeAux(encoded + "x", &reject).ok());
}

// ---------------------------------------------------------------------------
// Source -> replica streaming rig.
// ---------------------------------------------------------------------------

/// One source (live store + idle-mode incremental SnapshotManager +
/// ReplicationSource) with N pipe/TCP replicas. Cuts are driven directly on
/// the test thread (idle-trainer direct copy), so the generation sequence
/// is deterministic; the replica side applies asynchronously.
class ReplicationRig {
 public:
  ReplicationRig(const std::string& store_name, double cr,
                 ReplicationSource::Options source_options = {})
      : name_(store_name), context_(MakeContext(cr)), stream_(777) {
    auto live = MakeStore(name_, context_);
    EXPECT_TRUE(live.ok()) << live.status().ToString();
    live_ = std::move(live).value();
    source_ = std::make_unique<ReplicationSource>(Factory(), source_options);
    SnapshotManager::Options options;
    options.incremental = true;
    options.payload_observer = source_->MakeObserver();
    manager_ = std::make_unique<SnapshotManager>(live_.get(), nullptr,
                                                 Factory(), options);
  }

  SnapshotManager::FreshStoreFactory Factory() const {
    const std::string name = name_;
    const StoreFactoryContext context = context_;
    return [name, context]() { return MakeStore(name, context); };
  }

  ReplicaManager* AddPipeReplica(FaultPlan faults = {}) {
    TransportPair pair = MakePipeTransport(std::move(faults));
    return AddReplicaOnTransport(std::move(pair));
  }

  ReplicaManager* AddReplicaOnTransport(TransportPair pair) {
    ReplicaManager::Options options;
    options.name = "test_replica" + std::to_string(replicas_.size());
    return AddReplicaOnTransport(std::move(pair), options);
  }

  ReplicaManager* AddReplicaOnTransport(TransportPair pair,
                                        ReplicaManager::Options options) {
    const Status added = source_->AddReplica(std::move(pair.source));
    EXPECT_TRUE(added.ok()) << added.ToString();
    replicas_.push_back(std::make_unique<ReplicaManager>(
        Factory(), std::move(pair.replica), options));
    const Status started = replicas_.back()->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return replicas_.back().get();
  }

  /// Trains `batches` on the live store, then cuts one generation.
  void TrainAndCut(size_t batches) {
    std::vector<uint64_t> ids;
    std::vector<float> grads;
    for (size_t k = 0; k < batches; ++k) {
      stream_.Next(&ids, &grads);
      live_->ApplyGradientBatch(ids.data(), kBatch, grads.data(), 0.05f);
      live_->Tick();
    }
    auto snapshot = manager_->Cut();
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    last_generation_ = (*snapshot)->generation;
  }

  void ExpectReplicaByteIdentical(ReplicaManager* replica,
                                  const std::string& what) {
    const Status caught_up =
        replica->WaitForGeneration(last_generation_, kWaitUs);
    ASSERT_TRUE(caught_up.ok()) << what << ": " << caught_up.ToString();
    auto snapshot = replica->swappable()->Acquire();
    ASSERT_NE(snapshot, nullptr) << what;
    EXPECT_EQ(snapshot->generation, last_generation_) << what;
    EXPECT_EQ(SaveStateBytes(*snapshot->store->underlying()),
              SaveStateBytes(*live_))
        << what << ": replica state diverged from the source";
  }

  EmbeddingStore* live() { return live_.get(); }
  SnapshotManager* manager() { return manager_.get(); }
  ReplicationSource* source() { return source_.get(); }
  uint64_t last_generation() const { return last_generation_; }

 private:
  std::string name_;
  StoreFactoryContext context_;
  GradStream stream_;
  std::unique_ptr<EmbeddingStore> live_;
  std::unique_ptr<ReplicationSource> source_;
  std::unique_ptr<SnapshotManager> manager_;
  std::vector<std::unique_ptr<ReplicaManager>> replicas_;
  uint64_t last_generation_ = 0;
};

class ReplicaParityTest : public ::testing::TestWithParam<StoreCase> {};

// The tentpole guarantee, per store: after a base and k streamed deltas the
// replica's resident state is BYTE-identical to the source's live store —
// the same SaveState bytes — and its serving lookups match a source-side
// freeze exactly.
TEST_P(ReplicaParityTest, BasePlusDeltasByteIdenticalForEveryStore) {
  ReplicationRig rig(GetParam().name, GetParam().cr);
  ReplicaManager* replica = rig.AddPipeReplica();

  rig.TrainAndCut(5);  // generation 1: full base
  // Pin the base to generation 1 (the kHello is processed asynchronously;
  // waiting here keeps the frame sequence — and the stats below — exact).
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 4; ++k) rig.TrainAndCut(10);  // generations 2-5: deltas
  rig.ExpectReplicaByteIdentical(replica, GetParam().name);

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_EQ(stats.frames_received, 5u);
  EXPECT_EQ(stats.stale_skipped, 0u);
  EXPECT_EQ(stats.poisoned_skipped, 0u);
  EXPECT_EQ(stats.bases_applied, 1u);
  EXPECT_EQ(stats.deltas_applied, 4u);
  EXPECT_EQ(stats.corrupt_frames, 0u);
  EXPECT_EQ(stats.gap_frames, 0u);
  EXPECT_EQ(stats.resyncs_requested, 0u);
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();

  // Serving parity: every id the replica serves equals the source freeze.
  auto source_frozen = FrozenStore::Wrap(rig.live());
  std::vector<float> want(kDim), got(kDim);
  SwappableStore* serving = replica->swappable();
  for (uint64_t id = 0; id < kFeatures; ++id) {
    source_frozen->LookupConst(id, want.data());
    serving->LookupConst(id, got.data());
    ASSERT_EQ(std::memcmp(want.data(), got.data(), kDim * sizeof(float)), 0)
        << GetParam().name << ": serving lookup of id " << id << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, ReplicaParityTest, ::testing::ValuesIn(kAllStores),
    [](const ::testing::TestParamInfo<StoreCase>& info) {
      std::string name = info.param.name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// A replica that connects AFTER several generations have streamed gets a
// single base at the source's head (served from the source's resident head
// store — no trainer involvement) and rides deltas from there.
TEST(ReplicationLifecycleTest, LateJoinerIsServedABaseAtTheHead) {
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* early = rig.AddPipeReplica();
  rig.TrainAndCut(5);
  ASSERT_TRUE(early->WaitForGeneration(1, kWaitUs).ok());
  rig.TrainAndCut(10);
  rig.TrainAndCut(10);  // head is generation 3

  ReplicaManager* late = rig.AddPipeReplica();
  ASSERT_TRUE(late->WaitForGeneration(3, kWaitUs).ok());
  rig.TrainAndCut(10);
  rig.TrainAndCut(10);

  rig.ExpectReplicaByteIdentical(early, "early replica");
  rig.ExpectReplicaByteIdentical(late, "late replica");

  const ReplicaManager::Stats late_stats = late->stats();
  EXPECT_EQ(late_stats.bases_applied, 1u);
  EXPECT_EQ(late_stats.deltas_applied, 2u);  // only generations 4 and 5
  const ReplicaManager::Stats early_stats = early->stats();
  EXPECT_EQ(early_stats.bases_applied, 1u);
  EXPECT_EQ(early_stats.deltas_applied, 4u);
}

// A dropped frame parses cleanly on the wire — the generation GAP at the
// replica is the signal. The replica must poison its chain, request one
// resync, and rebase from the answering kBase.
TEST(ReplicationLifecycleTest, DroppedFrameGapForcesRebase) {
  FaultPlan faults;
  faults.rules.push_back({2, FaultPlan::Action::kDrop, 0});  // generation 3
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica = rig.AddPipeReplica(std::move(faults));

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 5; ++k) rig.TrainAndCut(10);  // generations 2-6
  rig.ExpectReplicaByteIdentical(replica, "dropped frame");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_GE(stats.gap_frames, 1u);
  EXPECT_EQ(stats.resyncs_requested, 1u);
  EXPECT_EQ(stats.bases_applied, 2u);  // initial sync + rebase
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
}

// A flipped byte fails the frame fingerprint; the parser skips the frame,
// the replica poisons its chain and recovers through one resync.
TEST(ReplicationLifecycleTest, CorruptFrameForcesResyncAndRecovery) {
  FaultPlan faults;
  faults.rules.push_back({2, FaultPlan::Action::kCorrupt, 41});
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica = rig.AddPipeReplica(std::move(faults));

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 5; ++k) rig.TrainAndCut(10);
  rig.ExpectReplicaByteIdentical(replica, "corrupt frame");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_GE(stats.corrupt_frames, 1u);
  EXPECT_EQ(stats.resyncs_requested, 1u);
  EXPECT_GE(stats.bases_applied, 2u);
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
}

// A truncated frame takes its successor's bytes down with it (they are
// consumed as the missing payload); the parser re-locks on a later magic
// and the replica recovers through the same poison/resync path.
TEST(ReplicationLifecycleTest, TruncatedFrameForcesResyncAndRecovery) {
  FaultPlan faults;
  faults.rules.push_back({2, FaultPlan::Action::kTruncate, 0});  // keep half
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica = rig.AddPipeReplica(std::move(faults));

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 5; ++k) rig.TrainAndCut(10);
  rig.ExpectReplicaByteIdentical(replica, "truncated frame");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_GE(stats.corrupt_frames, 1u);
  EXPECT_GE(stats.resyncs_requested, 1u);
  EXPECT_GE(stats.bases_applied, 2u);
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
}

// Reordered frames: the early-arriving LATER generation reads as a gap
// (resync), and the late-arriving EARLIER one is skipped as stale — never
// applied out of order, never a second poison.
TEST(ReplicationLifecycleTest, ReorderedFramesForceRebaseNotMisorder) {
  FaultPlan faults;
  faults.rules.push_back({2, FaultPlan::Action::kReorder, 0});
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica = rig.AddPipeReplica(std::move(faults));

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 5; ++k) rig.TrainAndCut(10);
  rig.ExpectReplicaByteIdentical(replica, "reordered frames");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_GE(stats.gap_frames, 1u);
  EXPECT_EQ(stats.resyncs_requested, 1u);
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
}

// A delayed frame is just lag: delivered intact, applied in order, no
// resync — the lifecycle machinery must not misread slowness as damage.
TEST(ReplicationLifecycleTest, DelayedFrameIsOnlyLag) {
  FaultPlan faults;
  faults.rules.push_back({2, FaultPlan::Action::kDelay, 50000});
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica = rig.AddPipeReplica(std::move(faults));

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 3; ++k) rig.TrainAndCut(10);
  rig.ExpectReplicaByteIdentical(replica, "delayed frame");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_EQ(stats.resyncs_requested, 0u);
  EXPECT_EQ(stats.bases_applied, 1u);
  EXPECT_EQ(stats.deltas_applied, 3u);
}

// The same protocol over a real loopback socket: OS framing, partial
// reads, TCP_NODELAY — byte parity must hold exactly as over the pipe.
TEST(ReplicationLifecycleTest, TcpTransportStreamsByteIdentically) {
  auto transport = MakeTcpTransport();
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica =
      rig.AddReplicaOnTransport(std::move(transport).value());

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 3; ++k) rig.TrainAndCut(10);
  rig.ExpectReplicaByteIdentical(replica, "tcp transport");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_EQ(stats.corrupt_frames, 0u);
  EXPECT_EQ(stats.resyncs_requested, 0u);
}

// Source-side lag accounting: once a replica acks the head, its lag
// gauges return to zero; the per-link byte counters match what the stream
// actually carried.
TEST(ReplicationLifecycleTest, SourceTracksPerReplicaLag) {
  ReplicationRig rig("cafe", 20.0);
  ReplicaManager* replica = rig.AddPipeReplica();
  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  for (int k = 0; k < 3; ++k) rig.TrainAndCut(10);
  rig.ExpectReplicaByteIdentical(replica, "lag accounting");

  // Acks travel replica -> source asynchronously; poll until the last one
  // lands.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(kWaitUs);
  ReplicationSource::Stats stats = rig.source()->stats();
  while (std::chrono::steady_clock::now() < deadline) {
    stats = rig.source()->stats();
    ASSERT_EQ(stats.replicas.size(), 1u);
    if (stats.replicas[0].acked_generation == rig.last_generation()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stats.head_generation, rig.last_generation());
  EXPECT_EQ(stats.replicas[0].acked_generation, rig.last_generation());
  EXPECT_EQ(stats.replicas[0].lag_generations, 0u);
  EXPECT_EQ(stats.replicas[0].lag_bytes, 0u);
  EXPECT_TRUE(stats.replicas[0].alive);
  EXPECT_EQ(stats.replicas[0].base_resyncs, 1u);
  EXPECT_GT(stats.replicas[0].bytes_sent, 0u);
  EXPECT_TRUE(stats.head_status.ok()) << stats.head_status.ToString();
}

// ---------------------------------------------------------------------------
// Typed transport statuses: flow control and the reconnect loop decide
// retry-vs-give-up from these codes, so they are contract, not detail.
// ---------------------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  EXPECT_TRUE(io::EnsureDirectory(dir).ok());
  auto names = io::ListDirectory(dir);
  if (names.ok()) {
    for (const std::string& file : *names) {
      (void)io::RemoveFile(dir + "/" + file);
    }
  }
  return dir;
}

TEST(TransportStatusTest, PipeWriteAfterCloseIsUnavailable) {
  TransportPair pair = MakePipeTransport();
  pair.replica->Close();
  const char byte = 'x';
  const Status status = pair.source->Write(&byte, 1);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST(TransportStatusTest, BoundedPipeBlocksOnCapacityAndUnblocksOnClose) {
  TransportPair pair = MakePipeTransport({}, 1024);
  const std::string chunk(800, 'x');
  ASSERT_TRUE(pair.source->Write(chunk.data(), chunk.size()).ok());

  // The second write exceeds capacity: it must BLOCK (not fail) until the
  // reader drains space.
  std::atomic<bool> second_done{false};
  std::thread writer([&] {
    EXPECT_TRUE(pair.source->Write(chunk.data(), chunk.size()).ok());
    second_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load(std::memory_order_acquire));
  char buf[4096];
  size_t drained = 0;
  while (drained < 2 * chunk.size()) {
    auto n = pair.replica->Read(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u);
    drained += *n;
  }
  writer.join();
  EXPECT_TRUE(second_done.load(std::memory_order_acquire));

  // A writer blocked on capacity must be UNBLOCKED by Close — with the
  // typed verdict — not deadlocked.
  ASSERT_TRUE(pair.source->Write(chunk.data(), chunk.size()).ok());
  std::thread blocked([&] {
    const Status status = pair.source->Write(chunk.data(), chunk.size());
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pair.replica->Close();
  blocked.join();
}

TEST(TransportStatusTest, TcpAcceptTimesOutAndRefusedConnectIsUnavailable) {
  auto listener = replicate::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = (*listener)->port();

  auto accepted = (*listener)->Accept(30000);  // nobody dials
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kDeadlineExceeded)
      << accepted.status().ToString();

  (*listener)->Close();
  auto dial = replicate::TcpConnect(port, 1000000);  // nobody listens now
  ASSERT_FALSE(dial.ok());
  EXPECT_EQ(dial.status().code(), StatusCode::kUnavailable)
      << dial.status().ToString();
}

TEST(TransportStatusTest, TcpListenerServesARedialOnTheSamePort) {
  auto listener = replicate::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = (*listener)->port();
  for (int round = 0; round < 2; ++round) {
    auto dial = replicate::TcpConnect(port, 2000000);
    ASSERT_TRUE(dial.ok()) << dial.status().ToString();
    auto accepted = (*listener)->Accept(2000000);
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    const std::string ping = "ping" + std::to_string(round);
    ASSERT_TRUE((*dial)->Write(ping.data(), ping.size()).ok());
    char buf[16];
    auto n = (*accepted)->Read(buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(std::string(buf, *n), ping);
    (*dial)->Close();
    (*accepted)->Close();
  }
}

// ---------------------------------------------------------------------------
// Durable ledger.
// ---------------------------------------------------------------------------

TEST(DurableLogTest, LoadRestoresTheNewestValidChainAndPrunesDamage) {
  const std::string dir = FreshDir("cafe_durable_log");
  replicate::DurableReplicaLog log(dir);
  ASSERT_TRUE(log.Init().ok());
  EXPECT_EQ(log.Load().status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(log.AppendBase(MakeDataFrame(FrameKind::kBase, 3, 64, 'b')).ok());
  for (uint64_t g = 4; g <= 7; ++g) {
    ASSERT_TRUE(
        log.AppendDelta(MakeDataFrame(FrameKind::kDelta, g, 32, 'd')).ok());
  }
  EXPECT_EQ(log.delta_count(), 4u);

  // Bit-rot generation 6 on disk: the restored chain must stop at 5 (the
  // wire fingerprint doubles as the at-rest integrity check) and the
  // unusable tail must be pruned.
  ASSERT_TRUE(io::WriteFileAtomic(dir + "/delta-00000000000000000006.frame",
                                  "not a frame")
                  .ok());
  replicate::DurableReplicaLog reload(dir);
  ASSERT_TRUE(reload.Init().ok());
  auto restored = reload.Load();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->generation, 5u);
  ASSERT_EQ(restored->frames.size(), 3u);  // base 3 + deltas 4, 5
  EXPECT_EQ(restored->frames.front().kind, FrameKind::kBase);
  EXPECT_EQ(restored->frames.front().generation, 3u);
  EXPECT_EQ(restored->frames.back().generation, 5u);

  // A newer base subsumes the chain: only it (and a same-gen aux) survive.
  ASSERT_TRUE(
      reload.AppendBase(MakeDataFrame(FrameKind::kBase, 9, 64, 'B')).ok());
  EXPECT_EQ(reload.delta_count(), 0u);
  replicate::DurableReplicaLog compacted(dir);
  ASSERT_TRUE(compacted.Init().ok());
  auto after = compacted.Load();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->generation, 9u);
  ASSERT_EQ(after->frames.size(), 1u);
}

// ---------------------------------------------------------------------------
// Durable rejoin: kill the replica at EVERY generation, restart it from its
// ledger, and check the rejoin path the source chose (delta catch-up from
// the history ring when it covers the gap, one full base otherwise).
// ---------------------------------------------------------------------------

TEST(ReplicaRejoinTest, KillAtEveryGenerationRejoinsViaDeltaOrBase) {
  constexpr uint64_t kHead = 6;  // generations cut while the replica is down
  constexpr uint64_t kRing = 2;  // delta history covers rejoins at kHead-2+
  for (uint64_t kill_at = 1; kill_at <= kHead; ++kill_at) {
    SCOPED_TRACE("killed at generation " + std::to_string(kill_at));
    ReplicationSource::Options source_options;
    source_options.delta_history_generations = kRing;
    ReplicationRig rig("cafe", 20.0, source_options);
    ReplicaManager::Options options;
    options.name = "rejoin_replica";
    options.durable_dir =
        FreshDir("cafe_rejoin_k" + std::to_string(kill_at));
    ReplicaManager* replica =
        rig.AddReplicaOnTransport(MakePipeTransport(), options);

    rig.TrainAndCut(5);  // generation 1: the base
    ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
    for (uint64_t g = 2; g <= kill_at; ++g) rig.TrainAndCut(5);
    ASSERT_TRUE(replica->WaitForGeneration(kill_at, kWaitUs).ok());
    replica->Shutdown();  // kill; the ledger survives

    for (uint64_t g = kill_at + 1; g <= kHead; ++g) rig.TrainAndCut(5);

    // Restart from the same ledger over a fresh transport. Serving resumes
    // at the restored generation BEFORE the link carries a byte.
    ReplicaManager* rejoined =
        rig.AddReplicaOnTransport(MakePipeTransport(), options);
    ASSERT_TRUE(rejoined->WaitForGeneration(kHead, kWaitUs).ok());
    rig.TrainAndCut(5);  // one more delta rides the re-established chain
    rig.ExpectReplicaByteIdentical(rejoined, "rejoined replica");

    const ReplicaManager::Stats stats = rejoined->stats();
    EXPECT_EQ(stats.restores, 1u);
    EXPECT_EQ(stats.restored_generation, kill_at);
    EXPECT_EQ(stats.resyncs_requested, 0u);
    if (kill_at >= kHead - kRing) {
      // Inside the ring: catch-up is pure deltas — no base shipped.
      EXPECT_EQ(stats.bases_applied, 0u);
      EXPECT_EQ(stats.deltas_applied, kHead + 1 - kill_at);
      const ReplicationSource::Stats source_stats = rig.source()->stats();
      EXPECT_GE(source_stats.delta_catchups, 1u);
    } else {
      // Older than the ring: one full base at the head, then deltas.
      EXPECT_EQ(stats.bases_applied, 1u);
      EXPECT_EQ(stats.deltas_applied, 1u);
    }
    EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
  }
}

// ---------------------------------------------------------------------------
// Flow control: a stalled consumer must cost bounded source memory, then
// re-enter through the rebase path once it drains.
// ---------------------------------------------------------------------------

TEST(FlowControlTest, StalledConsumerKeepsSourceMemoryBoundedThenRebases) {
  ReplicationSource::Options source_options;
  source_options.send_queue_high_bytes = 64ull << 10;
  source_options.send_queue_high_frames = 4;
  ReplicationRig rig("cafe", 20.0, source_options);

  TransportPair pair = MakePipeTransport();
  auto faulty =
      std::make_unique<replicate::FaultyChannel>(std::move(pair.source));
  replicate::FaultyChannel* stall = faulty.get();
  pair.source = std::move(faulty);
  ReplicaManager* replica = rig.AddReplicaOnTransport(std::move(pair));

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());

  // Stall the consumer, then keep publishing. Publish must never block,
  // and the link's queue must cap at the watermark — NOT buffer the run.
  stall->SetStalled(true);
  for (int k = 0; k < 12; ++k) rig.TrainAndCut(3);  // generations 2-13

  const ReplicationSource::Stats stalled = rig.source()->stats();
  ASSERT_EQ(stalled.replicas.size(), 1u);
  EXPECT_GE(stalled.replicas[0].queue_overflows, 1u);
  EXPECT_TRUE(stalled.replicas[0].stale);
  EXPECT_LE(stalled.replicas[0].send_queue_frames,
            source_options.send_queue_high_frames);
  EXPECT_LE(stalled.replicas[0].send_queue_bytes,
            source_options.send_queue_high_bytes);
  EXPECT_GE(stalled.queue_overflows, 1u);

  // A stalled consumer is lag: the wait times out with the typed code.
  const Status timeout = replica->WaitForGeneration(13, 50000);
  EXPECT_EQ(timeout.code(), StatusCode::kDeadlineExceeded)
      << timeout.ToString();

  // Unstall: the bounded backlog drains, then the stale link re-enters
  // through a fresh base at the head (the same path a kResync takes) —
  // never by replaying the unbounded middle.
  stall->SetStalled(false);
  rig.TrainAndCut(3);  // generation 14
  rig.ExpectReplicaByteIdentical(replica, "unstalled replica");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_EQ(stats.bases_applied, 2u);  // initial sync + post-stall rebase
  EXPECT_EQ(stats.resyncs_requested, 0u);
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
  const ReplicationSource::Stats after = rig.source()->stats();
  EXPECT_FALSE(after.replicas[0].stale);
  EXPECT_EQ(after.replicas[0].base_resyncs, 2u);
}

// ---------------------------------------------------------------------------
// Reconnect and liveness.
// ---------------------------------------------------------------------------

TEST(ReconnectTest, DeadLinkRedialsWithBackoffAndCatchesUpOnDeltas) {
  ReplicationSource::Options source_options;
  source_options.delta_history_generations = 8;
  ReplicationRig rig("cafe", 20.0, source_options);

  TransportPair pair = MakePipeTransport();
  ByteChannel* sever = pair.replica.get();
  std::atomic<uint32_t> dials{0};
  ReplicaManager::Options options;
  options.name = "redial_replica";
  options.reconnect_backoff_initial_us = 2000;
  options.reconnect = [&rig, &dials]()
      -> StatusOr<std::unique_ptr<ByteChannel>> {
    // First dial fails retriably (the "source still restarting" case): the
    // backoff loop must try again instead of giving up.
    if (dials.fetch_add(1, std::memory_order_acq_rel) == 0) {
      return Status::Unavailable("connection refused");
    }
    TransportPair fresh = MakePipeTransport();
    CAFE_RETURN_IF_ERROR(rig.source()->AddReplica(std::move(fresh.source)));
    return std::move(fresh.replica);
  };
  ReplicaManager* replica = rig.AddReplicaOnTransport(std::move(pair), options);

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());
  rig.TrainAndCut(5);
  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(3, kWaitUs).ok());

  sever->Close();  // the link dies under the replica mid-run

  rig.TrainAndCut(5);
  rig.TrainAndCut(5);  // generations 4-5 ride the replacement link
  rig.ExpectReplicaByteIdentical(replica, "redialed replica");

  const ReplicaManager::Stats stats = replica->stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(dials.load(std::memory_order_acquire), 2u);
  // The rejoin handshake resumed the delta chain: no second base.
  EXPECT_EQ(stats.bases_applied, 1u);
  EXPECT_EQ(stats.deltas_applied, 4u);
  EXPECT_TRUE(stats.fatal.ok()) << stats.fatal.ToString();
}

TEST(LivenessTest, SourcePrunesSilentLinksWhileHeartbeatersStayAlive) {
  ReplicationSource::Options source_options;
  source_options.heartbeat_interval_us = 20000;
  source_options.liveness_timeout_us = 150000;
  ReplicationRig rig("cafe", 20.0, source_options);

  ReplicaManager::Options heartbeat_options;
  heartbeat_options.name = "hb_replica";
  heartbeat_options.heartbeat_interval_us = 20000;
  ReplicaManager* heartbeater =
      rig.AddReplicaOnTransport(MakePipeTransport(), heartbeat_options);
  ReplicaManager::Options silent_options;
  silent_options.name = "silent_replica";
  ReplicaManager* silent =
      rig.AddReplicaOnTransport(MakePipeTransport(), silent_options);

  rig.TrainAndCut(5);
  ASSERT_TRUE(heartbeater->WaitForGeneration(1, kWaitUs).ok());
  ASSERT_TRUE(silent->WaitForGeneration(1, kWaitUs).ok());

  // Idle past the liveness window: the silent replica acks nothing more,
  // so its link must be pruned; the heartbeater's stays up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(kWaitUs);
  ReplicationSource::Stats stats = rig.source()->stats();
  while (stats.links_pruned < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = rig.source()->stats();
  }
  EXPECT_EQ(stats.links_pruned, 1u);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_TRUE(stats.replicas[0].alive);
  EXPECT_FALSE(stats.replicas[1].alive);
  // The live replica heard the source's heartbeats too.
  EXPECT_GT(heartbeater->stats().heartbeats_received, 0u);
}

TEST(LivenessTest, ReplicaWatchdogSeversASilentSourceAndRedials) {
  ReplicationRig rig("cafe", 20.0);  // source never heartbeats
  std::atomic<uint32_t> dials{0};
  ReplicaManager::Options options;
  options.name = "watchdog_replica";
  options.heartbeat_interval_us = 20000;
  options.liveness_timeout_us = 120000;
  options.reconnect_backoff_initial_us = 2000;
  options.reconnect = [&rig, &dials]()
      -> StatusOr<std::unique_ptr<ByteChannel>> {
    dials.fetch_add(1, std::memory_order_acq_rel);
    TransportPair fresh = MakePipeTransport();
    CAFE_RETURN_IF_ERROR(rig.source()->AddReplica(std::move(fresh.source)));
    return std::move(fresh.replica);
  };
  ReplicaManager* replica =
      rig.AddReplicaOnTransport(MakePipeTransport(), options);

  rig.TrainAndCut(5);
  ASSERT_TRUE(replica->WaitForGeneration(1, kWaitUs).ok());

  // The source goes silent (no cuts, no heartbeats): the replica's
  // watchdog must sever the half-dead link and redial on its own.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(kWaitUs);
  while (replica->stats().reconnects < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(replica->stats().reconnects, 1u);
  EXPECT_GE(dials.load(std::memory_order_acquire), 1u);

  // The replacement link carries the next generation.
  rig.TrainAndCut(5);
  rig.ExpectReplicaByteIdentical(replica, "watchdog redial");
  EXPECT_TRUE(replica->stats().fatal.ok());
}

// ---------------------------------------------------------------------------
// Stream-while-train: the full online pipeline with replicas attached.
// This is the concurrent TSan workload — trainer, rollout thread, serving
// workers, source reader threads, and two replica apply threads all live.
// ---------------------------------------------------------------------------

std::unique_ptr<SyntheticCtrDataset> MakeRolloutDataset() {
  SyntheticDatasetConfig config;
  config.name = "replication-test";
  config.field_cardinalities = {2000, 1500, 1000, 500};
  config.num_numerical = 2;
  config.num_samples = 6000;
  config.num_days = 3;
  config.seed = 77;
  auto data = SyntheticCtrDataset::Generate(config);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(ReplicatedPipelineTest, StreamWhileTrainReachesTheFinalGeneration) {
  auto data = MakeRolloutDataset();
  StoreFactoryContext context = MakeContext(20.0);
  context.embedding.total_features = data->layout().total_features();
  context.layout = data->layout();
  ModelConfig model_config;
  model_config.num_fields = data->num_fields();
  model_config.emb_dim = kDim;
  model_config.num_numerical = data->config().num_numerical;
  model_config.seed = 1234;

  OnlinePipelineOptions options;
  options.batch_size = 128;
  options.passes = 1;
  options.snapshot_interval = 8;
  options.incremental_snapshots = true;
  options.replica_count = 2;
  // Fresh the per-replica subdirs too: the pipeline writes each ledger
  // under <dir>/replica<i>, and a stale ledger would turn this cold join
  // into a restore.
  options.replica_durable_dir = FreshDir("cafe_pipeline_durable");
  FreshDir("cafe_pipeline_durable/replica0");
  FreshDir("cafe_pipeline_durable/replica1");
  options.replica_heartbeat_interval_us = 20000;
  options.server.num_workers = 2;
  options.server.max_batch = 64;
  options.server.max_wait_us = 100;
  options.num_clients = 2;
  options.request_size = 12;
  auto result = RunOnlinePipeline("cafe", context, "dlrm", model_config,
                                  *data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->final_snapshot, nullptr);

  const uint64_t final_generation = result->final_snapshot->generation;
  EXPECT_EQ(result->replication_stats.head_generation, final_generation);
  EXPECT_TRUE(result->replication_stats.head_status.ok())
      << result->replication_stats.head_status.ToString();
  ASSERT_EQ(result->replica_stats.size(), 2u);
  for (size_t i = 0; i < result->replica_stats.size(); ++i) {
    const ReplicaManager::Stats& stats = result->replica_stats[i];
    EXPECT_EQ(stats.generation, final_generation) << "replica " << i;
    EXPECT_EQ(stats.train_step, result->final_snapshot->train_step)
        << "replica " << i;
    // The kHello races the first cut, so the base may land at any early
    // generation: assert the shape (one base, deltas from there) rather
    // than exact counts.
    EXPECT_EQ(stats.bases_applied, 1u) << "replica " << i;
    EXPECT_GE(stats.deltas_applied, 1u) << "replica " << i;
    EXPECT_EQ(stats.corrupt_frames, 0u) << "replica " << i;
    EXPECT_EQ(stats.gap_frames, 0u) << "replica " << i;
    EXPECT_EQ(stats.resyncs_requested, 0u) << "replica " << i;
    // Fresh durable dirs: this run is a cold join that leaves a ledger
    // behind, with no write failures along the way.
    EXPECT_EQ(stats.restores, 0u) << "replica " << i;
    EXPECT_EQ(stats.durable_persist_failures, 0u) << "replica " << i;
    EXPECT_TRUE(stats.fatal.ok()) << "replica " << i << ": "
                                  << stats.fatal.ToString();
  }
}

}  // namespace
}  // namespace cafe
