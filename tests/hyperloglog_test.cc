// HyperLogLog accuracy against known cardinalities, plus the idempotence
// and merge properties the trainer's per-field tracking relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/random.h"
#include "sketch/hyperloglog.h"

namespace cafe {
namespace {

/// Expected standard error of a 2^p-register HLL.
double StdError(uint32_t precision) {
  return 1.04 / std::sqrt(static_cast<double>(size_t{1} << precision));
}

TEST(HyperLogLogTest, KnownCardinalities) {
  // 4-sigma tolerance: the estimate is deterministic given the hash seed,
  // so this just has to hold for the specific populations below (no flake).
  for (const uint64_t true_count : {1000ULL, 50000ULL, 500000ULL}) {
    HyperLogLog hll(/*precision=*/14);
    for (uint64_t id = 0; id < true_count; ++id) {
      hll.Insert(id * 0x9e3779b97f4a7c15ULL);  // well-spread distinct keys
    }
    const double estimate = hll.Estimate();
    const double tolerance = 4.0 * StdError(14) * true_count;
    EXPECT_NEAR(estimate, static_cast<double>(true_count), tolerance)
        << "cardinality " << true_count;
  }
}

TEST(HyperLogLogTest, SmallRangeLinearCountingIsTight) {
  HyperLogLog hll(/*precision=*/12);
  constexpr uint64_t kDistinct = 100;
  for (uint64_t id = 0; id < kDistinct; ++id) hll.Insert(id);
  // Far below 2.5m, the linear-counting correction applies and is near
  // exact.
  EXPECT_NEAR(hll.Estimate(), kDistinct, kDistinct * 0.05);
}

TEST(HyperLogLogTest, DuplicatesDoNotChangeTheEstimate) {
  HyperLogLog once(/*precision=*/12);
  HyperLogLog many(/*precision=*/12);
  Rng rng(7);
  for (uint64_t id = 0; id < 10000; ++id) {
    once.Insert(id);
    // Zipf-ish duplication: hot ids are inserted many times.
    const int repeats = 1 + static_cast<int>(rng.Uniform(5));
    for (int r = 0; r < repeats; ++r) many.Insert(id);
  }
  EXPECT_DOUBLE_EQ(once.Estimate(), many.Estimate());
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(/*precision=*/13), b(/*precision=*/13), u(/*precision=*/13);
  for (uint64_t id = 0; id < 30000; ++id) {
    if (id % 2 == 0) a.Insert(id);
    if (id % 3 == 0) b.Insert(id);
    if (id % 2 == 0 || id % 3 == 0) u.Insert(id);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(HyperLogLogTest, ClearResets) {
  HyperLogLog hll(/*precision=*/10);
  for (uint64_t id = 0; id < 1000; ++id) hll.Insert(id);
  EXPECT_GT(hll.Estimate(), 0.0);
  hll.Clear();
  EXPECT_EQ(hll.Estimate(), 0.0);
}

TEST(HyperLogLogTest, MemoryIsRegisterArray) {
  EXPECT_EQ(HyperLogLog(10).MemoryBytes(), 1024u);
  EXPECT_EQ(HyperLogLog(14).MemoryBytes(), 16384u);
}

}  // namespace
}  // namespace cafe
