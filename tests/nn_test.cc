#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace cafe {
namespace {

// Sum-of-outputs scalar loss used for finite-difference checks: with
// L = sum(out), dL/dout = 1 everywhere, so Backward(ones) must produce
// dL/dinput and parameter grads we can compare against (L(x+h)-L(x-h))/2h.
double SumForward(Layer* layer, const Tensor& in) {
  Tensor out;
  layer->Forward(in, &out);
  double total = 0.0;
  for (size_t i = 0; i < out.size(); ++i) total += out.data()[i];
  return total;
}

void CheckInputGradient(Layer* layer, Tensor& in, double tolerance = 2e-2) {
  Tensor out, ones, grad_in;
  layer->Forward(in, &out);
  ones.Resize(out.rows(), out.cols());
  ones.Fill(1.0f);
  layer->Backward(ones, &grad_in);

  const float h = 1e-2f;
  for (size_t i = 0; i < in.size(); i += std::max<size_t>(1, in.size() / 17)) {
    const float saved = in.data()[i];
    in.data()[i] = saved + h;
    const double up = SumForward(layer, in);
    in.data()[i] = saved - h;
    const double down = SumForward(layer, in);
    in.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(grad_in.data()[i], numeric, tolerance) << "input index " << i;
  }
  // Restore caches to the unperturbed point.
  layer->Forward(in, &out);
}

void CheckParamGradients(Layer* layer, Tensor& in, double tolerance = 2e-2) {
  Tensor out, ones, grad_in;
  std::vector<Param> params;
  layer->CollectParams(&params);
  for (Param& p : params) {
    std::fill(p.grad, p.grad + p.size, 0.0f);
  }
  layer->Forward(in, &out);
  ones.Resize(out.rows(), out.cols());
  ones.Fill(1.0f);
  layer->Backward(ones, &grad_in);

  const float h = 1e-2f;
  for (const Param& p : params) {
    for (size_t i = 0; i < p.size; i += std::max<size_t>(1, p.size / 13)) {
      const float saved = p.value[i];
      p.value[i] = saved + h;
      const double up = SumForward(layer, in);
      p.value[i] = saved - h;
      const double down = SumForward(layer, in);
      p.value[i] = saved;
      const double numeric = (up - down) / (2.0 * h);
      EXPECT_NEAR(p.grad[i], numeric, tolerance) << "param index " << i;
    }
  }
  layer->Forward(in, &out);
}

Tensor RandomTensor(size_t rows, size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  return t;
}

// ---------------------------------------------------------------- Tensor --

TEST(TensorTest, ShapeAndAccess) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.row(1)[2], 5.0f);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(2, 2);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, ResizeAndFill) {
  Tensor t;
  t.Resize(2, 5);
  t.Fill(3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 4), 3.0f);
  t.Zero();
  EXPECT_FLOAT_EQ(t.at(1, 4), 0.0f);
}

// ---------------------------------------------------------------- Linear --

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(1);
  Linear linear(2, 1, rng);
  linear.weight() = {2.0f, -3.0f};
  linear.bias() = {0.5f};
  Tensor in(1, 2);
  in.at(0, 0) = 1.0f;
  in.at(0, 1) = 4.0f;
  Tensor out;
  linear.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f - 12.0f + 0.5f);
}

TEST(LinearTest, InputGradientMatchesFiniteDifference) {
  Rng rng(2);
  Linear linear(5, 3, rng);
  Tensor in = RandomTensor(4, 5, rng);
  CheckInputGradient(&linear, in);
}

TEST(LinearTest, ParamGradientsMatchFiniteDifference) {
  Rng rng(3);
  Linear linear(4, 2, rng);
  Tensor in = RandomTensor(3, 4, rng);
  CheckParamGradients(&linear, in);
}

TEST(LinearTest, NumParameters) {
  Rng rng(4);
  Linear linear(7, 3, rng);
  EXPECT_EQ(linear.NumParameters(), 7u * 3u + 3u);
}

// ----------------------------------------------------------- Activations --

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Tensor in(1, 4);
  in.at(0, 0) = -1.0f;
  in.at(0, 1) = 0.0f;
  in.at(0, 2) = 2.0f;
  in.at(0, 3) = -0.5f;
  Tensor out;
  relu.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(out.at(0, 3), 0.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  Relu relu;
  Tensor in(1, 2);
  in.at(0, 0) = -1.0f;
  in.at(0, 1) = 3.0f;
  Tensor out, grad_out(1, 2), grad_in;
  relu.Forward(in, &out);
  grad_out.Fill(5.0f);
  relu.Backward(grad_out, &grad_in);
  EXPECT_FLOAT_EQ(grad_in.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in.at(0, 1), 5.0f);
}

TEST(SigmoidTest, ForwardValues) {
  Sigmoid sigmoid;
  Tensor in(1, 3);
  in.at(0, 0) = 0.0f;
  in.at(0, 1) = 100.0f;
  in.at(0, 2) = -100.0f;
  Tensor out;
  sigmoid.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.5f);
  EXPECT_NEAR(out.at(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(out.at(0, 2), 0.0f, 1e-6);
}

TEST(SigmoidTest, GradientMatchesFiniteDifference) {
  Rng rng(5);
  Sigmoid sigmoid;
  Tensor in = RandomTensor(2, 3, rng);
  CheckInputGradient(&sigmoid, in, 1e-3);
}

TEST(SigmoidScalarTest, SymmetricAndStable) {
  EXPECT_FLOAT_EQ(SigmoidScalar(0.0f), 0.5f);
  EXPECT_NEAR(SigmoidScalar(3.0f) + SigmoidScalar(-3.0f), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(SigmoidScalar(1000.0f)));
  EXPECT_FALSE(std::isnan(SigmoidScalar(-1000.0f)));
}

// ------------------------------------------------------------------- MLP --

TEST(MlpTest, InputGradientMatchesFiniteDifference) {
  Rng rng(6);
  Mlp mlp({6, 8, 4, 1}, rng);
  Tensor in = RandomTensor(3, 6, rng);
  CheckInputGradient(&mlp, in);
}

TEST(MlpTest, ParamGradientsMatchFiniteDifference) {
  Rng rng(7);
  Mlp mlp({4, 5, 1}, rng);
  Tensor in = RandomTensor(2, 4, rng);
  CheckParamGradients(&mlp, in, 3e-2);
}

TEST(MlpTest, NumParametersSumsLayers) {
  Rng rng(8);
  Mlp mlp({3, 5, 2}, rng);
  EXPECT_EQ(mlp.NumParameters(), (3u * 5 + 5) + (5u * 2 + 2));
}

TEST(MlpTest, OutputShape) {
  Rng rng(9);
  Mlp mlp({10, 6, 1}, rng);
  Tensor in = RandomTensor(7, 10, rng);
  Tensor out;
  mlp.Forward(in, &out);
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 1u);
}

// ------------------------------------------------------------------ Loss --

TEST(BceLossTest, PointLossKnownValues) {
  // logit 0 -> loss log(2) for either label.
  EXPECT_NEAR(BceWithLogitsLoss::PointLoss(0.0f, 1.0f), std::log(2.0), 1e-6);
  EXPECT_NEAR(BceWithLogitsLoss::PointLoss(0.0f, 0.0f), std::log(2.0), 1e-6);
  // Confident correct prediction -> near-zero loss.
  EXPECT_LT(BceWithLogitsLoss::PointLoss(10.0f, 1.0f), 1e-4);
  // Confident wrong prediction -> ~|logit|.
  EXPECT_NEAR(BceWithLogitsLoss::PointLoss(10.0f, 0.0f), 10.0, 1e-3);
}

TEST(BceLossTest, StableAtExtremeLogits) {
  EXPECT_FALSE(std::isnan(BceWithLogitsLoss::PointLoss(500.0f, 0.0f)));
  EXPECT_FALSE(std::isnan(BceWithLogitsLoss::PointLoss(-500.0f, 1.0f)));
}

TEST(BceLossTest, GradientIsSigmoidMinusLabelOverN) {
  Tensor logits(2, 1);
  logits.at(0, 0) = 1.2f;
  logits.at(1, 0) = -0.4f;
  std::vector<float> labels{1.0f, 0.0f};
  Tensor grad;
  BceWithLogitsLoss::Compute(logits, labels, &grad);
  EXPECT_NEAR(grad.at(0, 0), (SigmoidScalar(1.2f) - 1.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(grad.at(1, 0), (SigmoidScalar(-0.4f) - 0.0f) / 2.0f, 1e-6);
}

TEST(BceLossTest, GradientMatchesFiniteDifference) {
  Tensor logits(3, 1);
  logits.at(0, 0) = 0.3f;
  logits.at(1, 0) = -1.0f;
  logits.at(2, 0) = 2.0f;
  std::vector<float> labels{1.0f, 0.0f, 0.0f};
  Tensor grad;
  BceWithLogitsLoss::Compute(logits, labels, &grad);
  const float h = 1e-3f;
  for (size_t i = 0; i < 3; ++i) {
    Tensor up = logits, down = logits;
    up.at(i, 0) += h;
    down.at(i, 0) -= h;
    Tensor unused;
    const double lu = BceWithLogitsLoss::Compute(up, labels, &unused);
    const double ld = BceWithLogitsLoss::Compute(down, labels, &unused);
    EXPECT_NEAR(grad.at(i, 0), (lu - ld) / (2.0 * h), 1e-4);
  }
}

// ------------------------------------------------------------ Optimizers --

TEST(OptimizerTest, SgdAppliesPlainStep) {
  std::vector<float> value{1.0f, 2.0f};
  std::vector<float> grad{0.5f, -1.0f};
  SgdOptimizer opt;
  opt.Register({{value.data(), grad.data(), 2}});
  opt.Step(0.1f);
  EXPECT_FLOAT_EQ(value[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(value[1], 2.0f + 0.1f);
}

TEST(OptimizerTest, ZeroGradClears) {
  std::vector<float> value{1.0f};
  std::vector<float> grad{9.0f};
  SgdOptimizer opt;
  opt.Register({{value.data(), grad.data(), 1}});
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(OptimizerTest, AdagradShrinksEffectiveStep) {
  std::vector<float> value{0.0f};
  std::vector<float> grad{1.0f};
  AdagradOptimizer opt;
  opt.Register({{value.data(), grad.data(), 1}});
  opt.Step(1.0f);
  const float first_step = -value[0];
  const float before = value[0];
  opt.Step(1.0f);
  const float second_step = before - value[0];
  EXPECT_GT(first_step, second_step);  // accumulated curvature shrinks steps
}

TEST(OptimizerTest, AdamFirstStepApproachesLr) {
  std::vector<float> value{0.0f};
  std::vector<float> grad{0.3f};
  AdamOptimizer opt;
  opt.Register({{value.data(), grad.data(), 1}});
  opt.Step(0.01f);
  // Bias-corrected Adam's first step has magnitude ~lr regardless of grad.
  EXPECT_NEAR(std::fabs(value[0]), 0.01f, 1e-3);
}

TEST(OptimizerTest, FactoryKnowsAllNames) {
  EXPECT_NE(MakeOptimizer("sgd"), nullptr);
  EXPECT_NE(MakeOptimizer("adagrad"), nullptr);
  EXPECT_NE(MakeOptimizer("adam"), nullptr);
  EXPECT_EQ(MakeOptimizer("lamb"), nullptr);
}

// Parameterized sanity: every optimizer decreases a simple quadratic.
class OptimizerConvergenceSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerConvergenceSweep, MinimizesQuadratic) {
  auto opt = MakeOptimizer(GetParam());
  ASSERT_NE(opt, nullptr);
  std::vector<float> value{5.0f, -3.0f};
  std::vector<float> grad{0.0f, 0.0f};
  opt->Register({{value.data(), grad.data(), 2}});
  // Adagrad's effective step decays as 1/sqrt(sum g^2); give it a larger
  // nominal rate so all three optimizers converge within the iteration cap.
  const float lr = std::string(GetParam()) == "adagrad" ? 0.5f : 0.05f;
  for (int iter = 0; iter < 2000; ++iter) {
    grad[0] = 2.0f * value[0];  // d/dx of x^2
    grad[1] = 2.0f * value[1];
    opt->Step(lr);
  }
  EXPECT_NEAR(value[0], 0.0f, 0.1f);
  EXPECT_NEAR(value[1], 0.0f, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergenceSweep,
                         ::testing::Values("sgd", "adagrad", "adam"));

}  // namespace
}  // namespace cafe
