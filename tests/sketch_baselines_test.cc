#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"
#include "common/zipf.h"
#include "sketch/count_min.h"
#include "sketch/space_saving.h"
#include "sketch/topk_utils.h"

namespace cafe {
namespace {

// ----------------------------------------------------------- SpaceSaving --

TEST(SpaceSavingTest, RejectsZeroCapacity) {
  EXPECT_EQ(SpaceSaving::Create(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SpaceSavingTest, CountsExactlyWhenUnderCapacity) {
  auto ss = SpaceSaving::Create(10);
  ASSERT_TRUE(ss.ok());
  for (int i = 0; i < 5; ++i) ss->Insert(1);
  for (int i = 0; i < 3; ++i) ss->Insert(2);
  EXPECT_EQ(ss->Query(1), 5u);
  EXPECT_EQ(ss->Query(2), 3u);
  EXPECT_EQ(ss->Error(1), 0u);
  EXPECT_EQ(ss->Query(99), 0u);
}

TEST(SpaceSavingTest, ReplacementTakesMinPlusOne) {
  auto ss = SpaceSaving::Create(2);
  ASSERT_TRUE(ss.ok());
  ss->Insert(1);
  ss->Insert(1);
  ss->Insert(2);
  // Monitored: {1:2, 2:1}. New key 3 replaces key 2 with count 2, error 1.
  ss->Insert(3);
  EXPECT_EQ(ss->Query(3), 2u);
  EXPECT_EQ(ss->Error(3), 1u);
  EXPECT_EQ(ss->Query(2), 0u);
}

TEST(SpaceSavingTest, NeverUnderestimates) {
  auto ss = SpaceSaving::Create(64);
  ASSERT_TRUE(ss.ok());
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(3);
  ZipfDistribution zipf(2000, 1.2);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = zipf.SampleIndex(rng);
    ++truth[key];
    ss->Insert(key);
  }
  for (const auto& [key, count] : truth) {
    const uint64_t estimate = ss->Query(key);
    if (estimate > 0) {
      EXPECT_GE(estimate, count);
    }
  }
}

TEST(SpaceSavingTest, ErrorBoundedByNOverM) {
  // Classic SpaceSaving guarantee: error <= total insertions / capacity.
  constexpr size_t kCapacity = 100;
  constexpr int kInsertions = 20000;
  auto ss = SpaceSaving::Create(kCapacity);
  ASSERT_TRUE(ss.ok());
  Rng rng(5);
  ZipfDistribution zipf(5000, 1.1);
  for (int i = 0; i < kInsertions; ++i) ss->Insert(zipf.SampleIndex(rng));
  for (const auto& [key, count] : ss->TopK(kCapacity)) {
    EXPECT_LE(ss->Error(key), kInsertions / kCapacity);
  }
}

TEST(SpaceSavingTest, TopKRecallOnZipfStream) {
  auto ss = SpaceSaving::Create(256);
  ASSERT_TRUE(ss.ok());
  std::unordered_map<uint64_t, double> truth;
  Rng rng(7);
  ZipfDistribution zipf(30000, 1.2);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t key = zipf.SampleIndex(rng);
    truth[key] += 1.0;
    ss->Insert(key);
  }
  const auto exact = ExactTopK(truth, 64);
  EXPECT_GT(TopKRecall(exact, ss->TopK(256)), 0.95);
}

TEST(SpaceSavingTest, SizeNeverExceedsCapacity) {
  auto ss = SpaceSaving::Create(32);
  ASSERT_TRUE(ss.ok());
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) ss->Insert(rng.Uniform(1000));
  EXPECT_LE(ss->size(), 32u);
}

// -------------------------------------------------------------- CountMin --

TEST(CountMinTest, RejectsBadConfig) {
  CountMin::Config config;
  config.width = 0;
  EXPECT_FALSE(CountMin::Create(config).ok());
  config.width = 8;
  config.depth = 0;
  EXPECT_FALSE(CountMin::Create(config).ok());
}

TEST(CountMinTest, ExactForSingleKey) {
  CountMin::Config config;
  config.width = 128;
  config.depth = 3;
  auto cm = CountMin::Create(config);
  ASSERT_TRUE(cm.ok());
  cm->Insert(42, 1.5);
  cm->Insert(42, 2.5);
  EXPECT_GE(cm->Query(42), 4.0 - 1e-9);
}

TEST(CountMinTest, NeverUnderestimates) {
  CountMin::Config config;
  config.width = 512;
  config.depth = 4;
  auto cm = CountMin::Create(config);
  ASSERT_TRUE(cm.ok());
  std::unordered_map<uint64_t, double> truth;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.Uniform(3000);
    const double w = rng.UniformDouble();
    truth[key] += w;
    cm->Insert(key, w);
  }
  for (const auto& [key, total] : truth) {
    EXPECT_GE(cm->Query(key), total - 1e-6);
  }
}

TEST(CountMinTest, ClearResets) {
  CountMin::Config config;
  auto cm = CountMin::Create(config);
  ASSERT_TRUE(cm.ok());
  cm->Insert(1, 5.0);
  cm->Clear();
  EXPECT_DOUBLE_EQ(cm->Query(1), 0.0);
}

TEST(CountMinTopKTest, RejectsZeroK) {
  EXPECT_FALSE(CountMinTopK::Create(CountMin::Config{}, 0).ok());
}

TEST(CountMinTopKTest, TracksHeavyHitters) {
  CountMin::Config config;
  config.width = 2048;
  config.depth = 3;
  auto topk = CountMinTopK::Create(config, 128);
  ASSERT_TRUE(topk.ok());
  std::unordered_map<uint64_t, double> truth;
  Rng rng(13);
  ZipfDistribution zipf(20000, 1.2);
  for (int i = 0; i < 150000; ++i) {
    const uint64_t key = zipf.SampleIndex(rng);
    truth[key] += 1.0;
    topk->Insert(key, 1.0);
  }
  const auto exact = ExactTopK(truth, 32);
  EXPECT_GT(TopKRecall(exact, topk->TopK(128)), 0.9);
}

// ------------------------------------------------------------ topk utils --

TEST(TopKUtilsTest, ExactTopKOrdersAndTruncates) {
  std::unordered_map<uint64_t, double> scores{
      {1, 5.0}, {2, 9.0}, {3, 1.0}, {4, 7.0}};
  auto top = ExactTopK(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 4u);
}

TEST(TopKUtilsTest, ExactTopKDeterministicTieBreak) {
  std::unordered_map<uint64_t, double> scores{{5, 1.0}, {3, 1.0}, {9, 1.0}};
  auto top = ExactTopK(scores, 3);
  EXPECT_EQ(top[0].first, 3u);
  EXPECT_EQ(top[1].first, 5u);
  EXPECT_EQ(top[2].first, 9u);
}

TEST(TopKUtilsTest, RecallEdgeCases) {
  std::vector<std::pair<uint64_t, double>> truth{{1, 2.0}, {2, 1.0}};
  std::vector<std::pair<uint64_t, double>> none;
  EXPECT_DOUBLE_EQ(TopKRecall(truth, none), 0.0);
  EXPECT_DOUBLE_EQ(TopKRecall(none, truth), 1.0);  // empty truth
  std::vector<std::pair<uint64_t, double>> half{{1, 9.0}, {7, 1.0}};
  EXPECT_DOUBLE_EQ(TopKRecall(truth, half), 0.5);
}

}  // namespace
}  // namespace cafe
