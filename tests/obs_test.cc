// Observability subsystem battery: metric correctness, per-thread shard
// aggregation under concurrent writers (the TSan job runs this file),
// trace-ring wraparound, exposition golden output, and the loopback
// StatsEndpoint. Uses private MetricsRegistry instances so tests stay
// independent of whatever the rest of the process logged into Global().

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/stats_endpoint.h"
#include "obs/trace.h"

namespace cafe {
namespace obs {
namespace {

#ifndef CAFE_OBS_DISABLED

// ---------------------------------------------------------------- metrics --

TEST(CounterTest, AddAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.events_total");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  // Find-or-create returns the same handle for the same name.
  EXPECT_EQ(registry.GetCounter("test.events_total"), c);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.depth");
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(g->Value(), 3.5);
  g->Add(-1.25);
  EXPECT_DOUBLE_EQ(g->Value(), 2.25);
  g->Set(0.0);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(HistogramTest, BucketsSumCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.lat_us", {10.0, 100.0, 1000.0});
  h->Record(5.0);     // <= 10
  h->Record(10.0);    // <= 10 (inclusive upper edge)
  h->Record(50.0);    // <= 100
  h->Record(5000.0);  // +Inf
  Histogram::Snapshot snap = h->Collect();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 5065.0);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.q_us", {100.0, 200.0});
  for (int i = 0; i < 100; ++i) h->Record(50.0);   // bucket [0,100]
  for (int i = 0; i < 100; ++i) h->Record(150.0);  // bucket (100,200]
  Histogram::Snapshot snap = h->Collect();
  // Rank 100 of 200 lands exactly at the top of the first bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 100.0);
  // Rank 190 of 200 is 90% into the second bucket.
  EXPECT_NEAR(snap.Quantile(0.95), 190.0, 1e-9);
  // The +Inf bucket clamps to the last finite edge.
  h->Record(1e9);
  EXPECT_DOUBLE_EQ(h->Collect().Quantile(1.0), 200.0);
  // Empty histogram.
  Histogram* empty = registry.GetHistogram("test.empty_us", {1.0});
  EXPECT_DOUBLE_EQ(empty->Collect().Quantile(0.5), 0.0);
}

TEST(RegistryTest, CollectIsNameSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetGauge("b.gauge")->Set(1.0);
  registry.GetCounter("a.counter_total")->Add(7);
  registry.GetHistogram("c.hist_us", {1.0});
  const auto entries = registry.Collect();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.counter_total");
  EXPECT_EQ(entries[0].kind, MetricsRegistry::Kind::kCounter);
  EXPECT_EQ(entries[0].counter, 7u);
  EXPECT_EQ(entries[1].name, "b.gauge");
  EXPECT_DOUBLE_EQ(entries[1].gauge, 1.0);
  EXPECT_EQ(entries[2].name, "c.hist_us");
}

// The shard-aggregation contract: 8 concurrent writers on the same
// counter/histogram, plus a reader scraping mid-flight, must lose nothing
// and race nowhere (this test is in the TSan job's filter).
TEST(ConcurrencyTest, EightWritersAggregateExactly) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("conc.events_total");
  Histogram* h = registry.GetHistogram("conc.lat_us", {10.0, 100.0});
  Gauge* g = registry.GetGauge("conc.depth");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    // Scrape while writers run: totals must be internally consistent
    // (never decreasing) and race-free.
    uint64_t last = 0;
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const uint64_t now = c->Value();
      EXPECT_GE(now, last);
      last = now;
      DumpPrometheusText(&registry);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Record(static_cast<double>((i + t) % 150));
        g->Set(static_cast<double>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_reader.store(true);
  reader.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  Histogram::Snapshot snap = h->Collect();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.counts[0] + snap.counts[1] + snap.counts[2],
            kThreads * kPerThread);
}

// Shard slots recycle on thread exit, so an unbounded sequence of
// short-lived threads (well past the 64-slot pool) still counts exactly.
TEST(ConcurrencyTest, SlotRecyclingAcrossManyShortLivedThreads) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("recycle.events_total");
  constexpr int kGenerations = 150;  // > internal::kSlots
  for (int i = 0; i < kGenerations; ++i) {
    std::thread([&] { c->Add(1); }).join();
  }
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kGenerations));
}

// ------------------------------------------------------------------ trace --

TEST(TraceTest, RingWrapsAndKeepsMostRecent) {
  constexpr size_t kCapacity = internal::kTraceRingCapacity;
  for (size_t i = 0; i < kCapacity + 100; ++i) {
    TraceSpan span("obs.wrap");
    span.Finish();
  }
  const auto spans = CollectSpans(kCapacity * 4);
  size_t wrapped = 0;
  uint64_t last_start = 0;
  for (const auto& span : spans) {
    EXPECT_GE(span.start_us, last_start);  // oldest-first ordering
    last_start = span.start_us;
    if (span.name == "obs.wrap") ++wrapped;
  }
  // The ring holds exactly the last kCapacity of this thread's emits.
  EXPECT_EQ(wrapped, kCapacity);
}

TEST(TraceTest, ScopedTimerFeedsHistogramAndRing) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("scoped.dur_us");
  {
    ScopedTimer timer("obs.scoped_timer", h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Histogram::Snapshot snap = h->Collect();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 1000.0);  // slept ~2ms, recorded in microseconds
  bool found = false;
  for (const auto& span : CollectSpans(64)) {
    if (span.name == "obs.scoped_timer") {
      found = true;
      EXPECT_GE(span.dur_us, 1000u);
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------- exposition --

TEST(ExpositionTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test.alpha_total")->Add(42);
  registry.GetGauge("test.beta")->Set(0.5);
  registry.GetHistogram("test.gamma_us", {1.0, 2.0})->Record(1.5);
  const std::string text = DumpPrometheusText(&registry);
  EXPECT_EQ(text,
            "# TYPE cafe_test_alpha_total counter\n"
            "cafe_test_alpha_total 42\n"
            "# TYPE cafe_test_beta gauge\n"
            "cafe_test_beta 0.5\n"
            "# TYPE cafe_test_gamma_us histogram\n"
            "cafe_test_gamma_us_bucket{le=\"1\"} 0\n"
            "cafe_test_gamma_us_bucket{le=\"2\"} 1\n"
            "cafe_test_gamma_us_bucket{le=\"+Inf\"} 1\n"
            "cafe_test_gamma_us_sum 1.5\n"
            "cafe_test_gamma_us_count 1\n");
}

TEST(ExpositionTest, LabeledNamesPassThrough) {
  MetricsRegistry registry;
  registry.GetCounter("serve.gen_requests_total{generation=\"3\"}")->Add(7);
  const std::string text = DumpPrometheusText(&registry);
  EXPECT_NE(text.find("cafe_serve_gen_requests_total{generation=\"3\"} 7"),
            std::string::npos);
}

TEST(ExpositionTest, JsonSnapshotHoldsAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("test.alpha_total")->Add(42);
  registry.GetGauge("test.beta")->Set(0.5);
  registry.GetHistogram("test.gamma_us", {1.0, 2.0})->Record(1.5);
  const std::string json = DumpJsonSnapshot(&registry, /*max_spans=*/4);
  EXPECT_NE(json.find("\"test.alpha_total\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.beta\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.gamma_us\":{\"count\":1,\"sum\":1.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --------------------------------------------------------------- endpoint --

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char chunk[1024];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StatsEndpointTest, ServesTextJsonHealthAnd404) {
  MetricsRegistry registry;
  registry.GetCounter("endpoint.hits_total")->Add(3);
  auto endpoint = StatsEndpoint::Start(/*port=*/0, &registry);
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().ToString();
  const int port = (*endpoint)->port();
  ASSERT_GT(port, 0);

  const std::string text = HttpGet(port, "/metrics");
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_NE(text.find("cafe_endpoint_hits_total 3"), std::string::npos);

  const std::string json = HttpGet(port, "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"endpoint.hits_total\":3"), std::string::npos);

  EXPECT_NE(HttpGet(port, "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/nope").find("404"), std::string::npos);
  EXPECT_EQ((*endpoint)->requests_served(), 4u);
  (*endpoint)->Stop();  // explicit stop then destructor: both must be safe
}

#else  // CAFE_OBS_DISABLED

TEST(ObsDisabledTest, ShimsCompileAndReturnEmpty) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Add(5);
  EXPECT_EQ(registry.GetCounter("x")->Value(), 0u);
  EXPECT_TRUE(registry.Collect().empty());
  EXPECT_TRUE(CollectSpans().empty());
}

#endif  // CAFE_OBS_DISABLED

}  // namespace
}  // namespace obs
}  // namespace cafe
